package xquery

import (
	"errors"
	"testing"
	"time"

	"repro/internal/markup"
	"repro/internal/xdm"
)

// compileDifferentialCorpus is the two-backend corpus: every query runs
// through both the compiled closures and the tree walker, and the
// results, update counts and error presence must agree. It covers the
// paper's listings shapes (updates, scripting, events are exercised by
// their own tests too), every optimizer rewrite (folding, pushdown,
// hoisting, join detection) and every compile-native expression shape
// alongside the bridged long tail.
var compileDifferentialCorpus = []string{
	// Literals, arithmetic, folding fodder.
	`1`, `1 + 2 * 3`, `(1 + 2) * 3`, `10 div 4`, `10 idiv 4`, `-5 + 2`,
	`2.5 + 2.5`, `"hello"`, `()`, `(1,2,3)`, `1 to 5`, `5 to 1`,
	`if (1 + 1 eq 2) then "y" else "n"`,
	`if (fn:false()) then 1 div 0 else "safe"`,
	// Comparisons, value and general, ordered.
	`1 < 2`, `1 eq 1`, `"a" lt "b"`, `(1,2,3) = 3`, `(1,2,3) = 4`,
	`() = 1`, `1 = 1.0`, `(1,2) != (1,2)`,
	// Paths and predicates (bridged, planned once).
	`//book/title/string()`,
	`(//book)[1]/@id/string()`,
	`//book[price > 50]/title/string()`,
	`//book[position() < 3]/title/string()`,
	`count(//book[last()])`,
	`string-join(//book/ancestor-or-self::*/name(), "/")`,
	// Plain FLWOR shapes.
	`for $b in //book return $b/title/string()`,
	`for $b in //book where $b/price > 50 return $b/@id/string()`,
	`for $b in //book let $t := $b/title return $t/string()`,
	`for $i in 1 to 5 return $i * $i`,
	`for $i at $p in ("a","b","c") return concat($p, $i)`,
	`for $b as element() in //book return name($b)`,
	`let $x as xs:integer := 3 return $x + 1`,
	// Order by (native sorting path).
	`for $b in //book order by $b/@id descending return $b/@year/string()`,
	`for $b in //book order by number($b/price) return $b/title/string()`,
	`for $i in (3,1,2) order by $i return $i`,
	`for $b in //book order by $b/author[1], $b/@id return $b/@id/string()`,
	// Predicate pushdown candidates.
	`for $b in //book where $b/@id = "b2" return $b/title/string()`,
	`for $b in //book where $b/price > 50 and $b/@year = "2005" return name($b)`,
	`for $b in //book where $b/author = "Knuth" return $b/@id/string()`,
	// Context-defaulting builtins in where conjuncts must keep reading
	// the outer focus: pushdown would rebind their implicit context
	// item to each candidate node (walker yields () here, because the
	// document node's local-name is empty).
	`for $x in //* where local-name() = "book" return 1`,
	`for $b in //book where name() = "book" return $b/@id/string()`,
	`for $b in //book where string-length() > 1 return $b/@id/string()`,
	`for $b in //book where string($b/@id) = "b2" return $b/title/string()`,
	// Hoisting candidates (loop-invariant let and where conjuncts).
	`for $b in //book let $all := count(//book) where $all > 2 return $b/@id/string()`,
	`for $i in 1 to 10 let $base := string-length("invariant") return $i + $base`,
	`for $b in //book where count(//author) > 3 and $b/price > 50 return name($b)`,
	// Join candidates: eq and = over string-class keys.
	`for $a in //book for $b in //book where $a/@id eq $b/@id return $a/@id/string()`,
	`for $a in //book for $b in //book where $a/@year = $b/@year return concat($a/@id, "-", $b/@id)`,
	`for $a in //book for $b in //book where $a/author = $b/author return concat($a/@id, $b/@id)`,
	`for $a in //book for $b in //book where $a/@id eq $b/@id and $a/price > 50 return name($b)`,
	// Join fallback: numeric (non-string-class) keys.
	`for $x in (1,2,3) for $y in (2,3,4) where $x eq $y return $x`,
	`for $x in (1,2,3) for $y in (2,3,4) where $x = $y return 10 * $x + $y`,
	// Joins with empty and duplicate key groups.
	`for $a in //book for $b in //book/author where $a/author eq $b return $a/@id/string()`,
	`for $t in //book/title for $b in //book where $b/title eq $t return $b/@id/string()`,
	// Nested FLWOR without a join (correlated inner domain).
	`for $b in //book for $a in $b/author return concat($b/@id, ":", $a)`,
	// Quantified, typeswitch, casts (bridged).
	`some $b in //book satisfies $b/author = "Knuth"`,
	`every $b in //book satisfies fn:exists($b/title)`,
	`typeswitch (//book[1]/@id) case $a as attribute() return "attr" default return "other"`,
	`xs:integer("42") + 1`,
	`"3" cast as xs:double`,
	// Function calls: streaming built-ins (bridged), eager built-ins,
	// user functions (compiled), recursion across compiled bodies.
	`fn:exists(//book[price > 50])`,
	`fn:head(fn:tail(//author))`,
	`fn:subsequence(1 to 20, 5, 3)`,
	`sum(for $i in 1 to 50 return $i)`,
	`declare function local:twice($x as xs:integer) as xs:integer { 2 * $x }; local:twice(21)`,
	`declare function local:fact($n) { if ($n le 1) then 1 else $n * local:fact($n - 1) }; local:fact(6)`,
	`declare function local:odd($n) { if ($n eq 0) then fn:false() else local:even($n - 1) };
	 declare function local:even($n) { if ($n eq 0) then fn:true() else local:odd($n - 1) };
	 local:odd(9)`,
	`declare function local:pick($b) { $b/title/string() };
	 for $b in //book where $b/price > 50 return local:pick($b)`,
	// Globals and prolog variables.
	`declare variable $threshold := 50; for $b in //book where $b/price > $threshold return name($b)`,
	// Constructors (bridged) inside compiled FLWOR.
	`for $b in //book return <t id="{$b/@id}">{$b/title/string()}</t>`,
	// Updates: PUL parity between the backends.
	`for $b in //book where $b/price > 100 return rename node $b as "expensive"`,
	`insert node <new/> into (//library)[1]`,
	`delete nodes //book[@id = "b2"]`,
	`copy $c := (//book)[1] modify delete nodes $c/author return count($c/*)`,
	// Scripting (poisons the unit: whole body bridges to the walker).
	`declare variable $acc := 0; (for $i in 1 to 3 return $i, $acc)`,
	// EBV laziness: errors hidden beyond the early-exit point must stay
	// hidden in both backends.
	`if ((<x/>, fn:error())) then "t" else "f"`,
	`(1,2,3)[2]`,
	// Errors that must surface in both backends.
	`1 + "a"`,
	`//book["x"]`,
	`fn:error()`,
	`1 div 0`,
	`for $x in (1, 2) where $x eq "s" return $x`,
}

// runBothBackends evaluates src with and without DisableCompile against
// fresh copies of the library document (updates mutate it) and returns
// the rendered results, update counts and errors.
func runBothBackends(t *testing.T, e *Engine, src string) (compiled, walked string, cUpd, wUpd int, cErr, wErr error) {
	t.Helper()
	p, err := e.Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	run := func(disable bool) (string, int, error) {
		doc, err := markup.Parse(libraryXML)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(RunConfig{
			ContextItem:    xdm.NewNode(doc),
			DisableCompile: disable,
			MaxSteps:       500_000,
			Timeout:        5 * time.Second,
			Now:            now,
		})
		if err != nil {
			return "", 0, err
		}
		return FormatSequence(res.Value, markup.Serialize), res.Updates, nil
	}
	compiled, cUpd, cErr = run(false)
	walked, wUpd, wErr = run(true)
	return
}

// TestCompileDifferential is the two-backend oracle: byte-identical
// results, identical applied-update counts, identical error presence.
func TestCompileDifferential(t *testing.T) {
	e := New()
	for _, src := range compileDifferentialCorpus {
		compiled, walked, cUpd, wUpd, cErr, wErr := runBothBackends(t, e, src)
		if (cErr == nil) != (wErr == nil) {
			t.Errorf("%q: compiled err=%v, walker err=%v", src, cErr, wErr)
			continue
		}
		if cErr != nil {
			continue
		}
		if compiled != walked {
			t.Errorf("%q: compiled %q != walker %q", src, compiled, walked)
		}
		if cUpd != wUpd {
			t.Errorf("%q: compiled applied %d updates, walker %d", src, cUpd, wUpd)
		}
	}
}

// TestCompileDifferentialStreamingMatrix crosses the two backends with
// the streaming switch: four configurations, one answer.
func TestCompileDifferentialStreamingMatrix(t *testing.T) {
	e := New()
	queries := []string{
		`for $a in //book for $b in //book where $a/@year = $b/@year return concat($a/@id, $b/@id)`,
		`for $b in //book where $b/@id = "b2" return $b/title/string()`,
		`for $b in //book let $n := count(//book) order by $b/@id descending return concat($b/@id, $n)`,
		`sum(for $i in 1 to 100 return $i)`,
	}
	for _, src := range queries {
		p, err := e.Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		var want string
		for i, cfg := range []RunConfig{
			{},
			{DisableCompile: true},
			{DisableStreaming: true},
			{DisableCompile: true, DisableStreaming: true},
		} {
			cfg.ContextItem = xdm.NewNode(libraryDoc(t))
			cfg.MaxSteps = 500_000
			res, err := p.Run(cfg)
			if err != nil {
				t.Fatalf("%q cfg %d: %v", src, i, err)
			}
			got := FormatSequence(res.Value, markup.Serialize)
			if i == 0 {
				want = got
			} else if got != want {
				t.Errorf("%q cfg %d: %q != %q", src, i, got, want)
			}
		}
	}
}

// FuzzCompileDifferential cross-checks the compiled backend against the
// tree walker, the same way FuzzStreamingDifferential checks streaming
// against eager evaluation. Both backends see the same step budget;
// budget-exceeded runs are skipped because the backends legitimately
// spend different step counts on the same query.
func FuzzCompileDifferential(f *testing.F) {
	for _, s := range compileDifferentialCorpus {
		f.Add(s)
	}
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	e := New()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return
		}
		p, err := e.Compile(src)
		if err != nil {
			return
		}
		run := func(disable bool) (string, int, error) {
			doc, err := markup.Parse(libraryXML)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Run(RunConfig{
				ContextItem:    xdm.NewNode(doc),
				DisableCompile: disable,
				MaxSteps:       200_000,
				Timeout:        time.Second,
				Now:            now,
			})
			if err != nil {
				return "", 0, err
			}
			return FormatSequence(res.Value, markup.Serialize), res.Updates, nil
		}
		compiled, cUpd, cErr := run(false)
		walked, wUpd, wErr := run(true)
		if errors.Is(cErr, ErrBudgetExceeded) || errors.Is(wErr, ErrBudgetExceeded) {
			return
		}
		if (cErr == nil) != (wErr == nil) {
			t.Fatalf("%q: compiled err=%v, walker err=%v", src, cErr, wErr)
		}
		if cErr == nil && compiled != walked {
			t.Fatalf("%q: compiled %q != walker %q", src, compiled, walked)
		}
		if cErr == nil && cUpd != wUpd {
			t.Fatalf("%q: compiled applied %d updates, walker %d", src, cUpd, wUpd)
		}
	})
}
