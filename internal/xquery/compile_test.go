package xquery

import (
	"strings"
	"testing"

	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery/runtime"
)

// TestOptimizerRewriteStats pins which algebraic rewrites fire on
// representative shapes: the stats the profiler and EXPERIMENTS.md
// report come straight from here.
func TestOptimizerRewriteStats(t *testing.T) {
	e := New()
	tests := []struct {
		src                             string
		folds, pushdowns, hoists, joins int
	}{
		// 1+2*3 folds; the where conjunct referencing only $b pushes
		// into the path predicate; count(//book) hoists; id-eq join.
		{`1 + 2 * 3`, 1, 0, 0, 0},
		{`for $b in //book where $b/price > 50 return $b/title`, 0, 1, 0, 0},
		{`for $b in //book let $n := count(//author) return $n`, 0, 0, 1, 0},
		{`for $b in //book where count(//author) > 2 return $b/@id`, 0, 0, 1, 0},
		{`for $a in //book for $b in //book where $a/@id eq $b/@id return $a`, 0, 0, 0, 1},
		{`for $a in //book for $b in //book where $a/@year = $b/@year return $a`, 0, 0, 0, 1},
		// Join wins over pushdown for the leading conjunct; the residual
		// conjunct stays in the where clause (no pushdown after a join —
		// domain iteration order must keep matching the walker).
		{`for $a in //book for $b in //book where $a/@id eq $b/@id and $b/price > 5 return $b`, 0, 0, 0, 1},
		// A conjunct over the outer variable still pushes into the last
		// clause's path (it evaluates once per candidate node either
		// way); the correlated domain rules out a join.
		{`for $a in //book for $b in $a/author where $a/price > 5 return $b`, 0, 1, 0, 0},
		// A zero-arg context-defaulting builtin reads the outer focus:
		// pushing it into the path would rebind its implicit context
		// item to each candidate node, so no pushdown may fire.
		{`for $x in //* where local-name() = "book" return 1`, 0, 0, 0, 0},
		{`for $b in //book where string-length() > 1 return $b/@id`, 0, 0, 0, 0},
		// The same builtin with the context made explicit moves freely.
		{`for $b in //book where string($b/@id) = "b2" return 1`, 0, 1, 0, 0},
	}
	for _, tt := range tests {
		p, err := e.Compile(tt.src)
		if err != nil {
			t.Fatalf("compile %q: %v", tt.src, err)
		}
		st := p.RewriteStats()
		if st.Folds < tt.folds || st.Pushdowns != tt.pushdowns || st.Hoists < tt.hoists || st.Joins != tt.joins {
			t.Errorf("%q: stats %+v, want folds>=%d pushdowns=%d hoists>=%d joins=%d",
				tt.src, st, tt.folds, tt.pushdowns, tt.hoists, tt.joins)
		}
	}
}

// joinDoc gives the hash join empty key groups (book b4 has no ref),
// duplicate build keys (two items with cat "a") and probe misses.
var joinXML = `<shop>
  <item cat="a" n="i1"/>
  <item cat="b" n="i2"/>
  <item cat="a" n="i3"/>
  <order ref="a" n="o1"/>
  <order ref="c" n="o2"/>
  <order ref="b" n="o3"/>
  <order n="o4"/>
</shop>`

// TestHashJoinCorrectness pins the join's observable semantics:
// output tuple order (outer order major, document order of the build
// side minor), empty and duplicate key groups, and the fallback when
// keys leave the string comparison class.
func TestHashJoinCorrectness(t *testing.T) {
	doc, err := markup.Parse(joinXML)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	tests := []struct {
		src, want string
		joins     int
	}{
		// o1 matches i1,i3 (duplicate group, document order); o2 matches
		// nothing (empty probe group); o3 matches i2; o4 has an empty
		// key, which eq never matches.
		{`for $o in //order for $i in //item where $o/@ref eq $i/@cat
		  return concat($o/@n, ":", $i/@n)`,
			"o1:i1 o1:i3 o3:i2", 1},
		// General = over the same data agrees here (singleton keys).
		{`for $o in //order for $i in //item where $o/@ref = $i/@cat
		  return concat($o/@n, ":", $i/@n)`,
			"o1:i1 o1:i3 o3:i2", 1},
		// Non-string keys: detected as a join, served by the predicate
		// fallback, same answer as the walker.
		{`for $x in (1,2,3) for $y in (2,3,4) where $x eq $y return 10*$x + $y`,
			"22 33", 1},
		{`for $x in (1,2,3) for $y in (2,3,4) where $x = $y return 10*$x + $y`,
			"22 33", 1},
		// The equality must be the leading conjunct of the last clause
		// to hash; a predicate over both variables that is not an
		// equality never detects.
		{`for $o in //order for $i in //item where $o/@ref != $i/@cat return 1`, strings.TrimSpace(strings.Repeat("1 ", 6)), 0},
	}
	for _, tt := range tests {
		p, err := e.Compile(tt.src)
		if err != nil {
			t.Fatalf("compile %q: %v", tt.src, err)
		}
		if got := p.RewriteStats().Joins; got != tt.joins {
			t.Errorf("%q: %d joins detected, want %d", tt.src, got, tt.joins)
		}
		for _, disable := range []bool{false, true} {
			res, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc), DisableCompile: disable})
			if err != nil {
				t.Fatalf("%q (disable=%v): %v", tt.src, disable, err)
			}
			if got := FormatSequence(res.Value, markup.Serialize); got != tt.want {
				t.Errorf("%q (disable=%v): got %q, want %q", tt.src, disable, got, tt.want)
			}
		}
	}
}

// TestProfilerCompiledColumn checks the profiler's compiled counters:
// native closures report under the walker's kind names, rewrite
// counters surface per run, and the walker-only path reports none.
func TestProfilerCompiledColumn(t *testing.T) {
	e := New()
	doc := libraryDoc(t)
	src := `for $a in //book for $b in //book where $a/@id eq $b/@id and count(//author) > 1 return 1 + 2`
	p, err := e.Compile(src)
	if err != nil {
		t.Fatal(err)
	}

	prof := newRunProfiler()
	if _, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc), Profiler: prof}); err != nil {
		t.Fatal(err)
	}
	if n := prof.CompiledFor("FLWOR"); n == 0 {
		t.Error("compiled run: no compiled FLWOR evaluations recorded")
	}
	if n := prof.RewritesFor("join"); n != 1 {
		t.Errorf("compiled run: join rewrites = %d, want 1", n)
	}
	if n := prof.RewritesFor("hoist"); n == 0 {
		t.Error("compiled run: no hoist rewrites recorded")
	}
	out := prof.Format()
	if !strings.Contains(out, "compiled") || !strings.Contains(out, "rewrite:join") {
		t.Errorf("profile report missing compiled column or rewrite lines:\n%s", out)
	}

	walk := newRunProfiler()
	if _, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc), Profiler: walk, DisableCompile: true}); err != nil {
		t.Fatal(err)
	}
	if n := walk.CompiledFor("FLWOR"); n != 0 {
		t.Errorf("walker run recorded %d compiled FLWOR evaluations", n)
	}
	if n := walk.RewritesFor("join"); n != 0 {
		t.Errorf("walker run recorded %d join rewrites", n)
	}
}

// TestCacheReusesCompiledProgram: a program-cache hit returns the same
// Program, so the closure compilation (and the optimizer work behind
// it) is memoized alongside it.
func TestCacheReusesCompiledProgram(t *testing.T) {
	e := New()
	c := NewCache(8)
	src := `for $a in //book for $b in //book where $a/@id eq $b/@id return $a/@id/string()`
	p1, err := c.Compile(e, src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Compile(e, src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("cache miss on identical source: compiled closures rebuilt")
	}
	if p1.compiled == nil || p1.compiled != p2.compiled {
		t.Error("cached programs do not share the compiled form")
	}
	if p1.RewriteStats().Joins != 1 {
		t.Errorf("cached program lost its rewrite stats: %+v", p1.RewriteStats())
	}
}

// TestCompiledFunctionSemantics pins the compiled user-function calling
// convention against walker behaviours with teeth: recursion depth
// limit, argument/result conversion errors, exit-with unwinding.
func TestCompiledFunctionSemantics(t *testing.T) {
	e := New()

	if _, err := e.EvalQuery(`declare function local:loop($n) { local:loop($n + 1) }; local:loop(0)`, nil); err == nil || !strings.Contains(err.Error(), "call depth limit") {
		t.Errorf("runaway recursion: got %v, want call depth limit error", err)
	}
	if _, err := e.EvalQuery(`declare function local:f($x as xs:integer) { $x }; local:f("nope")`, nil); err == nil || !strings.Contains(err.Error(), "argument $x of") {
		t.Errorf("argument conversion: got %v", err)
	}
	if _, err := e.EvalQuery(`declare function local:f() as xs:integer { "nope" }; local:f()`, nil); err == nil || !strings.Contains(err.Error(), "result of") {
		t.Errorf("result conversion: got %v", err)
	}

	p := e.MustCompile(`declare function local:fib($n) { if ($n lt 2) then $n else local:fib($n - 1) + local:fib($n - 2) }; local:fib(15)`)
	for _, disable := range []bool{false, true} {
		res, err := p.Run(RunConfig{DisableCompile: disable})
		if err != nil {
			t.Fatal(err)
		}
		if got := FormatSequence(res.Value, markup.Serialize); got != "610" {
			t.Errorf("fib(15) disable=%v: got %s", disable, got)
		}
	}
}

// newRunProfiler is a tiny indirection so the test reads clearly.
func newRunProfiler() *runtime.Profiler { return runtime.NewProfiler() }
