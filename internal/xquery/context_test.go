package xquery

import (
	"context"
	"errors"
	"testing"
	"time"
)

// longQuery does enough work that the budget's context poll (every 256
// steps) fires many times.
const longQuery = `sum(for $i in 1 to 2000000 return $i mod 7)`

func TestEvalQueryContextPreCancelled(t *testing.T) {
	e := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.EvalQueryContext(ctx, longQuery, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEvalQueryContextDeadline(t *testing.T) {
	e := New()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.EvalQueryContext(ctx, longQuery, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s, not cooperative", elapsed)
	}
}

func TestEvalQueryContextCancelMidRun(t *testing.T) {
	e := New()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	_, err := e.EvalQueryContext(ctx, longQuery, nil)
	// Either the run finished before the cancel landed (fast machine)
	// or it aborted with the context error; both are correct, but an
	// unrelated error is not.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
}

func TestRunConfigContextPlusBudget(t *testing.T) {
	// A step budget still trips when the context never cancels.
	e := New()
	p, err := e.Compile(longQuery)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(RunConfig{Context: context.Background(), MaxSteps: 1000})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestEvalQueryContextNoLimitsStillWorks(t *testing.T) {
	e := New()
	seq, err := e.EvalQueryContext(context.Background(), `1 + 2`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1 || seq[0].String() != "3" {
		t.Fatalf("result = %v", seq)
	}
}
