// Package xquery is the engine façade: it wires the parser, the
// built-in function library and the runtime into a compile-and-run API,
// playing the role Zorba plays for the paper's plug-in (§5.2). The same
// engine object serves all tiers: the browser host (internal/core), the
// web-service server (internal/rest) and the command line (cmd/xq).
package xquery

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xqerr"
	"repro/internal/xquery/analysis"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/compile"
	"repro/internal/xquery/funclib"
	"repro/internal/xquery/parser"
	"repro/internal/xquery/plan"
	"repro/internal/xquery/runtime"
	"repro/internal/xquery/update"
)

// Engine compiles XQuery programs against a shared static environment.
//
// An Engine is immutable after New returns (options apply only during
// construction), so one engine may be shared by any number of
// goroutines calling Compile, EvalQuery and Program.Run concurrently:
// each compilation clones the registry and each run gets its own
// dynamic Context. The concurrent serving layer (internal/serve) relies
// on this to share one engine across all sessions.
type Engine struct {
	base            *runtime.Registry
	resolver        runtime.ModuleResolver
	blockDoc        bool
	fp              string
	resolverRetries int
	resolverBackoff time.Duration
	// Engine-level default doc/collection resolvers (a bound document
	// store). A RunConfig that sets its own resolvers overrides them
	// per run.
	docs            runtime.DocResolver
	collections     runtime.CollectionResolver
	collectionsIter runtime.CollectionIterResolver
	// initErr records a function-library wiring failure from New;
	// every Compile on this engine refuses with it instead of running
	// programs against a half-built registry.
	initErr error
}

// engineSeq numbers engines so each gets a distinct static-context
// fingerprint.
var engineSeq atomic.Int64

// Option configures an Engine.
type Option func(*Engine)

// ModuleResolver materialises module imports into a registry (alias of
// the runtime type, so the facade need not import the runtime).
type ModuleResolver = runtime.ModuleResolver

// Registry is the engine's function registry (alias for facade use).
type Registry = runtime.Registry

// WithModuleResolver installs the module-import resolver (the REST
// substrate registers web-service proxies through it).
func WithModuleResolver(r runtime.ModuleResolver) Option {
	return func(e *Engine) { e.resolver = r }
}

// WithResolverRetry retries failed module-resolver loads up to retries
// additional times per import, waiting backoff before the first retry
// and doubling it each further attempt. Module resolvers reach over
// process boundaries (the REST substrate fetches service
// descriptions), so transient load failures degrade to a bounded
// retry instead of failing the compile outright.
func WithResolverRetry(retries int, backoff time.Duration) Option {
	return func(e *Engine) {
		e.resolverRetries = retries
		e.resolverBackoff = backoff
	}
}

// WithBrowserProfile blocks fn:doc/fn:put, per the paper's §4.2.1
// security rule for in-browser execution.
func WithBrowserProfile() Option {
	return func(e *Engine) { e.blockDoc = true }
}

// WithDocResolver installs an engine-level default fn:doc resolver:
// every run without its own RunConfig.Docs reads documents through it.
// This is how a document store binds to an engine (see xqib.WithStore).
func WithDocResolver(r runtime.DocResolver) Option {
	return func(e *Engine) { e.docs = r }
}

// WithCollectionResolver installs an engine-level default fn:collection
// resolver, the eager counterpart of WithCollectionIterResolver.
func WithCollectionResolver(r runtime.CollectionResolver) Option {
	return func(e *Engine) { e.collections = r }
}

// WithCollectionIterResolver installs an engine-level default streaming
// fn:collection resolver (the sharded store's incremental shard-merge
// scan). Runs may still override it via RunConfig.CollectionsIter.
func WithCollectionIterResolver(r runtime.CollectionIterResolver) Option {
	return func(e *Engine) { e.collectionsIter = r }
}

// WithFunctions registers extra built-in functions (the browser: library
// uses this).
func WithFunctions(register func(*runtime.Registry)) Option {
	return func(e *Engine) { register(e.base) }
}

// New builds an engine with the full fn: library installed.
func New(opts ...Option) *Engine {
	e := &Engine{base: runtime.NewRegistry()}
	e.initErr = funclib.Register(e.base)
	for _, o := range opts {
		o(e)
	}
	blocked := 'o'
	if e.blockDoc {
		blocked = 'b'
	}
	e.fp = fmt.Sprintf("e%d/%c%d", engineSeq.Add(1), blocked, e.base.Names())
	return e
}

// Registry exposes the engine's base registry for host extensions.
func (e *Engine) Registry() *runtime.Registry { return e.base }

// Fingerprint identifies this engine's static context (built-in
// functions, resolver, browser profile) for program-cache keying. Two
// engines never share a fingerprint: registered built-ins are closures
// that may capture per-host state (the browser: library captures its
// page), so compiled programs are only reusable on the engine that
// compiled them. Cross-engine sharing happens one level down, at the
// parsed-module layer, which is static-context independent (see Cache).
func (e *Engine) Fingerprint() string { return e.fp }

// Program is a compiled, runnable XQuery program. Compilation is the
// full three-stage pipeline: plan (path access methods) → optimize
// (algebraic FLWOR rewrites) → compile (Go closures); the original
// tree-walking evaluator remains available per run via
// RunConfig.DisableCompile, as baseline and as differential oracle.
type Program struct {
	engine   *Engine
	prog     *runtime.Program
	compiled *compile.Compiled
}

// Compile parses and compiles a main or library module.
func (e *Engine) Compile(src string) (*Program, error) {
	m, err := parser.ParseModule(src)
	if err != nil {
		return nil, err
	}
	return e.CompileModule(m)
}

// CompileModule compiles an already-parsed module. The AST is read-only
// to both compilation and evaluation, so one parsed module may be
// compiled by many engines concurrently — the program cache uses this
// to share parse work across per-page host engines.
func (e *Engine) CompileModule(m *ast.Module) (*Program, error) {
	if e.initErr != nil {
		return nil, e.initErr
	}
	p, err := runtime.Compile(m, runtime.CompileConfig{
		Registry:        e.base,
		Resolver:        e.resolver,
		BlockDoc:        e.blockDoc,
		ResolverRetries: e.resolverRetries,
		ResolverBackoff: e.resolverBackoff,
	})
	if err != nil {
		return nil, err
	}
	// Lower to closures once per program: the compiled form (and the
	// optimizer work behind it) is memoized here, so cached programs
	// (see Cache) never recompile. Compile cannot fail — anything it
	// does not understand bridges back into the walker.
	return &Program{engine: e, prog: p, compiled: compile.Compile(p)}, nil
}

// RewriteStats returns the optimizer's rewrite counts for this
// program: how many constant folds, predicate pushdowns, loop
// hoistings and hash-join detections shaped the compiled plan.
func (p *Program) RewriteStats() plan.Stats { return p.compiled.Stats() }

// Diagnostic and Severity are the static analyzer's finding types,
// re-exported so facade users need not import the analysis package.
type (
	Diagnostic = analysis.Diagnostic
	Severity   = analysis.Severity
)

// The analyzer severities and the update-independence diagnostic codes,
// re-exported alongside Diagnostic so facade callers can filter
// Result.Diagnostics without importing the analysis package.
const (
	SevWarning = analysis.SevWarning
	SevError   = analysis.SevError
	SevNote    = analysis.SevNote

	CodeDeadUpdate     = analysis.CodeDeadUpdate
	CodeDeadDelete     = analysis.CodeDeadDelete
	CodeUpdateConflict = analysis.CodeUpdateConflict
	CodeUpdateGroups   = analysis.CodeUpdateGroups
)

// ErrAnalysisFailed matches (via errors.Is) every *AnalysisError: a
// program rejected by the static analyzer under Strict mode.
var ErrAnalysisFailed = errors.New("xquery: static analysis failed")

// AnalysisError reports a program rejected by the static analyzer. It
// carries the full diagnostic list (warnings included) so callers can
// render everything, and wraps ErrAnalysisFailed for errors.Is.
type AnalysisError struct {
	Diagnostics []Diagnostic
}

func (e *AnalysisError) Error() string {
	nerr := 0
	first := ""
	for _, d := range e.Diagnostics {
		if d.Severity == analysis.SevError {
			if nerr == 0 {
				first = d.String()
			}
			nerr++
		}
	}
	if nerr == 1 {
		return fmt.Sprintf("xquery: static analysis failed: %s", first)
	}
	return fmt.Sprintf("xquery: static analysis failed: %d errors, first: %s", nerr, first)
}

// Unwrap makes errors.Is(err, ErrAnalysisFailed) true.
func (e *AnalysisError) Unwrap() error { return ErrAnalysisFailed }

// analysisConfig derives the analyzer configuration matching this
// engine's static context: its registry (so host extensions like
// browser: resolve) and its browser profile.
func (e *Engine) analysisConfig(maxSteps int64) analysis.Config {
	return analysis.Config{Registry: e.base, BrowserProfile: e.blockDoc, MaxSteps: maxSteps}
}

// Analyze parses src and runs the static analyzer without compiling or
// evaluating it. Parse failures return the parser error; an analyzed
// module always returns a result, whatever its diagnostics say.
func (e *Engine) Analyze(src string) (*analysis.Result, error) {
	if e.initErr != nil {
		return nil, e.initErr
	}
	m, err := parser.ParseModule(src)
	if err != nil {
		return nil, err
	}
	return e.AnalyzeModule(m), nil
}

// AnalyzeModule runs the static analyzer over an already-parsed module
// against this engine's static context.
func (e *Engine) AnalyzeModule(m *ast.Module) *analysis.Result {
	return analysis.Analyze(m, e.analysisConfig(0))
}

// MustCompile compiles or panics; for tests and fixed queries.
func (e *Engine) MustCompile(src string) *Program {
	p, err := e.Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Module returns the compiled module's AST (the REST server inspects
// the prolog's options and function declarations).
func (p *Program) Module() *ast.Module { return p.prog.Module }

// Runtime returns the underlying runtime program (host integration).
func (p *Program) Runtime() *runtime.Program { return p.prog }

// RunConfig parameterises one evaluation.
type RunConfig struct {
	// Context, when non-nil, cancels the run cooperatively: evaluation
	// polls it alongside the step/time budget and aborts with an error
	// matching Context.Err() (errors.Is(err, context.Canceled) or
	// context.DeadlineExceeded). Cancellation discards pending updates
	// like any other failed run.
	Context context.Context
	// ContextItem is the initial focus (e.g. the page document in the
	// browser: paper §4.2.3 "the document in browser:self() is the
	// context item").
	ContextItem xdm.Item
	// AmbientFocus additionally makes ContextItem the focus inside user
	// function bodies (the browser host's processing model).
	AmbientFocus bool
	// Docs resolves fn:doc calls. Nil falls back to the engine's
	// WithDocResolver default (if any).
	Docs runtime.DocResolver
	// Collections resolves fn:collection calls. Nil falls back to the
	// engine's WithCollectionResolver default.
	Collections runtime.CollectionResolver
	// CollectionsIter is the streaming fn:collection source (preferred
	// by the streaming evaluator when set). Nil falls back to the
	// engine's WithCollectionIterResolver default.
	CollectionsIter runtime.CollectionIterResolver
	// Hooks provides the browser extension points.
	Hooks runtime.Hooks
	// Variables are external variable bindings.
	Variables map[dom.QName]xdm.Sequence
	// Sequential enables scripting snapshot semantics: pending updates
	// apply after every statement. When false, updates apply once at the
	// end of the run (pure XQuery Update semantics).
	Sequential bool
	// OnUpdate is called for each applied update primitive.
	OnUpdate func(update.Primitive)
	// Now fixes the evaluation's current dateTime (defaults to
	// time.Now).
	Now time.Time
	// Profiler, when non-nil, collects per-expression evaluation
	// statistics (the §7 "performance profiler" tooling).
	Profiler *runtime.Profiler
	// MaxSteps bounds the evaluation steps (expression evaluations plus
	// streamed items) of this run; <= 0 is unlimited. Exceeding it
	// fails the run with an error matching ErrBudgetExceeded.
	MaxSteps int64
	// Timeout bounds the run's wall-clock time; <= 0 is unlimited.
	Timeout time.Duration
	// DisableStreaming forces eager materializing evaluation
	// everywhere (the pre-iterator behaviour); used as a benchmark
	// baseline and as an escape hatch.
	DisableStreaming bool
	// DisableIndexes turns off the per-document indexes for this run:
	// planned path steps scan the axis, fn:id walks the tree and
	// document-order sorts use the comparison path. It is the scan
	// baseline in benchmarks and the oracle side of the index
	// differential tests.
	DisableIndexes bool
	// Strict runs the static analyzer before evaluation: error-severity
	// diagnostics abort the run with an *AnalysisError (matching
	// ErrAnalysisFailed) before any expression evaluates, and the
	// remaining warnings are attached to Result.Diagnostics. Under
	// Cache.EvalQuery, Strict additionally keeps rejected programs out
	// of the program cache.
	Strict bool
	// DisableCompile evaluates through the tree walker instead of the
	// compiled closures: the pre-compilation behaviour, kept as a
	// benchmark baseline and as the oracle side of the differential
	// tests. Walked runs evaluate the original (unoptimized) module
	// AST, so this flag also bypasses the algebraic optimizer.
	DisableCompile bool
	// NonAtomicUpdates applies pending update lists without the undo
	// log: a mid-list failure leaves earlier primitives in place
	// instead of rolling the documents back. Escape hatch for hosts
	// that relied on the pre-rollback behaviour; see PUL.ApplyNonAtomic.
	NonAtomicUpdates bool
	// SerialUpdates applies pending update lists strictly serially,
	// bypassing the update-independence partitioner (PUL.ApplyParallel).
	// The serial path is the differential oracle for the parallel one;
	// results are byte-identical either way, so this is a debugging and
	// benchmarking escape hatch, not a correctness switch.
	SerialUpdates bool
}

// applyPUL applies a pending update list honouring the run's atomicity
// and parallelism settings.
func (cfg *RunConfig) applyPUL(pul *update.PUL, onChange func(update.Primitive)) error {
	return cfg.applyPULEliminate(pul, onChange, false)
}

// applyPULEliminate is applyPUL with the observability-gated
// dead-update elimination switched by the caller: only the final apply
// of a fresh, non-sequential Run whose result and external variables
// carry no node items may set eliminate (see finishRun), because
// elimination changes the state of detached subtrees.
func (cfg *RunConfig) applyPULEliminate(pul *update.PUL, onChange func(update.Primitive), eliminate bool) error {
	switch {
	case cfg.NonAtomicUpdates:
		return pul.ApplyNonAtomic(onChange)
	case cfg.SerialUpdates:
		return pul.Apply(onChange)
	}
	var stats update.ApplyStats
	err := pul.ApplyParallel(onChange, update.ParallelConfig{Eliminate: eliminate, Stats: &stats})
	if cfg.Profiler != nil {
		cfg.Profiler.AddUpdates("groups", int64(stats.Groups))
		cfg.Profiler.AddUpdates("eliminated", int64(stats.Eliminated))
		if stats.Parallel {
			cfg.Profiler.AddUpdates("parallel", 1)
		}
	}
	return err
}

// ErrBudgetExceeded matches (via errors.Is) the error returned when a
// run exceeds its MaxSteps or Timeout budget.
var ErrBudgetExceeded = runtime.ErrBudgetExceeded

// ErrNoResolver matches a module import attempted with no resolver
// installed; ErrUnknownFunction matches a call to an undeclared
// function.
var (
	ErrNoResolver      = runtime.ErrNoResolver
	ErrUnknownFunction = runtime.ErrUnknownFunction
)

// Result is the outcome of an evaluation.
type Result struct {
	Value xdm.Sequence
	// Updates counts the update primitives applied during the run.
	Updates int
	// Diagnostics holds the analyzer's warnings when the run was
	// Strict (errors never reach a Result — they abort the run).
	Diagnostics []Diagnostic
}

// NewContext prepares a reusable evaluation context (the browser host
// keeps one per page so listener invocations share global state).
func (p *Program) NewContext(cfg RunConfig) *runtime.Context {
	ctx := runtime.NewContext(p.prog)
	ctx.Item = cfg.ContextItem
	if cfg.ContextItem != nil {
		ctx.Pos, ctx.Size = 1, 1
	}
	if cfg.AmbientFocus {
		ctx.Ambient = cfg.ContextItem
	}
	ctx.Profiler = cfg.Profiler
	ctx.Budget = runtime.NewBudgetContext(cfg.Context, cfg.MaxSteps, cfg.Timeout)
	ctx.IO = cfg.Context
	ctx.NoStream = cfg.DisableStreaming
	ctx.NoIndex = cfg.DisableIndexes
	ctx.Docs = cfg.Docs
	ctx.Collections = cfg.Collections
	ctx.CollectionsIter = cfg.CollectionsIter
	// Engine-level defaults (a bound store) fill whatever the run left
	// unset.
	if ctx.Docs == nil {
		ctx.Docs = p.engine.docs
	}
	if ctx.Collections == nil {
		ctx.Collections = p.engine.collections
	}
	if ctx.CollectionsIter == nil {
		ctx.CollectionsIter = p.engine.collectionsIter
	}
	ctx.Hooks = cfg.Hooks
	if !cfg.Now.IsZero() {
		ctx.Now = cfg.Now
	}
	for name, val := range cfg.Variables {
		ctx.Bind(name, val)
	}
	if cfg.Sequential {
		ctx.SnapshotApply = func(pul *update.PUL) error {
			return cfg.applyPUL(pul, cfg.OnUpdate)
		}
	}
	return ctx
}

// Run evaluates the module body (after initialising globals) and applies
// any pending updates.
func (p *Program) Run(cfg RunConfig) (*Result, error) {
	var diags []Diagnostic
	if cfg.Strict {
		ares := analysis.Analyze(p.prog.Module, p.engine.analysisConfig(cfg.MaxSteps))
		if ares.HasErrors() {
			return nil, &AnalysisError{Diagnostics: ares.Diagnostics}
		}
		diags = ares.Diagnostics
	}
	ctx := p.NewContext(cfg)
	eval := func() (xdm.Sequence, error) { return ctx.Run() }
	if !cfg.DisableCompile && p.compiled != nil {
		cc := p.compiled
		eval = func() (xdm.Sequence, error) {
			// Globals initialise through the walker (prolog variable
			// semantics are shared), then the body runs compiled.
			if err := ctx.InitGlobals(); err != nil {
				return nil, err
			}
			return cc.Run(ctx)
		}
		if cfg.Profiler != nil {
			st := cc.Stats()
			cfg.Profiler.AddRewrites("fold", int64(st.Folds))
			cfg.Profiler.AddRewrites("pushdown", int64(st.Pushdowns))
			cfg.Profiler.AddRewrites("hoist", int64(st.Hoists))
			cfg.Profiler.AddRewrites("join", int64(st.Joins))
		}
	}
	res, err := finishRun(ctx, cfg, eval, true)
	if err != nil {
		return nil, err
	}
	res.Diagnostics = diags
	return res, nil
}

// RunWith evaluates using a prepared context (listener dispatch path).
// The context is reused across calls, so dead-update elimination stays
// off: earlier calls may have handed out node references the host
// still holds.
func RunWith(ctx *runtime.Context, cfg RunConfig, name dom.QName, args []xdm.Sequence) (*Result, error) {
	return finishRun(ctx, cfg, func() (xdm.Sequence, error) {
		return ctx.CallFunction(name, args)
	}, false)
}

// finishRun evaluates and applies pending updates behind the engine's
// panic-isolation boundary: a panic anywhere in evaluation or PUL
// application recovers into an error matching xqerr.ErrInternal
// instead of unwinding into the host.
func finishRun(ctx *runtime.Context, cfg RunConfig, eval func() (xdm.Sequence, error), fresh bool) (res *Result, err error) {
	defer xqerr.RecoverInto(&err, "xquery.Run")
	applied := 0
	count := func(pr update.Primitive) {
		applied++
		if cfg.OnUpdate != nil {
			cfg.OnUpdate(pr)
		}
	}
	if cfg.Sequential {
		ctx.SnapshotApply = func(pul *update.PUL) error { return cfg.applyPUL(pul, count) }
	}
	val, err := eval()
	if err != nil {
		return nil, err
	}
	if ctx.PUL != nil && !ctx.PUL.Empty() {
		// Dead-update elimination only changes the state of detached
		// subtrees, so it is gated on nothing observing them after the
		// run: a fresh (non-reused) context, snapshot semantics off,
		// and no node items escaping through the result value or in via
		// external variable bindings.
		eliminate := fresh && !cfg.Sequential &&
			!seqHasNodes(val) && !varsHaveNodes(cfg.Variables)
		if err := cfg.applyPULEliminate(ctx.PUL, count, eliminate); err != nil {
			return nil, err
		}
	}
	return &Result{Value: val, Updates: applied}, nil
}

// seqHasNodes reports whether any item of s is a node.
func seqHasNodes(s xdm.Sequence) bool {
	for _, it := range s {
		if _, ok := xdm.IsNode(it); ok {
			return true
		}
	}
	return false
}

// varsHaveNodes reports whether any external variable binding carries a
// node item.
func varsHaveNodes(vars map[dom.QName]xdm.Sequence) bool {
	for _, s := range vars {
		if seqHasNodes(s) {
			return true
		}
	}
	return false
}

// EvalQuery is a convenience: compile and run a query against an
// optional context document.
func (e *Engine) EvalQuery(src string, contextDoc *dom.Node) (xdm.Sequence, error) {
	return e.EvalQueryContext(context.Background(), src, contextDoc)
}

// EvalQueryContext is EvalQuery with cooperative cancellation: the run
// aborts (with an error matching ctx.Err()) when ctx is cancelled or
// its deadline passes. It is a panic-isolation boundary: compile- or
// run-time panics come back as errors matching xqerr.ErrInternal.
func (e *Engine) EvalQueryContext(ctx context.Context, src string, contextDoc *dom.Node) (seq xdm.Sequence, err error) {
	defer xqerr.RecoverInto(&err, "xquery.EvalQuery")
	p, err := e.Compile(src)
	if err != nil {
		return nil, err
	}
	cfg := RunConfig{Sequential: true, Context: ctx}
	if contextDoc != nil {
		cfg.ContextItem = xdm.NewNode(contextDoc)
	}
	res, err := p.Run(cfg)
	if err != nil {
		return nil, err
	}
	return res.Value, nil
}

// FormatSequence renders a sequence the way cmd/xq prints results:
// nodes serialized as XML, atomics by their lexical form, separated by
// spaces.
func FormatSequence(s xdm.Sequence, serialize func(*dom.Node) string) string {
	parts := make([]string, len(s))
	for i, it := range s {
		if n, ok := xdm.IsNode(it); ok {
			parts[i] = serialize(n)
		} else {
			parts[i] = it.String()
		}
	}
	return joinNonEmpty(parts)
}

func joinNonEmpty(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}

// Err formats an error chain for user display.
func Err(err error) string {
	if err == nil {
		return ""
	}
	return fmt.Sprintf("%v", err)
}
