package xquery

import (
	"strings"
	"testing"

	"repro/internal/markup"
	"repro/internal/xdm"
)

// Second conformance batch: namespaces, axes, node identity, computed
// constructors, typeswitch coverage and miscellaneous spec corners.

func TestNamespaceQueries(t *testing.T) {
	doc, err := markup.Parse(`<root xmlns:a="urn:a" xmlns:b="urn:b">
		<a:item>1</a:item><b:item>2</b:item><item>3</item>
	</root>`)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		q    string
		want string
	}{
		{`declare namespace a = "urn:a"; string(//a:item)`, "1"},
		{`declare namespace z = "urn:b"; string(//z:item)`, "2"},
		{`count(//item)`, "1"}, // unprefixed name: no namespace
		{`count(//*:item)`, "3"},
		{`declare namespace a = "urn:a"; count(//a:*)`, "1"},
		{`declare namespace a = "urn:a"; namespace-uri((//a:item)[1])`, "urn:a"},
		{`declare namespace a = "urn:a"; count(//element(a:item))`, "1"},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, doc)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestDefaultElementNamespaceInQueries(t *testing.T) {
	doc, err := markup.Parse(`<r xmlns="urn:d"><x>1</x></r>`)
	if err != nil {
		t.Fatal(err)
	}
	// Without the default declaration, unprefixed tests miss.
	if got := mustEval(t, `count(//x)`, doc); got != "0" {
		t.Errorf("no-default = %s", got)
	}
	got, err := evalStr(t, `declare default element namespace "urn:d"; count(//x)`, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != "1" {
		t.Errorf("with-default = %s", got)
	}
}

func TestReverseAxisPositions(t *testing.T) {
	doc := libraryDoc(t)
	tests := []struct {
		q    string
		want string
	}{
		// On reverse axes, position counts from the context node
		// backwards.
		{`//book[3]/preceding-sibling::book[1]/@id/string()`, "b2"},
		{`//book[3]/preceding-sibling::book[2]/@id/string()`, "b1"},
		{`(//price)[1]/ancestor::*[1]/name()`, "book"},
		{`(//price)[1]/ancestor::*[2]/name()`, "library"},
		{`(//author)[last()]/../@id/string()`, "b3"},
		{`//book[2]/preceding::author[1]/../@id/string()`, "b1"},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, doc)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestNodeIdentityAndOrder(t *testing.T) {
	doc := libraryDoc(t)
	tests := []struct {
		q    string
		want string
	}{
		{`//book[1]/title is (//title)[1]`, "true"},
		{`<a/> is <a/>`, "false"}, // fresh constructions differ
		{`let $x := <a/> return $x is $x`, "true"},
		{`count(//book/.. | //book/..)`, "1"},
		{`//book[1] << //book[1]/title`, "true"},
		{`//book[1]/@year << //book[1]/title`, "true"}, // attrs precede children
		{`() is ()`, ""},
		{`//book[1] is ()`, ""},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, doc)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestComputedConstructorsDeep(t *testing.T) {
	tests := []struct {
		q    string
		want string
	}{
		{`element {"a"} { attribute {"x"} {1}, element b {}, text {"t"} }`,
			`<a x="1"><b/>t</a>`},
		{`processing-instruction {"tgt"} {"data"}`, `<?tgt data?>`},
		{`document { element r {} }`, `<r/>`},
		{`let $n := "dyn" return element {$n} {$n}`, `<dyn>dyn</dyn>`},
		{`<wrap>{comment {"hidden"}}</wrap>`, `<wrap><!--hidden--></wrap>`},
		{`string(<a>{text {()}}</a>)`, ``}, // text{()} is empty sequence
		{`<out>{(<i>1</i>, <i>2</i>)}</out>`, `<out><i>1</i><i>2</i></out>`},
		// Copied content: mutating the copy does not touch the source.
		{`let $src := <s><k/></s>
		  let $dst := <d>{$src/k}</d>
		  return ($dst/k is $src/k)`, "false"},
		// Atomics in content joined with single spaces.
		{`<a>{1, "two", 3.5}</a>`, `<a>1 two 3.5</a>`},
		// Attribute content from a sequence.
		{`<a x="{(1,2,3)}"/>`, `<a x="1 2 3"/>`},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, nil)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestTypeswitchCoverage(t *testing.T) {
	tests := []struct {
		q    string
		want string
	}{
		{`typeswitch (()) case empty-sequence() return "empty" default return "other"`, "empty"},
		{`typeswitch ((1,2)) case xs:integer+ return "ints" default return "other"`, "ints"},
		{`typeswitch (<a x="1"/>/@x) case attribute() return "attr" default return "d"`, "attr"},
		{`typeswitch (1.5) case xs:integer return "i" case xs:decimal return "dec" default return "d"`, "dec"},
		{`typeswitch ("s") case $v as xs:integer return $v case $v as xs:string return concat($v, $v) default $v return "dflt"`, "ss"},
		{`typeswitch (5) case xs:string return "s" default $v return string($v + 1)`, "6"},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, nil)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestPredicateSemanticsDeep(t *testing.T) {
	doc := libraryDoc(t)
	tests := []struct {
		q    string
		want string
	}{
		// Numeric predicate vs boolean EBV.
		{`(10, 20, 30)[2]`, "20"},
		{`(10, 20, 30)[true()]`, "10 20 30"},
		{`(10, 20, 30)[0]`, ""},
		{`(10, 20, 30)[4]`, ""},
		{`(10, 20, 30)[position() = (1, 3)]`, "10 30"},
		{`(1 to 6)[. mod 2 = 0][last()]`, "6"},
		// Predicates over paths re-evaluate per context node.
		{`string-join(//book[author][1]/@id, ",")`, "b1"},
		{`count(//book[count(author) = 2])`, "1"},
		// Nested predicates.
		{`//book[title[contains(., "World")]]/@id/string()`, "b3"},
		// last() inside a filter on a path.
		{`//book[last()]/@id/string()`, "b3"},
		{`//book[position() = last() - 1]/@id/string()`, "b2"},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, doc)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestMixedPathResults(t *testing.T) {
	doc := libraryDoc(t)
	// Atomics from the last step are fine.
	got := mustEval(t, `//book/string(@id)`, doc)
	if got != "b1 b2 b3" {
		t.Errorf("atomic last step = %q", got)
	}
	// Atomics from a non-last step are an error.
	if _, err := evalStr(t, `//book/string(@id)/x`, doc); err == nil {
		t.Error("atomic intermediate step must fail")
	}
	// Mixing nodes and atomics in one step is an error.
	if _, err := evalStr(t, `//book/(@id, string(@id))`, doc); err == nil {
		t.Error("mixed step must fail")
	}
}

func TestWhitespaceAndEntitiesInConstructors(t *testing.T) {
	tests := []struct {
		q    string
		want string
	}{
		{`<a>  </a>`, `<a/>`},                  // boundary space stripped
		{`<a> x </a>`, `<a> x </a>`},           // mixed content preserved
		{`<a>{" "}</a>`, `<a> </a>`},           // computed whitespace kept
		{`<a><![CDATA[  ]]></a>`, `<a>  </a>`}, // CDATA whitespace kept
		{`<a t="&amp;&lt;"/>`, `<a t="&amp;&lt;"/>`},
		{`string(<a>&#xA9;</a>)`, "©"},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, nil)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestSequentialFunctionWithWhile(t *testing.T) {
	got := mustEval(t, `
		declare sequential function local:sumTo($n as xs:integer) as xs:integer {
			declare variable $i := 0;
			declare variable $acc := 0;
			while ($i < $n) {
				set $i := $i + 1;
				set $acc := $acc + $i;
			};
			exit with $acc;
		};
		local:sumTo(10)`, nil)
	if got != "55" {
		t.Errorf("sumTo(10) = %s", got)
	}
}

func TestGlobalVariableDependencies(t *testing.T) {
	got := mustEval(t, `
		declare variable $base := 10;
		declare function local:scaled($x) { $x * $base };
		declare variable $derived := local:scaled(4);
		$derived + $base`, nil)
	if got != "50" {
		t.Errorf("globals = %s", got)
	}
}

func TestOrderByStability(t *testing.T) {
	// Equal keys keep input order (stable sort).
	got := mustEval(t, `
		for $p in (("b",1), ("a",1), ("c",1))
		order by 1
		return $p`, nil)
	if got != "b 1 a 1 c 1" {
		t.Errorf("stable order = %q", got)
	}
	// Multiple keys.
	got = mustEval(t, `
		for $x in (3, 1, 2, 1)
		order by $x mod 2, $x
		return $x`, nil)
	if got != "2 1 1 3" {
		t.Errorf("multi-key order = %q", got)
	}
	// Empty keys with explicit empty greatest.
	got = mustEval(t, `
		for $x in (<a>2</a>, <a/>, <a>1</a>)
		order by (let $v := string($x) return if ($v = "") then () else $v) empty greatest
		return concat("[", string($x), "]")`, nil)
	if got != "[1] [2] []" {
		t.Errorf("empty greatest = %q", got)
	}
}

func TestCastableAndTreatInteraction(t *testing.T) {
	tests := []struct {
		q    string
		want string
	}{
		{`if ("42" castable as xs:integer) then xs:integer("42") + 1 else -1`, "43"},
		{`if ("4x2" castable as xs:integer) then 1 else -1`, "-1"},
		{`() castable as xs:integer?`, "true"},
		{`() castable as xs:integer`, "false"},
		{`(5 treat as xs:integer) * 2`, "10"},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, nil)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestUpdateAttributeInsertConflict(t *testing.T) {
	doc := libraryDoc(t)
	e := New()
	// Inserting a duplicate attribute must fail at apply time.
	p := e.MustCompile(`insert node attribute year {"1999"} into //book[1]`)
	_, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc), Sequential: true})
	// SetAttr overwrites; per our documented semantics this succeeds and
	// overwrites — verify deterministic behaviour either way.
	if err == nil {
		if got := mustEval(t, `string(//book[1]/@year)`, doc); got != "1999" {
			t.Errorf("attribute overwrite: %s", got)
		}
	}
}

func TestDeepPaperWindowExamples(t *testing.T) {
	// The §4.2.1 window examples shape-checked against a materialized
	// window tree document (without a live browser).
	winDoc, err := markup.Parse(`<window name="top_window">
	  <status>Welcome</status>
	  <location><href>http://www.dbis.ethz.ch</href></location>
	  <frames>
	    <window name="child1"><status>First child</status>
	      <location><href>https://secure.example.com</href></location><frames/></window>
	    <window name="child2"><status>Second child</status>
	      <location><href>http://plain.example.com</href></location><frames/></window>
	  </frames>
	</window>`)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		q    string
		want string
	}{
		{`string(//window[@name="child1"]/status)`, "First child"},
		{`count(//window)`, "3"},
		{`string(/window/frames/window[2]/@name)`, "child2"},
		{`string-join(//window[not(location/href ftcontains "https")]/@name, " ")`, "top_window child2"},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, winDoc)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestResultSerializationShapes(t *testing.T) {
	e := New()
	seq, err := e.EvalQuery(`(<a/>, 1, "s", attribute x {"v"})`, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatSequence(seq, markup.Serialize)
	if !strings.Contains(out, "<a/>") || !strings.Contains(out, `x="v"`) {
		t.Errorf("formatted = %q", out)
	}
}
