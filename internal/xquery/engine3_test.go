package xquery

import (
	"strings"
	"testing"

	"repro/internal/markup"
	"repro/internal/xdm"
)

// Third conformance batch: scripting loop control (§3.3 "while loops,
// continue, break"), update edge cases, and error-path coverage.

func TestBreakAndContinue(t *testing.T) {
	tests := []struct {
		q    string
		want string
	}{
		// break exits the loop early.
		{`{ declare variable $i := 0;
		    while (true()) {
		      set $i := $i + 1;
		      if ($i >= 3) then break else ();
		    };
		    $i; }`, "3"},
		// continue skips the rest of the body.
		{`{ declare variable $i := 0;
		    declare variable $sum := 0;
		    while ($i < 10) {
		      set $i := $i + 1;
		      if ($i mod 2 = 0) then continue else ();
		      set $sum := $sum + $i;
		    };
		    $sum; }`, "25"}, // 1+3+5+7+9
		// break inside a nested block still exits the loop.
		{`{ declare variable $i := 0;
		    while ($i < 100) {
		      { set $i := $i + 1; if ($i = 5) then break else (); };
		    };
		    $i; }`, "5"},
		// "break" with a following expression is still a path step.
		{`count(<r><break/></r>/break)`, "1"},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, nil)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestBreakOutsideLoopErrors(t *testing.T) {
	for _, q := range []string{
		`{ break; }`,
		`{ continue; }`,
		`declare sequential function local:f() { break; }; { declare variable $i := 0;
			while ($i < 1) { set $i := $i + 1; local:f(); }; }`,
	} {
		if _, err := evalStr(t, q, nil); err == nil {
			t.Errorf("query %q should fail (loop control outside a loop)", q)
		}
	}
}

func TestUpdateEdgeCases(t *testing.T) {
	// Replace the root element.
	doc := libraryDoc(t)
	e := New()
	p := e.MustCompile(`replace node /library with <shelf/>`)
	if _, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc), Sequential: true}); err != nil {
		t.Fatal(err)
	}
	if got := markup.Serialize(doc); got != `<shelf/>` {
		t.Errorf("root replace = %s", got)
	}

	// Delete an attribute.
	doc = libraryDoc(t)
	p = e.MustCompile(`delete node //book[1]/@year`)
	if _, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc), Sequential: true}); err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, `count(//book[1]/@year)`, doc); got != "0" {
		t.Errorf("attribute delete: %s", got)
	}

	// Insert atomic values becomes a text node.
	doc = libraryDoc(t)
	p = e.MustCompile(`insert node (1, "and", 2) into //book[1]/title`)
	if _, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc), Sequential: true}); err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, `string(//book[1]/title)`, doc); !strings.HasSuffix(got, "1 and 2") {
		t.Errorf("atomic insert: %q", got)
	}

	// Rename with a QName value.
	doc = libraryDoc(t)
	p = e.MustCompile(`rename node //book[1] as xs:QName("tome")`)
	if _, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc), Sequential: true}); err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, `count(/library/tome)`, doc); got != "1" {
		t.Errorf("QName rename: %s", got)
	}

	// Error paths.
	bad := []string{
		`insert node <x/> into //book/title/text()`,      // target not element/doc
		`insert node <x/> before /`,                      // no parent
		`insert node attribute a {"v"} before //book[1]`, // attr before node
		`replace node / with <x/>`,                       // replace doc/ no parent
		`replace value of node / with "x"`,               // replace value of doc
		`replace node //book[1]/@id with <el/>`,          // attr replaced by element
		`rename node //book[1]/title/text() as "x"`,      // rename text
		`delete node "atomic"`,                           // non-node delete
		`insert node <x/> into (//book[1], //book[2])`,   // multi target
	}
	for _, q := range bad {
		doc := libraryDoc(t)
		p, err := e.Compile(q)
		if err != nil {
			continue // a compile error is an acceptable rejection
		}
		if _, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc), Sequential: true}); err == nil {
			t.Errorf("query %q should fail", q)
		}
	}
}

func TestTransformNested(t *testing.T) {
	doc := libraryDoc(t)
	// A transform inside a FLWOR, producing modified copies per book.
	got := mustEval(t, `
		string-join(
		  for $b in //book
		  return copy $c := $b
		         modify replace value of node $c/price with "0"
		         return concat($c/@id, "=", $c/price),
		  " ")`, doc)
	if got != "b1=0 b2=0 b3=0" {
		t.Errorf("transform in FLWOR = %q", got)
	}
	// Sources untouched.
	if orig := mustEval(t, `string-join(//price, ",")`, doc); orig != "199.00,54.90,39.95" {
		t.Errorf("sources modified: %s", orig)
	}
}

func TestSequentialStatementVisibilityMatrix(t *testing.T) {
	// Within one statement: snapshot isolation. Across statements:
	// visible. (§3.2 vs §3.3.)
	doc, _ := markup.Parse(`<counts/>`)
	e := New()
	p := e.MustCompile(`{
		insert node <n>{count(//probe)}</n> into /counts;
		insert node <probe/> into /counts;
		insert node <n>{count(//probe)}</n> into /counts;
	}`)
	if _, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc), Sequential: true}); err != nil {
		t.Fatal(err)
	}
	got := mustEval(t, `string-join(//n, ",")`, doc)
	if got != "0,1" {
		t.Errorf("visibility = %q, want \"0,1\"", got)
	}
}

func TestFLWORWithUpdatingReturn(t *testing.T) {
	// An updating expression under a FLWOR accumulates one primitive
	// per tuple.
	doc := libraryDoc(t)
	e := New()
	p := e.MustCompile(`for $b in //book return insert node <tag/> into $b`)
	res, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 3 {
		t.Errorf("updates = %d", res.Updates)
	}
	if got := mustEval(t, `count(//tag)`, doc); got != "3" {
		t.Errorf("tags = %s", got)
	}
}

func TestConditionalUpdate(t *testing.T) {
	doc := libraryDoc(t)
	e := New()
	p := e.MustCompile(`
		for $b in //book
		return if ($b/price > 100)
		       then replace value of node $b/price with "99.99"
		       else ()`)
	if _, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc), Sequential: true}); err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, `string(//book[1]/price)`, doc); got != "99.99" {
		t.Errorf("price capped: %s", got)
	}
	if got := mustEval(t, `string(//book[2]/price)`, doc); got != "54.90" {
		t.Errorf("price untouched: %s", got)
	}
}

func TestStringFunctionsViaEngine(t *testing.T) {
	tests := []struct {
		q    string
		want string
	}{
		{`string-join(for $w in tokenize("a b c", " ") return upper-case($w), "")`, "ABC"},
		{`substring-before("2008-04-20", "-")`, "2008"},
		{`replace("XQuery in the Browser", "Browser", "Go")`, "XQuery in the Go"},
		{`normalize-space(" XQuery   in the	Browser ")`, "XQuery in the Browser"},
		{`string-length(normalize-space("  "))`, "0"},
		{`translate("2008/04/20", "/", "-")`, "2008-04-20"},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, nil)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestDeepFLWORNesting(t *testing.T) {
	got := mustEval(t, `
		string-join(
		  for $i in 1 to 3
		  return string-join(
		    for $j in 1 to $i
		    return concat($i, ".", $j), ","),
		  ";")`, nil)
	if got != "1.1;2.1,2.2;3.1,3.2,3.3" {
		t.Errorf("nested FLWOR = %q", got)
	}
}

func TestLargeDocumentQueries(t *testing.T) {
	var b strings.Builder
	b.WriteString("<big>")
	for i := 0; i < 2000; i++ {
		b.WriteString("<row><v>")
		b.WriteString(strings.Repeat("x", i%7))
		b.WriteString("</v></row>")
	}
	b.WriteString("</big>")
	doc, err := markup.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, `count(//row)`, doc); got != "2000" {
		t.Errorf("count = %s", got)
	}
	if got := mustEval(t, `count(//row[string-length(v) = 6])`, doc); got != "285" {
		t.Errorf("filtered = %s", got)
	}
	if got := mustEval(t, `count(//row[position() mod 100 = 0])`, doc); got != "20" {
		t.Errorf("positional = %s", got)
	}
}
