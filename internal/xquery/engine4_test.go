package xquery

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/xdm"
)

// Fourth batch: concurrency of compiled programs and randomized
// evaluation totality.

// TestProgramConcurrentRuns verifies a compiled program is reusable
// from many goroutines: each Run gets its own context, so read-only
// evaluation must be race-free (run with -race in CI).
func TestProgramConcurrentRuns(t *testing.T) {
	e := New()
	prog := e.MustCompile(`
		declare function local:f($n as xs:integer) as xs:integer {
			if ($n le 1) then 1 else $n * local:f($n - 1)
		};
		sum(for $i in 1 to 8 return local:f($i))`)
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := prog.Run(RunConfig{})
				if err != nil {
					errs <- err
					return
				}
				if res.Value[0].String() != "46233" {
					errs <- fmt.Errorf("wrong result %s", res.Value[0])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestEngineConcurrentCompiles(t *testing.T) {
	e := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := fmt.Sprintf(`declare function local:f%d() { %d }; local:f%d() + %d`, w, i, w, w)
				seq, err := e.EvalQuery(q, nil)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				want := fmt.Sprintf("%d", i+w)
				if seq[0].String() != want {
					t.Errorf("worker %d: got %s want %s", w, seq[0], want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// randomQuery builds a random, type-reasonable query. Generated queries
// may legitimately fail (division by zero, casts), but must never
// panic and must be deterministic.
func randomQuery(r *rand.Rand, depth int) string {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return fmt.Sprintf("%d", r.Intn(100)-50)
		case 1:
			return fmt.Sprintf("%d.%d", r.Intn(10), r.Intn(100))
		case 2:
			return fmt.Sprintf("%q", "s")
		case 3:
			return "()"
		default:
			return fmt.Sprintf("(%d to %d)", r.Intn(5), r.Intn(10))
		}
	}
	sub := func() string { return randomQuery(r, depth-1) }
	switch r.Intn(12) {
	case 0:
		return "(" + sub() + " + " + sub() + ")"
	case 1:
		return "(" + sub() + " * " + sub() + ")"
	case 2:
		return "(" + sub() + ", " + sub() + ")"
	case 3:
		return "count(" + sub() + ")"
	case 4:
		return "string-join(for $x in " + sub() + " return string($x), \",\")"
	case 5:
		return "if (" + sub() + ") then " + sub() + " else " + sub()
	case 6:
		return "sum((" + sub() + ")[. instance of xs:integer])"
	case 7:
		return "<e a=\"{" + sub() + "}\">{" + sub() + "}</e>"
	case 8:
		return "some $v in " + sub() + " satisfies $v = $v"
	case 9:
		return "let $v := " + sub() + " return ($v, $v)"
	case 10:
		return "reverse(" + sub() + ")"
	default:
		return "string(" + sub() + ")"
	}
}

func TestRandomizedEvaluationTotality(t *testing.T) {
	e := New()
	r := rand.New(rand.NewSource(2009))
	for i := 0; i < 300; i++ {
		q := randomQuery(r, 3)
		// Determinism: two evaluations agree (both in value or error).
		s1, err1 := e.EvalQuery(q, nil)
		s2, err2 := e.EvalQuery(q, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic error for %q: %v vs %v", q, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if xdm.Sequence(s1).Empty() != xdm.Sequence(s2).Empty() || len(s1) != len(s2) {
			t.Fatalf("non-deterministic result for %q", q)
		}
		for j := range s1 {
			n1, ok1 := xdm.IsNode(s1[j])
			_, ok2 := xdm.IsNode(s2[j])
			if ok1 != ok2 {
				t.Fatalf("non-deterministic item kind for %q", q)
			}
			if ok1 {
				_ = n1
				continue // constructed nodes are fresh each run
			}
			if s1[j].String() != s2[j].String() {
				t.Fatalf("non-deterministic atomic for %q: %s vs %s", q, s1[j], s2[j])
			}
		}
	}
}
