package xquery

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
)

// evalStr compiles and runs a query against an optional context document
// and renders the result compactly.
func evalStr(t *testing.T, src string, doc *dom.Node) (string, error) {
	t.Helper()
	e := New()
	e.Registry() // touch
	seq, err := e.EvalQuery(src, doc)
	if err != nil {
		return "", err
	}
	return FormatSequence(seq, markup.Serialize), nil
}

func mustEval(t *testing.T, src string, doc *dom.Node) string {
	t.Helper()
	out, err := evalStr(t, src, doc)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return out
}

var libraryXML = `<library>
  <book year="2005" id="b1"><title>The Art of Computer Programming</title><author>Knuth</author><price>199.00</price></book>
  <book year="1994" id="b2"><title>Design Patterns</title><author>Gamma</author><author>Helm</author><price>54.90</price></book>
  <book year="2008" id="b3"><title>Real World Haskell</title><author>O'Sullivan</author><price>39.95</price></book>
</library>`

func libraryDoc(t *testing.T) *dom.Node {
	t.Helper()
	doc, err := markup.Parse(libraryXML)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestBasicExpressions(t *testing.T) {
	tests := []struct {
		q    string
		want string
	}{
		// Literals and arithmetic.
		{`1`, "1"},
		{`1 + 2 * 3`, "7"},
		{`(1 + 2) * 3`, "9"},
		{`10 div 4`, "2.5"},
		{`10 idiv 4`, "2"},
		{`10 mod 3`, "1"},
		{`-5 + 2`, "-3"},
		{`2.5 + 2.5`, "5"},
		{`1.5e1 + 5`, "20"},
		{`"hello"`, "hello"},
		{`'it''s'`, "it's"},
		{`"say ""hi"""`, `say "hi"`},
		{`()`, ""},
		{`(1,2,3)`, "1 2 3"},
		{`1 to 5`, "1 2 3 4 5"},
		{`5 to 1`, ""},
		{`(1 to 3, 7)`, "1 2 3 7"},
		// Comparisons.
		{`1 < 2`, "true"},
		{`1 eq 1`, "true"},
		{`"a" lt "b"`, "true"},
		{`(1,2,3) = 3`, "true"},
		{`(1,2,3) = 4`, "false"},
		{`(1,2) != (1,2)`, "true"},
		{`() = 1`, "false"},
		{`1 = 1.0`, "true"},
		// Logic.
		{`true() and false()`, "false"},
		{`true() or false()`, "true"},
		{`not(0)`, "true"},
		{`1 and 1`, "true"},
		// Conditional.
		{`if (1 < 2) then "yes" else "no"`, "yes"},
		{`if (()) then "yes" else "no"`, "no"},
		// Strings.
		{`concat("a","b","c")`, "abc"},
		{`string-length("hello")`, "5"},
		{`upper-case("abc")`, "ABC"},
		{`lower-case("ABC")`, "abc"},
		{`substring("12345", 2, 3)`, "234"},
		{`substring("12345", 2)`, "2345"},
		{`contains("hello", "ell")`, "true"},
		{`starts-with("hello", "he")`, "true"},
		{`ends-with("hello", "lo")`, "true"},
		{`substring-before("a=b", "=")`, "a"},
		{`substring-after("a=b", "=")`, "b"},
		{`normalize-space("  a   b  ")`, "a b"},
		{`string-join(("a","b","c"), "-")`, "a-b-c"},
		{`translate("abcd", "bd", "B")`, "aBc"},
		{`matches("hello", "^h.*o$")`, "true"},
		{`replace("banana", "a", "o")`, "bonono"},
		{`string-join(tokenize("a,b,c", ","), "|")`, "a|b|c"},
		{`matches("HELLO", "hello", "i")`, "true"},
		{`codepoints-to-string((72, 105))`, "Hi"},
		{`string-to-codepoints("Hi")`, "72 105"},
		{`encode-for-uri("a b/c")`, "a%20b%2Fc"},
		// Numbers.
		{`abs(-3)`, "3"},
		{`floor(2.7)`, "2"},
		{`ceiling(2.1)`, "3"},
		{`round(2.5)`, "3"},
		{`round(-2.5)`, "-2"},
		{`round-half-to-even(2.5)`, "2"},
		{`round-half-to-even(3.5)`, "4"},
		{`number("12")`, "12"},
		{`string(number("x"))`, "NaN"},
		// Sequences.
		{`count((1,2,3))`, "3"},
		{`count(())`, "0"},
		{`empty(())`, "true"},
		{`exists((1))`, "true"},
		{`reverse((1,2,3))`, "3 2 1"},
		{`distinct-values((1, 2, 1, 3, 2))`, "1 2 3"},
		{`distinct-values(("a", "A", "a"))`, "a A"},
		{`subsequence((1,2,3,4,5), 2, 3)`, "2 3 4"},
		{`insert-before((1,2,3), 2, 99)`, "1 99 2 3"},
		{`remove((1,2,3), 2)`, "1 3"},
		{`index-of((10,20,30,20), 20)`, "2 4"},
		{`sum((1,2,3))`, "6"},
		{`sum(())`, "0"},
		{`avg((1,2,3))`, "2"},
		{`min((3,1,2))`, "1"},
		{`max((3,1,2))`, "3"},
		{`min(("b","a","c"))`, "a"},
		{`deep-equal((1,2), (1,2))`, "true"},
		{`deep-equal((1,2), (2,1))`, "false"},
		// Types.
		{`1 instance of xs:integer`, "true"},
		{`1 instance of xs:decimal`, "true"},
		{`1 instance of xs:string`, "false"},
		{`(1,2) instance of xs:integer+`, "true"},
		{`() instance of xs:integer?`, "true"},
		{`"5" cast as xs:integer`, "5"},
		{`5 cast as xs:string`, "5"},
		{`"x" castable as xs:integer`, "false"},
		{`"5" castable as xs:integer`, "true"},
		{`3.7 cast as xs:integer`, "3"},
		{`"true" cast as xs:boolean`, "true"},
		{`1 treat as xs:integer`, "1"},
		// Quantified.
		{`some $x in (1,2,3) satisfies $x > 2`, "true"},
		{`every $x in (1,2,3) satisfies $x > 0`, "true"},
		{`every $x in (1,2,3) satisfies $x > 1`, "false"},
		{`some $x in (), $y in (1) satisfies true()`, "false"},
		// Typeswitch.
		{`typeswitch (5) case xs:string return "s" case xs:integer return "i" default return "d"`, "i"},
		{`typeswitch ("x") case $s as xs:string return concat($s, "!") default return "d"`, "x!"},
		{`typeswitch (<a/>) case element() return "elem" default return "d"`, "elem"},
		// FLWOR.
		{`for $x in (1,2,3) return $x * 2`, "2 4 6"},
		{`for $x at $i in ("a","b") return concat($i, $x)`, "1a 2b"},
		{`for $x in (1,2,3) where $x mod 2 = 1 return $x`, "1 3"},
		{`let $x := 5 return $x + 1`, "6"},
		{`for $x in (1,2), $y in (10,20) return $x + $y`, "11 21 12 22"},
		{`for $x in (3,1,2) order by $x return $x`, "1 2 3"},
		{`for $x in (3,1,2) order by $x descending return $x`, "3 2 1"},
		{`for $x in ("b","a","c") order by $x return $x`, "a b c"},
		{`let $s := (1,2,3) for $x in $s order by -$x return $x`, "3 2 1"},
		// Constructors.
		{`<a/>`, "<a/>"},
		{`<a x="1"/>`, `<a x="1"/>`},
		{`<a>text</a>`, "<a>text</a>"},
		{`<a>{1+1}</a>`, "<a>2</a>"},
		{`<a>{1,2,3}</a>`, "<a>1 2 3</a>"},
		{`<a x="{1+1}"/>`, `<a x="2"/>`},
		{`<a x="v{1}w"/>`, `<a x="v1w"/>`},
		{`<a><b/>{"t"}</a>`, "<a><b/>t</a>"},
		{`<a>x{{y}}z</a>`, "<a>x{y}z</a>"},
		{`element foo { "bar" }`, "<foo>bar</foo>"},
		{`element { concat("f","oo") } { 1 }`, "<foo>1</foo>"},
		{`attribute class { "big" }`, `class="big"`},
		{`<a>{attribute x {"1"}, "t"}</a>`, `<a x="1">t</a>`},
		{`text { "hi" }`, "hi"},
		{`comment { "note" }`, "<!--note-->"},
		{`<!--direct comment-->`, "<!--direct comment-->"},
		{`<?pi data?>`, "<?pi data?>"},
		{`document { <r/> }`, "<r/>"},
		{`<a>&lt;tag&gt;</a>`, "<a>&lt;tag&gt;</a>"},
		// Full text.
		{`"The quick brown fox" ftcontains "quick"`, "true"},
		{`"The quick brown fox" ftcontains "QUICK"`, "true"},
		{`"The quick brown fox" ftcontains "quick brown"`, "true"},
		{`"The quick brown fox" ftcontains "brown quick"`, "false"},
		{`"The quick brown fox" ftcontains "quick" ftand "fox"`, "true"},
		{`"The quick brown fox" ftcontains "dog" ftor "fox"`, "true"},
		{`"The quick brown fox" ftcontains ftnot "dog"`, "true"},
		{`"running dogs" ftcontains ("dog" with stemming)`, "true"},
		{`"running dogs" ftcontains "dog"`, "false"},
		{`"cats and dogs" ftcontains ("dog" with stemming) ftand "cat"`, "false"},
		{`"cats and dogs" ftcontains ("dog" with stemming) ftand ("cat" with stemming)`, "true"},
		{`"Mozilla Firefox" ftcontains "mozilla"`, "true"},
		{`"Mozilla" ftcontains ("mozilla" case sensitive)`, "false"},
		// Dates.
		{`xs:date("2008-01-02") < xs:date("2009-01-01")`, "true"},
		{`xs:date("2008-01-31") + xs:dayTimeDuration("P1D")`, "2008-02-01"},
		{`xs:dateTime("2008-01-01T10:00:00") - xs:dateTime("2008-01-01T08:30:00")`, "PT1H30M"},
		{`year-from-date(xs:date("2008-05-06"))`, "2008"},
		{`month-from-date(xs:date("2008-05-06"))`, "5"},
		{`hours-from-dateTime(xs:dateTime("2008-05-06T13:14:15"))`, "13"},
		// Misc.
		{`string(1 = 1)`, "true"},
		{`zero-or-one(())`, ""},
		{`exactly-one(7)`, "7"},
		{`(1,2,3)[2]`, "2"},
		{`(1,2,3)[. > 1]`, "2 3"},
		{`(1 to 10)[position() mod 2 = 0]`, "2 4 6 8 10"},
		{`(1 to 10)[last()]`, "10"},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, nil)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestPathExpressions(t *testing.T) {
	doc := libraryDoc(t)
	tests := []struct {
		q    string
		want string
	}{
		{`count(//book)`, "3"},
		{`count(/library/book)`, "3"},
		{`/library/book[1]/title/text()`, "The Art of Computer Programming"},
		{`string(//book[2]/author[2])`, "Helm"},
		{`//book[@year="2008"]/title/string()`, "Real World Haskell"},
		{`count(//book[price < 100])`, "2"},
		{`//book[price < 50]/@id/string()`, "b3"},
		{`string(//book[last()]/title)`, "Real World Haskell"},
		{`count(//author)`, "4"},
		{`count(//*)`, "14"},
		{`count(//book/@year)`, "3"},
		{`//book[1]/@year/data(.)`, "2005"},
		{`name(/*)`, "library"},
		{`local-name(//book[1]/@id)`, "id"},
		{`count(/library/book/ancestor::library)`, "1"},
		{`count(//title/parent::book)`, "3"},
		{`count(//book[1]/following-sibling::book)`, "2"},
		{`count(//book[3]/preceding-sibling::book)`, "2"},
		{`string(//book[1]/following-sibling::*[1]/title)`, "Design Patterns"},
		{`count(//book[2]/descendant::*)`, "4"},
		{`count(//book[2]/descendant-or-self::*)`, "5"},
		{`count(//price/following::author)`, "3"},
		{`count(//book[2]/preceding::title)`, "1"},
		{`string(//author[.="Knuth"]/../title)`, "The Art of Computer Programming"},
		{`count(/library/child::node())`, "7"}, // 3 books + 4 whitespace text nodes
		{`string((//book/title)[2])`, "Design Patterns"},
		{`count(//book/self::book)`, "3"},
		{`count(//book/self::title)`, "0"},
		{`//book/@id = "b2"`, "true"},
		{`count(//book[author="Gamma"])`, "1"},
		{`sum(//price)`, "293.85"},
		{`avg(//book/@year)`, "2002.3333333333333"},
		{`max(//price)`, "199"},
		{`string(//*[@id="b2"]/title)`, "Design Patterns"},
		{`count(//book/*)`, "10"},
		{`count(//book/element())`, "10"},
		{`count(//book/element(title))`, "3"},
		{`count(//text())`, "14"}, // 10 content + 4 whitespace
		{`//book[title ftcontains "computer"]/@id/string()`, "b1"},
		{`//book[title ftcontains ("pattern" with stemming)]/@id/string()`, "b2"},
		{`for $b in //book where $b/price > 50 order by $b/price return $b/@id/string()`, "b1 b2"}, // untyped keys order lexically
		{`for $b in //book where $b/price > 50 order by xs:decimal($b/price) return $b/@id/string()`, "b2 b1"},
		{`for $b in //book order by xs:integer($b/@year) return string($b/@year)`, "1994 2005 2008"},
		{`(//book/price)[. > 40][1]/string()`, "199.00"},
		{`//book[position() > 1]/@id/string()`, "b2 b3"},
		{`string-join(//book/@id, ",")`, "b1,b2,b3"},
		{`count(//book union //title)`, "6"},
		{`count(//book | //book)`, "3"},
		{`count(//* intersect //book)`, "3"},
		{`count(//* except //book)`, "11"},
		{`//book[1] << //book[2]`, "true"},
		{`//book[2] is (//book)[2]`, "true"},
		{`//book[1]/.. is /library`, "true"},
		{`count(/descendant-or-self::node())`, "29"},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, doc)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestPrologAndFunctions(t *testing.T) {
	tests := []struct {
		q    string
		want string
	}{
		{`declare function local:double($x) { $x * 2 }; local:double(21)`, "42"},
		{`declare function local:fact($n as xs:integer) as xs:integer {
			if ($n le 1) then 1 else $n * local:fact($n - 1) }; local:fact(6)`, "720"},
		{`declare variable $x := 10; $x + 5`, "15"},
		{`declare variable $x := 10; declare variable $y := $x * 2; $y`, "20"},
		{`declare namespace my = "urn:my";
		  declare function my:f() { "ok" }; my:f()`, "ok"},
		{`xquery version "1.0"; 1 + 1`, "2"},
		{`declare function local:sum2($a as xs:integer, $b as xs:integer) as xs:integer
			{ $a + $b }; local:sum2(2, 3)`, "5"},
		{`declare function local:first($s as item()*) { $s[1] }; local:first((7,8))`, "7"},
		{`declare function local:greet($n as xs:string) { concat("hi ", $n) };
		  local:greet("bob")`, "hi bob"},
		// Untyped content converts to typed params (function conversion).
		{`declare function local:inc($n as xs:double) { $n + 1 };
		  local:inc(<x>41</x>)`, "42"},
		{`declare default element namespace "urn:d"; name(<foo/>)`, "foo"},
		{`declare boundary-space strip; <a> </a>`, "<a/>"},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, nil)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestUpdateExpressions(t *testing.T) {
	run := func(t *testing.T, q string) *dom.Node {
		t.Helper()
		doc := libraryDoc(t)
		e := New()
		p, err := e.Compile(q)
		if err != nil {
			t.Fatalf("compile %q: %v", q, err)
		}
		_, err = p.Run(RunConfig{ContextItem: xdm.NewNode(doc), Sequential: true})
		if err != nil {
			t.Fatalf("run %q: %v", q, err)
		}
		return doc
	}

	doc := run(t, `insert node <book id="b4"><title>New</title></book> into /library`)
	if got := mustEval(t, `count(//book)`, doc); got != "4" {
		t.Errorf("after insert: count = %s", got)
	}
	if got := mustEval(t, `string(//book[4]/title)`, doc); got != "New" {
		t.Errorf("after insert: title = %s", got)
	}

	doc = run(t, `insert node <first/> as first into /library`)
	if got := mustEval(t, `name(/library/*[1])`, doc); got != "first" {
		t.Errorf("insert as first: %s", got)
	}

	doc = run(t, `insert node <mid/> after //book[1]`)
	if got := mustEval(t, `name(/library/*[2])`, doc); got != "mid" {
		t.Errorf("insert after: %s", got)
	}

	doc = run(t, `insert node <mid/> before //book[2]`)
	if got := mustEval(t, `name(/library/*[2])`, doc); got != "mid" {
		t.Errorf("insert before: %s", got)
	}

	doc = run(t, `delete node //book[2]`)
	if got := mustEval(t, `string-join(//book/@id, ",")`, doc); got != "b1,b3" {
		t.Errorf("delete: %s", got)
	}

	doc = run(t, `delete nodes //author`)
	if got := mustEval(t, `count(//author)`, doc); got != "0" {
		t.Errorf("delete nodes: %s", got)
	}

	doc = run(t, `replace value of node //book[1]/price with 1500`)
	if got := mustEval(t, `string(//book[1]/price)`, doc); got != "1500" {
		t.Errorf("replace value: %s", got)
	}

	doc = run(t, `replace value of node //book[1]/@year with "2024"`)
	if got := mustEval(t, `string(//book[1]/@year)`, doc); got != "2024" {
		t.Errorf("replace attr value: %s", got)
	}

	doc = run(t, `replace node //book[1]/title with <title>Replaced</title>`)
	if got := mustEval(t, `string(//book[1]/title)`, doc); got != "Replaced" {
		t.Errorf("replace node: %s", got)
	}

	doc = run(t, `rename node //book[1]/title as "heading"`)
	if got := mustEval(t, `count(//book[1]/heading)`, doc); got != "1" {
		t.Errorf("rename: %s", got)
	}

	// Insert of attributes.
	doc = run(t, `insert node attribute lang {"en"} into //book[1]`)
	if got := mustEval(t, `string(//book[1]/@lang)`, doc); got != "en" {
		t.Errorf("insert attribute: %s", got)
	}

	// Snapshot semantics: within one (non-sequential) query, updates are
	// invisible until the end.
	doc = libraryDoc(t)
	e := New()
	p := e.MustCompile(`(insert node <x/> into /library, count(//x))`)
	res, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value[0].String() != "0" {
		t.Errorf("updates must not be visible during evaluation: %v", res.Value)
	}
	if got := mustEval(t, `count(//x)`, doc); got != "1" {
		t.Errorf("updates must be applied at the end: %s", got)
	}
	if res.Updates != 1 {
		t.Errorf("Updates = %d, want 1", res.Updates)
	}
}

func TestTransformExpression(t *testing.T) {
	doc := libraryDoc(t)
	got := mustEval(t, `
		copy $b := //book[1]
		modify replace value of node $b/price with 0
		return string($b/price)`, doc)
	if got != "0" {
		t.Errorf("transform = %q", got)
	}
	// The original must be untouched.
	if orig := mustEval(t, `string(//book[1]/price)`, doc); orig != "199.00" {
		t.Errorf("transform modified the source: %q", orig)
	}
	// Modifying a non-copied node must fail.
	if _, err := evalStr(t, `
		copy $b := //book[1]
		modify delete node //book[2]
		return $b`, doc); err == nil {
		t.Error("transform must reject updates outside the copies")
	}
}

func TestScriptingBlocks(t *testing.T) {
	tests := []struct {
		q    string
		want string
	}{
		{`{ declare variable $x := 1; set $x := $x + 1; $x; }`, "2"},
		{`{ declare variable $x := 0;
		    while ($x < 5) { set $x := $x + 1; };
		    $x; }`, "5"},
		{`{ declare variable $a := 1; declare variable $b := $a + 1; $b; }`, "2"},
		{`{ 1; 2; 3; }`, "3"},
		{`block { "in block"; }`, "in block"},
		{`{ declare variable $x := 1; $x := 42; $x; }`, "42"},
		{`declare sequential function local:f() {
			declare variable $n := 10;
			set $n := $n * 2;
			exit with $n;
		  }; local:f()`, "20"},
		{`declare sequential function local:g() as xs:boolean {
			exit with true();
		  }; local:g()`, "true"},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, nil)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestScriptingVisibleSideEffects(t *testing.T) {
	// The paper §3.3: a block sees the side effects of earlier
	// statements.
	doc, err := markup.Parse(`<books/>`)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	p := e.MustCompile(`{
		insert node <book title="starwars"/> into /books;
		insert node <comment>6 movies</comment> into //book[@title="starwars"];
	}`)
	if _, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc), Sequential: true}); err != nil {
		t.Fatal(err)
	}
	got := mustEval(t, `string(//book/comment)`, doc)
	if got != "6 movies" {
		t.Errorf("sequential visibility: %q", got)
	}
}

func TestErrorCases(t *testing.T) {
	bad := []string{
		`1 +`,                // syntax
		`foo(`,               // syntax
		`$undefined`,         // undefined variable
		`unknown-function()`, // unknown function
		`"a" + 1`,            // type error
		`1 div 0`,            // division by zero
		`("a","b") eq "a"`,   // value comparison cardinality
		`<a>{</a>`,           // constructor syntax
		`<a></b>`,            // mismatched tags
		`undefined:prefix()`, // undeclared prefix
		`declare function local:f() { local:f() }; local:f()`, // infinite recursion
		`"5" cast as xs:unknownType`,
		`(1,2) treat as xs:integer`,
		`let $x as xs:integer := "s" return $x`,
		`exactly-one(())`,
	}
	for _, q := range bad {
		if _, err := evalStr(t, q, nil); err == nil {
			t.Errorf("query %q: expected an error", q)
		}
	}
}

func TestPaperExamples(t *testing.T) {
	// §3.1 FLWOR example (adapted: our bill document).
	bill, err := markup.Parse(`<paymentorder><paymentorders>
		<item><name>computer mouse</name><price>10</price></item>
		<item><name>screen</name><price>200</price></item>
	</paymentorders></paymentorder>`)
	if err != nil {
		t.Fatal(err)
	}
	got := mustEval(t, `
		for $x at $i in /paymentorder/paymentorders/item
		let $price := $x/price
		where $x/name ftcontains "computer"
		return <li>{$x/name}<eur>{data($price)}</eur></li>`, bill)
	want := `<li><name>computer mouse</name><eur>10</eur></li>`
	if got != want {
		t.Errorf("FLWOR example = %q, want %q", got, want)
	}

	// §3.1 full-text example.
	books, err := markup.Parse(`<books>
		<book><title>dogs and a cat</title><author>A</author></book>
		<book><title>a cat tale</title><author>B</author></book>
		<book><title>cats</title><author>C</author></book>
	</books>`)
	if err != nil {
		t.Fatal(err)
	}
	got = mustEval(t, `
		for $b in /books/book
		where $b/title ftcontains ("dog" with stemming) ftand "cat"
		return string($b/author)`, books)
	if got != "A" {
		t.Errorf("full-text example = %q, want A", got)
	}

	// §2.2 embedded XPath example, XQuery-style: find divs containing
	// "love" and insert a heart image.
	page, err := markup.ParseHTML(`<html><body><div>all you need is love</div><div>other</div></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	p := e.MustCompile(`
		if (exists(//div[contains(., 'love')]))
		then insert node <img src="http://example.com/heart.gif"/> as first into /html/body
		else ()`)
	if _, err := p.Run(RunConfig{ContextItem: xdm.NewNode(page), Sequential: true}); err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, `name(/html/body/*[1])`, page); got != "img" {
		t.Errorf("heart insertion failed: first child = %s", got)
	}
}

func TestLibraryModuleParses(t *testing.T) {
	e := New()
	_, err := e.Compile(`module namespace ex = "www.example.ch" port:2001;
		declare option fn:webservice "true";
		declare function ex:mul($a, $b) { $a * $b };`)
	if err != nil {
		t.Fatalf("library module: %v", err)
	}
}

func TestCompileErrorsHaveLineNumbers(t *testing.T) {
	e := New()
	_, err := e.Compile("1 +\n+\n@@@")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line") {
		t.Errorf("error should carry a line number: %v", err)
	}
}

func TestNonSequentialUpdateRestriction(t *testing.T) {
	// Two replaces of the same node conflict in one snapshot.
	doc := libraryDoc(t)
	e := New()
	p := e.MustCompile(`(replace value of node //book[1]/price with 1,
		replace value of node //book[1]/price with 2)`)
	if _, err := p.Run(RunConfig{ContextItem: xdm.NewNode(doc)}); err == nil {
		t.Error("conflicting replaces must be rejected")
	}
}
