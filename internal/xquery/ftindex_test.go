package xquery

import (
	"strings"
	"testing"
	"time"

	ftindex "repro/internal/fulltext/index"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery/runtime"
)

// ftArticlesXML is the full-text fixture: articles with overlapping
// vocabulary (word matches, phrases, stemming and case variants,
// wildcard targets) plus inline markup that splits tokens across text
// nodes — `anti<b>body</b>` tokenizes as "antibody" at the stream
// level but as "anti"/"body" inside the inline element, the exact
// shape the split-token candidate floor exists for.
var ftArticlesXML = `<articles>
  <article id="a1"><h>Marlin watch</h><p>The marlin returned to the coral reef at dawn, running fast.</p></article>
  <article id="a2"><h>Reef report</h><p>Coral bleaching spreads; the reef needs protection from fishing fleets.</p></article>
  <article id="a3"><h>Lab notes</h><p>The anti<b>body</b> assay ran overnight. NASA published the results.</p></article>
  <article id="a4"><h>Fisheries</h><p>Fishers report fewer marlin; the fishery council runs new quotas.</p></article>
  <article id="a5"><h>Quiet day</h><p>Nothing notable happened near the harbour today.</p></article>
</articles>`

func ftArticlesDoc(t testing.TB) xdm.Item {
	t.Helper()
	d, err := markup.Parse(ftArticlesXML)
	if err != nil {
		t.Fatal(err)
	}
	return xdm.NewNode(d)
}

// ftIndexCorpus exercises every selection shape the planner can probe
// and every one it must leave to the scan: plain words, phrases,
// ftand/ftor/ftnot, the stemming/case/wildcard options, multi-phrase
// sources, text-node scopes, split tokens and their pieces, scoring
// and snippets.
var ftIndexCorpus = []string{
	`count(//article[. ftcontains "marlin"])`,
	`//article[. ftcontains "coral reef"]/@id/string()`,
	`//article[. ftcontains "marlin" ftand "reef"]/@id/string()`,
	`//article[. ftcontains "marlin" ftor "fishing"]/@id/string()`,
	`//article[. ftcontains "reef" ftand ftnot "marlin"]/@id/string()`,
	`//article[. ftcontains ftnot "marlin"]/@id/string()`,
	`//article[. ftcontains "RUNS" with stemming]/@id/string()`,
	`//article[. ftcontains "Marlin" case sensitive]/@id/string()`,
	`//article[. ftcontains "nasa" case insensitive]/@id/string()`,
	`//article[. ftcontains "fish.*" with wildcards]/@id/string()`,
	`//article[. ftcontains "r.?ef" with wildcards]/@id/string()`,
	`//article[. ftcontains { ("marlin", "bleaching") } any]/@id/string()`,
	`//article[. ftcontains { ("coral", "reef") } all]/@id/string()`,
	`//article[. ftcontains "coral reef" phrase]/@id/string()`,
	`//p[. ftcontains "antibody"]/../@id/string()`,
	`//b[. ftcontains "body"]/string()`,
	`count(//text()[. ftcontains "reef"])`,
	`//article[. ftcontains "missingword"]/@id/string()`,
	`//article[. ftcontains ""]/@id/string()`,
	`for $a in //article[. ftcontains "marlin" ftor "reef"]
	   order by ft:score($a) descending, $a/@id ascending
	   return $a/@id/string()`,
	`ft:tokenize("The quick-brown fox, twice.")`,
	`kwic:summarize((//article[. ftcontains "marlin"])[1], "marlin", 18)`,
	`kwic:summarize((//article)[2], "reef", 12)`,
	`//article[p ftcontains "marlin"]/@id/string()`,
	`//article[. ftcontains { string(@id) }]/@id/string()`,
	`count(//article[. ftcontains "the"])`,
}

// TestFTIndexDifferential: every corpus query must produce
// byte-identical output across all four streaming×index modes —
// DisableIndexes turns the full-text probes off, making the
// tokenize-and-scan path the oracle.
func TestFTIndexDifferential(t *testing.T) {
	e := New()
	doc := ftArticlesDoc(t)
	for _, q := range ftIndexCorpus {
		p, err := e.Compile(q)
		if err != nil {
			t.Fatalf("%q: compile: %v", q, err)
		}
		got := runModes(t, p, doc)
		want := got["eager+scan"]
		for mode, res := range got {
			if res != want {
				t.Errorf("%q: %s = %q, eager+scan = %q", q, mode, res, want)
			}
		}
	}
}

// TestFTIndexDifferentialAfterUpdates interleaves DOM mutations with
// full-text reads: each update bumps the document version, so stale
// posting lists must never answer and all four modes keep agreeing on
// the new tree. This is the satellite "ftcontains under mutation"
// 4-mode corpus entry.
func TestFTIndexDifferentialAfterUpdates(t *testing.T) {
	e := New()
	doc := ftArticlesDoc(t)
	updates := []string{
		`insert node <article id="a6"><p>A second marlin sighting near the reef.</p></article> into /articles`,
		`replace value of node (//article[@id = "a5"]/p)[1] with "marlin everywhere"`,
		`delete node //article[@id = "a1"]`,
		`rename node (//article/h)[1] as "title"`,
		`insert node <b>reef</b> into (//article[@id = "a4"]/p)[1]`,
	}
	reads := []string{
		`//article[. ftcontains "marlin"]/@id/string()`,
		`//article[. ftcontains "coral reef"]/@id/string()`,
		`count(//article[. ftcontains "reef" ftor "marlin"])`,
		`for $a in //article[. ftcontains "marlin"]
		   order by ft:score($a) descending, $a/@id ascending
		   return $a/@id/string()`,
	}
	check := func(stage string) {
		t.Helper()
		for _, q := range reads {
			p, err := e.Compile(q)
			if err != nil {
				t.Fatalf("%q: compile: %v", q, err)
			}
			got := runModes(t, p, doc)
			want := got["eager+scan"]
			for mode, res := range got {
				if res != want {
					t.Errorf("%s: %q: %s = %q, eager+scan = %q", stage, q, mode, res, want)
				}
			}
		}
	}
	check("initial")
	for _, u := range updates {
		p, err := e.Compile(u)
		if err != nil {
			t.Fatalf("%q: compile: %v", u, err)
		}
		if _, err := p.Run(RunConfig{ContextItem: doc}); err != nil {
			t.Fatalf("%q: run: %v", u, err)
		}
		check(u)
	}
}

// TestFTIndexLazyRebuild pins the invalidation contract: a cold tree
// builds exactly once, repeat reads never rebuild, an update builds
// nothing by itself, and post-update reads rebuild exactly once after
// Probe's amortisation threshold passes. The threshold counts probes,
// not reads — one ftcontains read probes at the step and then once
// per scanned article, so the first post-update read crosses it.
func TestFTIndexLazyRebuild(t *testing.T) {
	e := New()
	doc := ftArticlesDoc(t)
	read := e.MustCompile(`count(//article[. ftcontains "marlin"])`)
	update := e.MustCompile(`insert node <article id="ax"><p>marlin</p></article> into /articles`)

	runRead := func(want string) {
		t.Helper()
		res, err := read.Run(RunConfig{ContextItem: doc})
		if err != nil {
			t.Fatal(err)
		}
		if got := FormatSequence(res.Value, markup.Serialize); got != want {
			t.Fatalf("count = %s, want %s", got, want)
		}
	}
	base := ftindex.Snapshot().Builds
	runRead("2")
	if d := ftindex.Snapshot().Builds - base; d != 1 {
		t.Fatalf("first ft read built %d indexes, want 1 (cold tree builds immediately)", d)
	}
	runRead("2")
	runRead("2")
	if d := ftindex.Snapshot().Builds - base; d != 1 {
		t.Fatalf("repeat reads on an unchanged tree built %d indexes, want 1", d)
	}
	if _, err := update.Run(RunConfig{ContextItem: doc}); err != nil {
		t.Fatal(err)
	}
	if d := ftindex.Snapshot().Builds - base; d != 1 {
		t.Fatalf("the update built %d extra ft indexes, want 0 (mutators pay zero bookkeeping)", d-1)
	}
	for i := 0; i < 8; i++ {
		runRead("3")
	}
	if d := ftindex.Snapshot().Builds - base; d != 2 {
		t.Fatalf("sustained post-update reads built %d total indexes, want 2 (exactly one amortised rebuild)", d)
	}
}

// TestFTProfilerAndMetrics: probes and builds surface in the
// profiler's ft: counters and the process-wide ftindex counters that
// serve.Metrics snapshots; the DisableIndexes oracle records nothing.
func TestFTProfilerAndMetrics(t *testing.T) {
	e := New()
	doc := ftArticlesDoc(t)
	p := e.MustCompile(`count(//article[. ftcontains "marlin"])`)
	before := ftindex.Snapshot()
	prof := runtime.NewProfiler()
	if _, err := p.Run(RunConfig{ContextItem: doc, Profiler: prof}); err != nil {
		t.Fatal(err)
	}
	if probes := prof.FTFor("probes"); probes < 1 {
		t.Errorf("profiler ft:probes = %d, want >= 1", probes)
	}
	if builds := prof.FTFor("builds"); builds != 1 {
		t.Errorf("profiler ft:builds = %d, want 1 (cold tree)", builds)
	}
	if !strings.Contains(prof.Format(), "ft:probes") {
		t.Errorf("profiler report missing ft:probes row:\n%s", prof.Format())
	}
	after := ftindex.Snapshot()
	if after.Hits <= before.Hits {
		t.Errorf("global ft hits did not grow (%d -> %d)", before.Hits, after.Hits)
	}
	if after.Builds != before.Builds+1 {
		t.Errorf("global ft builds grew by %d, want 1", after.Builds-before.Builds)
	}

	prof = runtime.NewProfiler()
	if _, err := p.Run(RunConfig{ContextItem: ftArticlesDoc(t), Profiler: prof, DisableIndexes: true}); err != nil {
		t.Fatal(err)
	}
	if probes := prof.FTFor("probes"); probes != 0 {
		t.Errorf("DisableIndexes run recorded %d ft probes, want 0", probes)
	}
	if builds := prof.FTFor("builds"); builds != 0 {
		t.Errorf("DisableIndexes run recorded %d ft builds, want 0", builds)
	}
}

// FuzzFTIndexDifferential cross-checks the index-backed ftcontains
// path against the scan baseline, including updating inputs: any
// query that compiles and succeeds in both modes must agree
// byte-for-byte, and the indexed mode may never introduce an error
// the scan does not hit. Updating queries run against a fresh
// document per mode, so interleaved mutation is part of the fuzzed
// surface.
func FuzzFTIndexDifferential(f *testing.F) {
	for _, s := range ftIndexCorpus {
		f.Add(s)
	}
	f.Add(`//article[. ftcontains "marlin"] | (let $x := delete node //b return //p)`)
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	e := New()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return
		}
		p, err := e.Compile(src)
		if err != nil {
			return
		}
		run := func(noIndex bool) (string, error) {
			// A fresh document per mode: updating fuzz inputs mutate
			// their tree, and both modes must see the same starting
			// state for the outputs to be comparable.
			d, err := markup.Parse(ftArticlesXML)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Run(RunConfig{
				ContextItem:    xdm.NewNode(d),
				DisableIndexes: noIndex,
				MaxSteps:       200_000,
				Timeout:        time.Second,
				Now:            now,
			})
			if err != nil {
				return "", err
			}
			return FormatSequence(res.Value, markup.Serialize), nil
		}
		indexed, ierr := run(false)
		scanned, serr := run(true)
		if ierr != nil && serr == nil {
			t.Fatalf("%q: indexed errored (%v) but scan succeeded (%q)", src, ierr, scanned)
		}
		if ierr == nil && serr == nil && indexed != scanned {
			t.Fatalf("%q: indexed %q != scan %q", src, indexed, scanned)
		}
	})
}
