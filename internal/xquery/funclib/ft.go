package funclib

import (
	"fmt"
	"strings"

	"repro/internal/dom"
	"repro/internal/fulltext"
	"repro/internal/xdm"
	"repro/internal/xquery/parser"
	"repro/internal/xquery/runtime"
)

// The full-text helper functions (§3.1-style library extensions for
// the full-text subsystem): ft:score exposes the TF-IDF relevance the
// most recent matching ftcontains recorded for a node — usable in
// order by clauses — and kwic:summarize renders keyword-in-context
// snippets around phrase occurrences.

func ftName(local string) dom.QName {
	return dom.QName{Space: parser.FTNamespace, Prefix: "ft", Local: local}
}

func kwicName(local string) dom.QName {
	return dom.QName{Space: parser.KWICNamespace, Prefix: "kwic", Local: local}
}

func registerFullText(reg *runtime.Registry) {
	// ft:score($node as node()?) as xs:double — the TF-IDF score the
	// most recent matching ftcontains evaluation recorded for the node,
	// 0 when it never matched. Scores are query-lifetime state, so
	// `for $p in //p[. ftcontains "x"] order by ft:score($p) descending`
	// ranks the matches.
	reg.Register(&runtime.Function{
		Name: ftName("score"), MinArgs: 1, MaxArgs: 1,
		Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			it, err := args[0].AtMostOne()
			if err != nil {
				return nil, err
			}
			if it == nil {
				return xdm.Singleton(xdm.Double(0)), nil
			}
			n, ok := xdm.IsNode(it)
			if !ok {
				return nil, fmt.Errorf("ft:score: argument must be a node")
			}
			return xdm.Singleton(xdm.Double(ctx.FTScoreFor(n))), nil
		},
	})

	// ft:tokenize($input as xs:string?) as xs:string* — the word tokens
	// of a string under the full-text tokenizer, in order.
	reg.Register(&runtime.Function{
		Name: ftName("tokenize"), MinArgs: 1, MaxArgs: 1,
		Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			s, err := stringArg(args[0])
			if err != nil {
				return nil, err
			}
			toks := fulltext.Tokenize(s)
			out := make(xdm.Sequence, len(toks))
			for i, t := range toks {
				out[i] = xdm.String(t)
			}
			return out, nil
		},
	})

	// kwic:summarize($node as node()?, $phrase as xs:string) — and a
	// third $width argument giving the context radius in characters
	// (default 40). Returns one snippet string per non-overlapping
	// occurrence of the phrase in the node's string value, each clipped
	// to the radius and ellipsised where text was cut.
	reg.Register(&runtime.Function{
		Name: kwicName("summarize"), MinArgs: 2, MaxArgs: 3,
		Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			it, err := args[0].AtMostOne()
			if err != nil || it == nil {
				return nil, err
			}
			n, ok := xdm.IsNode(it)
			if !ok {
				return nil, fmt.Errorf("kwic:summarize: first argument must be a node")
			}
			phrase, err := stringArg(args[1])
			if err != nil {
				return nil, err
			}
			width := int64(40)
			if len(args) == 3 {
				if width, err = intArg(args[2]); err != nil {
					return nil, err
				}
				if width < 0 {
					width = 0
				}
			}
			snips := kwicSnippets(n.StringValue(), phrase, int(width))
			out := make(xdm.Sequence, len(snips))
			for i, s := range snips {
				out[i] = xdm.String(s)
			}
			return out, nil
		},
	})
}

// kwicSnippets finds the non-overlapping occurrences of phrase in text
// (case-insensitive whole-token matching, like a plain ftcontains) and
// returns one context snippet per occurrence.
func kwicSnippets(text, phrase string, width int) []string {
	want := fulltext.Tokenize(phrase)
	if len(want) == 0 {
		return nil
	}
	preds := make([]func(string) bool, len(want))
	for i, w := range want {
		preds[i] = fulltext.WordMatcher(w, fulltext.Options{})
	}
	spans := fulltext.TokenizeSpans(text)
	var out []string
	for i := 0; i+len(want) <= len(spans); i++ {
		match := true
		for j, p := range preds {
			s := spans[i+j]
			if !p(text[s.Start:s.End]) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		out = append(out, kwicClip(text, spans[i].Start, spans[i+len(want)-1].End, width))
		i += len(want) - 1 // non-overlapping: resume after this occurrence
	}
	return out
}

// kwicClip cuts the context window around [start, end), snapping the
// cuts to rune boundaries and marking clipped sides with an ellipsis.
func kwicClip(text string, start, end, width int) string {
	lo := start - width
	if lo < 0 {
		lo = 0
	}
	for lo > 0 && !isRuneStart(text[lo]) {
		lo--
	}
	hi := end + width
	if hi > len(text) {
		hi = len(text)
	}
	for hi < len(text) && !isRuneStart(text[hi]) {
		hi++
	}
	var b strings.Builder
	if lo > 0 {
		b.WriteString("…")
	}
	b.WriteString(text[lo:hi])
	if hi < len(text) {
		b.WriteString("…")
	}
	return b.String()
}

// isRuneStart reports whether b can begin a UTF-8 sequence.
func isRuneStart(b byte) bool { return b&0xC0 != 0x80 }
