// Package funclib implements the fn: function and operator library
// (paper §3.1: "a whole function library in this namespace, e.g. sum,
// distinct-values"). Register installs roughly ninety built-ins into a
// runtime registry; the engine façade wires them up for every compiled
// program.
package funclib

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xquery/parser"
	"repro/internal/xquery/runtime"
)

// Register installs the built-in function library. The returned error
// is non-nil only when the library is internally inconsistent (a
// streaming entry point names a function that was never registered); it
// wraps xqerr.ErrMisconfigured and means the registry must not be used.
func Register(reg *runtime.Registry) error {
	registerStrings(reg)
	registerNumeric(reg)
	registerBooleans(reg)
	registerSequences(reg)
	registerAggregates(reg)
	registerNodes(reg)
	registerDates(reg)
	registerRegex(reg)
	registerDocs(reg)
	registerContext(reg)
	registerConstructors(reg)
	registerFullText(reg)
	// Last: attaches lazy Stream entry points to the functions above.
	return registerStreaming(reg)
}

// registerConstructors installs the xs: constructor functions
// (xs:integer("5"), xs:date("2008-01-01"), ...), which are casts.
func registerConstructors(reg *runtime.Registry) {
	names := []string{"string", "boolean", "decimal", "integer", "int",
		"long", "double", "float", "date", "time", "dateTime", "duration",
		"yearMonthDuration", "dayTimeDuration", "QName", "anyURI",
		"untypedAtomic"}
	for _, local := range names {
		typ, ok := xdm.AtomicTypeByName(local)
		if !ok {
			continue
		}
		t := typ
		reg.Register(&runtime.Function{
			Name:    dom.QName{Space: parser.XSNamespace, Prefix: "xs", Local: local},
			MinArgs: 1, MaxArgs: 1,
			Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
				it, err := xdm.AtomizeSequence(args[0]).AtMostOne()
				if err != nil || it == nil {
					return nil, err
				}
				c, err := xdm.Cast(it, t)
				if err != nil {
					return nil, err
				}
				return xdm.Singleton(c), nil
			},
		})
	}
}

// fnName builds a QName in the fn namespace.
func fnName(local string) dom.QName {
	return dom.QName{Space: parser.FnNamespace, Prefix: "fn", Local: local}
}

// simple registers a fixed-arity fn: function.
func simple(reg *runtime.Registry, local string, arity int,
	f func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error)) {
	reg.Register(&runtime.Function{Name: fnName(local), MinArgs: arity, MaxArgs: arity, Invoke: f})
}

// ranged registers an fn: function with optional arguments.
func ranged(reg *runtime.Registry, local string, min, max int,
	f func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error)) {
	reg.Register(&runtime.Function{Name: fnName(local), MinArgs: min, MaxArgs: max, Invoke: f})
}

// --- argument helpers ------------------------------------------------------

// argOrContext returns args[0] if present, else the context item.
func argOrContext(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args) > 0 {
		return args[0], nil
	}
	if ctx.Item == nil {
		return nil, fmt.Errorf("fn: context item is undefined")
	}
	return xdm.Singleton(ctx.Item), nil
}

// stringArg atomizes a zero-or-one sequence to a string ("" for empty).
func stringArg(s xdm.Sequence) (string, error) {
	it, err := xdm.AtomizeSequence(s).AtMostOne()
	if err != nil || it == nil {
		return "", err
	}
	return it.String(), nil
}

// numArg atomizes a zero-or-one sequence to a numeric item (nil for
// empty); untyped values are cast to double.
func numArg(s xdm.Sequence) (xdm.Item, error) {
	it, err := xdm.AtomizeSequence(s).AtMostOne()
	if err != nil || it == nil {
		return nil, err
	}
	if it.Type() == xdm.TUntypedAtomic {
		return xdm.Cast(it, xdm.TDouble)
	}
	if !it.Type().IsNumeric() {
		return nil, fmt.Errorf("fn: expected a number, got %s", it.Type())
	}
	return it, nil
}

// intArg atomizes a required integer argument.
func intArg(s xdm.Sequence) (int64, error) {
	it, err := xdm.AtomizeSequence(s).One()
	if err != nil {
		return 0, err
	}
	c, err := xdm.Cast(it, xdm.TInteger)
	if err != nil {
		return 0, err
	}
	return int64(c.(xdm.Integer)), nil
}

func str(s string) xdm.Sequence { return xdm.Singleton(xdm.String(s)) }

func boolean(b bool) xdm.Sequence { return xdm.Singleton(xdm.Boolean(b)) }

func integer(n int64) xdm.Sequence { return xdm.Singleton(xdm.Integer(n)) }

// --- strings ----------------------------------------------------------------

func registerStrings(reg *runtime.Registry) {
	ranged(reg, "string", 0, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := argOrContext(ctx, args)
		if err != nil {
			return nil, err
		}
		it, err := s.AtMostOne()
		if err != nil {
			return nil, err
		}
		if it == nil {
			return str(""), nil
		}
		return str(it.String()), nil
	})
	reg.Register(&runtime.Function{Name: fnName("concat"), MinArgs: 2, MaxArgs: -1,
		Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			var b strings.Builder
			for _, a := range args {
				s, err := stringArg(a)
				if err != nil {
					return nil, err
				}
				b.WriteString(s)
			}
			return str(b.String()), nil
		}})
	ranged(reg, "string-join", 1, 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		sep := ""
		if len(args) == 2 {
			var err error
			if sep, err = stringArg(args[1]); err != nil {
				return nil, err
			}
		}
		parts := make([]string, len(args[0]))
		for i, it := range xdm.AtomizeSequence(args[0]) {
			parts[i] = it.String()
		}
		return str(strings.Join(parts, sep)), nil
	})
	ranged(reg, "substring", 2, 3, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		start, err := numArg(args[1])
		if err != nil {
			return nil, err
		}
		if start == nil {
			return str(""), nil
		}
		runes := []rune(s)
		from := math.Round(toF(start))
		to := math.Inf(1)
		if len(args) == 3 {
			l, err := numArg(args[2])
			if err != nil {
				return nil, err
			}
			if l == nil {
				return str(""), nil
			}
			to = from + math.Round(toF(l))
		}
		var b strings.Builder
		for i, r := range runes {
			p := float64(i + 1)
			if p >= from && p < to {
				b.WriteRune(r)
			}
		}
		return str(b.String()), nil
	})
	ranged(reg, "string-length", 0, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := argOrContext(ctx, args)
		if err != nil {
			return nil, err
		}
		v, err := stringArg(s)
		if err != nil {
			return nil, err
		}
		return integer(int64(len([]rune(v)))), nil
	})
	// The paper's AJAX example calls fn:length on a string (§4.4); keep
	// it as an alias for string-length.
	ranged(reg, "length", 0, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := argOrContext(ctx, args)
		if err != nil {
			return nil, err
		}
		v, err := stringArg(s)
		if err != nil {
			return nil, err
		}
		return integer(int64(len([]rune(v)))), nil
	})
	ranged(reg, "normalize-space", 0, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := argOrContext(ctx, args)
		if err != nil {
			return nil, err
		}
		v, err := stringArg(s)
		if err != nil {
			return nil, err
		}
		return str(strings.Join(strings.Fields(v), " ")), nil
	})
	simple(reg, "upper-case", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		v, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		return str(strings.ToUpper(v)), nil
	})
	simple(reg, "lower-case", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		v, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		return str(strings.ToLower(v)), nil
	})
	simple(reg, "translate", 3, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		from, err := stringArg(args[1])
		if err != nil {
			return nil, err
		}
		to, err := stringArg(args[2])
		if err != nil {
			return nil, err
		}
		fr, tr := []rune(from), []rune(to)
		var b strings.Builder
		for _, r := range s {
			idx := -1
			for i, f := range fr {
				if f == r {
					idx = i
					break
				}
			}
			switch {
			case idx < 0:
				b.WriteRune(r)
			case idx < len(tr):
				b.WriteRune(tr[idx])
			}
		}
		return str(b.String()), nil
	})
	binStr := func(local string, f func(a, b string) bool) {
		simple(reg, local, 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			a, err := stringArg(args[0])
			if err != nil {
				return nil, err
			}
			b, err := stringArg(args[1])
			if err != nil {
				return nil, err
			}
			return boolean(f(a, b)), nil
		})
	}
	binStr("contains", strings.Contains)
	binStr("starts-with", strings.HasPrefix)
	binStr("ends-with", strings.HasSuffix)
	simple(reg, "substring-before", 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		a, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		b, err := stringArg(args[1])
		if err != nil {
			return nil, err
		}
		if i := strings.Index(a, b); i >= 0 && b != "" {
			return str(a[:i]), nil
		}
		return str(""), nil
	})
	simple(reg, "substring-after", 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		a, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		b, err := stringArg(args[1])
		if err != nil {
			return nil, err
		}
		if i := strings.Index(a, b); i >= 0 && b != "" {
			return str(a[i+len(b):]), nil
		}
		return str(""), nil
	})
	simple(reg, "compare", 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		a, err := xdm.AtomizeSequence(args[0]).AtMostOne()
		if err != nil || a == nil {
			return nil, err
		}
		b, err := xdm.AtomizeSequence(args[1]).AtMostOne()
		if err != nil || b == nil {
			return nil, err
		}
		return integer(int64(strings.Compare(a.String(), b.String()))), nil
	})
	simple(reg, "codepoints-to-string", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		var b strings.Builder
		for _, it := range xdm.AtomizeSequence(args[0]) {
			c, err := xdm.Cast(it, xdm.TInteger)
			if err != nil {
				return nil, err
			}
			b.WriteRune(rune(c.(xdm.Integer)))
		}
		return str(b.String()), nil
	})
	simple(reg, "string-to-codepoints", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		var out xdm.Sequence
		for _, r := range s {
			out = append(out, xdm.Integer(r))
		}
		return out, nil
	})
	simple(reg, "encode-for-uri", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		const unreserved = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_.~"
		var b strings.Builder
		for _, c := range []byte(s) {
			if strings.IndexByte(unreserved, c) >= 0 {
				b.WriteByte(c)
			} else {
				fmt.Fprintf(&b, "%%%02X", c)
			}
		}
		return str(b.String()), nil
	})
}

func toF(it xdm.Item) float64 {
	c, err := xdm.Cast(it, xdm.TDouble)
	if err != nil {
		return math.NaN()
	}
	return float64(c.(xdm.Double))
}

// --- numeric -----------------------------------------------------------------

func registerNumeric(reg *runtime.Registry) {
	unary := func(local string, f func(xdm.Item) (xdm.Item, error)) {
		simple(reg, local, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			v, err := numArg(args[0])
			if err != nil || v == nil {
				return nil, err
			}
			r, err := f(v)
			if err != nil {
				return nil, err
			}
			return xdm.Singleton(r), nil
		})
	}
	unary("abs", func(v xdm.Item) (xdm.Item, error) {
		neg, err := xdm.CompareValues("lt", v, xdm.Integer(0))
		if err != nil {
			return nil, err
		}
		if neg {
			return xdm.Negate(v)
		}
		return v, nil
	})
	unary("floor", func(v xdm.Item) (xdm.Item, error) {
		if d, ok := v.(xdm.Double); ok {
			return xdm.Double(math.Floor(float64(d))), nil
		}
		f := math.Floor(toF(v))
		return xdm.Integer(int64(f)), nil
	})
	unary("ceiling", func(v xdm.Item) (xdm.Item, error) {
		if d, ok := v.(xdm.Double); ok {
			return xdm.Double(math.Ceil(float64(d))), nil
		}
		f := math.Ceil(toF(v))
		return xdm.Integer(int64(f)), nil
	})
	unary("round", func(v xdm.Item) (xdm.Item, error) {
		if d, ok := v.(xdm.Double); ok {
			return xdm.Double(math.Floor(float64(d) + 0.5)), nil
		}
		f := math.Floor(toF(v) + 0.5)
		return xdm.Integer(int64(f)), nil
	})
	ranged(reg, "round-half-to-even", 1, 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		v, err := numArg(args[0])
		if err != nil || v == nil {
			return nil, err
		}
		prec := int64(0)
		if len(args) == 2 {
			if prec, err = intArg(args[1]); err != nil {
				return nil, err
			}
		}
		scale := math.Pow(10, float64(prec))
		f := toF(v) * scale
		r := math.RoundToEven(f) / scale
		if _, ok := v.(xdm.Double); ok {
			return xdm.Singleton(xdm.Double(r)), nil
		}
		if prec <= 0 {
			return integer(int64(r)), nil
		}
		d, err := xdm.DecimalFromString(fmt.Sprintf("%.*f", prec, r))
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(d), nil
	})
	ranged(reg, "number", 0, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := argOrContext(ctx, args)
		if err != nil {
			return nil, err
		}
		it, err := xdm.AtomizeSequence(s).AtMostOne()
		if err != nil || it == nil {
			return xdm.Singleton(xdm.Double(math.NaN())), nil
		}
		c, err := xdm.Cast(it, xdm.TDouble)
		if err != nil {
			return xdm.Singleton(xdm.Double(math.NaN())), nil
		}
		return xdm.Singleton(c), nil
	})
}

// --- booleans ---------------------------------------------------------------

func registerBooleans(reg *runtime.Registry) {
	simple(reg, "true", 0, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return boolean(true), nil
	})
	simple(reg, "false", 0, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return boolean(false), nil
	})
	simple(reg, "not", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		b, err := xdm.EffectiveBooleanValue(args[0])
		if err != nil {
			return nil, err
		}
		return boolean(!b), nil
	})
	simple(reg, "boolean", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		b, err := xdm.EffectiveBooleanValue(args[0])
		if err != nil {
			return nil, err
		}
		return boolean(b), nil
	})
}
