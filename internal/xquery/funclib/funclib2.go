package funclib

import (
	"fmt"
	"math"
	"regexp"
	"strings"
	"time"

	"repro/internal/dom"
	"repro/internal/dom/index"
	"repro/internal/xdm"
	"repro/internal/xquery/runtime"
)

// --- sequences ----------------------------------------------------------------

func registerSequences(reg *runtime.Registry) {
	simple(reg, "empty", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return boolean(len(args[0]) == 0), nil
	})
	simple(reg, "exists", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return boolean(len(args[0]) > 0), nil
	})
	simple(reg, "count", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return integer(int64(len(args[0]))), nil
	})
	simple(reg, "reverse", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		in := args[0]
		out := make(xdm.Sequence, len(in))
		for i, it := range in {
			out[len(in)-1-i] = it
		}
		return out, nil
	})
	simple(reg, "data", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.AtomizeSequence(args[0]), nil
	})
	simple(reg, "distinct-values", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		seen := map[string]bool{}
		var out xdm.Sequence
		for _, it := range xdm.AtomizeSequence(args[0]) {
			k := valueKey(it)
			if !seen[k] {
				seen[k] = true
				out = append(out, it)
			}
		}
		return out, nil
	})
	simple(reg, "insert-before", 3, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		pos, err := intArg(args[1])
		if err != nil {
			return nil, err
		}
		target, ins := args[0], args[2]
		if pos < 1 {
			pos = 1
		}
		if pos > int64(len(target))+1 {
			pos = int64(len(target)) + 1
		}
		out := make(xdm.Sequence, 0, len(target)+len(ins))
		out = append(out, target[:pos-1]...)
		out = append(out, ins...)
		out = append(out, target[pos-1:]...)
		return out, nil
	})
	simple(reg, "remove", 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		pos, err := intArg(args[1])
		if err != nil {
			return nil, err
		}
		in := args[0]
		if pos < 1 || pos > int64(len(in)) {
			return in, nil
		}
		out := make(xdm.Sequence, 0, len(in)-1)
		out = append(out, in[:pos-1]...)
		out = append(out, in[pos:]...)
		return out, nil
	})
	ranged(reg, "subsequence", 2, 3, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		in := args[0]
		start, err := numArg(args[1])
		if err != nil || start == nil {
			return nil, err
		}
		from := math.Round(toF(start))
		to := math.Inf(1)
		if len(args) == 3 {
			l, err := numArg(args[2])
			if err != nil || l == nil {
				return nil, err
			}
			to = from + math.Round(toF(l))
		}
		var out xdm.Sequence
		for i, it := range in {
			p := float64(i + 1)
			if p >= from && p < to {
				out = append(out, it)
			}
		}
		return out, nil
	})
	simple(reg, "index-of", 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		search, err := xdm.AtomizeSequence(args[1]).One()
		if err != nil {
			return nil, err
		}
		var out xdm.Sequence
		for i, it := range xdm.AtomizeSequence(args[0]) {
			eq, err := xdm.CompareValues("eq", it, search)
			if err == nil && eq {
				out = append(out, xdm.Integer(i+1))
			}
		}
		return out, nil
	})
	simple(reg, "zero-or-one", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if len(args[0]) > 1 {
			return nil, fmt.Errorf("fn:zero-or-one: sequence has %d items", len(args[0]))
		}
		return args[0], nil
	})
	simple(reg, "one-or-more", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if len(args[0]) == 0 {
			return nil, fmt.Errorf("fn:one-or-more: empty sequence")
		}
		return args[0], nil
	})
	simple(reg, "exactly-one", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if len(args[0]) != 1 {
			return nil, fmt.Errorf("fn:exactly-one: sequence has %d items", len(args[0]))
		}
		return args[0], nil
	})
	ranged(reg, "deep-equal", 2, 3, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		a, b := args[0], args[1]
		if len(a) != len(b) {
			return boolean(false), nil
		}
		for i := range a {
			if !xdm.DeepEqual(a[i], b[i]) {
				return boolean(false), nil
			}
		}
		return boolean(true), nil
	})
	ranged(reg, "error", 0, 3, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		msg := "fn:error called"
		if len(args) >= 2 {
			d, err := stringArg(args[1])
			if err == nil && d != "" {
				msg = d
			}
		} else if len(args) == 1 {
			if c, err := stringArg(args[0]); err == nil && c != "" {
				msg = c
			}
		}
		return nil, fmt.Errorf("%s", msg)
	})
	simple(reg, "trace", 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return args[0], nil
	})
}

// valueKey builds a distinct-values equality key: numerics collapse to
// their double value, strings/untyped to their text.
func valueKey(it xdm.Item) string {
	t := it.Type()
	switch {
	case t.IsNumeric():
		f := toF(it)
		if math.IsNaN(f) {
			return "num:NaN"
		}
		return fmt.Sprintf("num:%v", f)
	case t == xdm.TString || t == xdm.TUntypedAtomic || t == xdm.TAnyURI:
		return "str:" + it.String()
	case t == xdm.TBoolean:
		return "bool:" + it.String()
	default:
		return t.String() + ":" + it.String()
	}
}

// --- aggregates ----------------------------------------------------------------

func registerAggregates(reg *runtime.Registry) {
	ranged(reg, "sum", 1, 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		items := xdm.AtomizeSequence(args[0])
		if len(items) == 0 {
			if len(args) == 2 {
				return args[1], nil
			}
			return integer(0), nil
		}
		acc, err := coerceNumericOrDuration(items[0])
		if err != nil {
			return nil, err
		}
		for _, it := range items[1:] {
			v, err := coerceNumericOrDuration(it)
			if err != nil {
				return nil, err
			}
			if acc, err = xdm.Arithmetic("+", acc, v); err != nil {
				return nil, err
			}
		}
		return xdm.Singleton(acc), nil
	})
	simple(reg, "avg", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		items := xdm.AtomizeSequence(args[0])
		if len(items) == 0 {
			return nil, nil
		}
		acc, err := coerceNumericOrDuration(items[0])
		if err != nil {
			return nil, err
		}
		for _, it := range items[1:] {
			v, err := coerceNumericOrDuration(it)
			if err != nil {
				return nil, err
			}
			if acc, err = xdm.Arithmetic("+", acc, v); err != nil {
				return nil, err
			}
		}
		r, err := xdm.Arithmetic("div", acc, xdm.Integer(int64(len(items))))
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(r), nil
	})
	extreme := func(local, op string) {
		ranged(reg, local, 1, 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			items := xdm.AtomizeSequence(args[0])
			if len(items) == 0 {
				return nil, nil
			}
			best, err := coerceComparable(items[0])
			if err != nil {
				return nil, err
			}
			for _, it := range items[1:] {
				v, err := coerceComparable(it)
				if err != nil {
					return nil, err
				}
				better, err := xdm.CompareValues(op, v, best)
				if err != nil {
					return nil, err
				}
				if better {
					best = v
				}
			}
			return xdm.Singleton(best), nil
		})
	}
	extreme("min", "lt")
	extreme("max", "gt")
}

func coerceNumericOrDuration(it xdm.Item) (xdm.Item, error) {
	t := it.Type()
	switch {
	case t == xdm.TUntypedAtomic:
		return xdm.Cast(it, xdm.TDouble)
	case t.IsNumeric(), t == xdm.TDuration, t == xdm.TYearMonthDuration, t == xdm.TDayTimeDuration:
		return it, nil
	default:
		return nil, fmt.Errorf("fn: cannot aggregate %s values", t)
	}
}

func coerceComparable(it xdm.Item) (xdm.Item, error) {
	if it.Type() == xdm.TUntypedAtomic {
		return xdm.Cast(it, xdm.TDouble)
	}
	return it, nil
}

// --- nodes ------------------------------------------------------------------------

func registerNodes(reg *runtime.Registry) {
	nodeArg := func(ctx *runtime.Context, args []xdm.Sequence) (*dom.Node, error) {
		s, err := argOrContext(ctx, args)
		if err != nil {
			return nil, err
		}
		it, err := s.AtMostOne()
		if err != nil || it == nil {
			return nil, err
		}
		n, ok := xdm.IsNode(it)
		if !ok {
			return nil, fmt.Errorf("fn: expected a node")
		}
		return n, nil
	}
	ranged(reg, "name", 0, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		n, err := nodeArg(ctx, args)
		if err != nil || n == nil {
			return str(""), err
		}
		switch n.Type {
		case dom.ElementNode, dom.AttributeNode, dom.ProcessingInstructionNode:
			return str(n.Name.String()), nil
		default:
			return str(""), nil
		}
	})
	ranged(reg, "local-name", 0, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		n, err := nodeArg(ctx, args)
		if err != nil || n == nil {
			return str(""), err
		}
		return str(n.Name.Local), nil
	})
	ranged(reg, "namespace-uri", 0, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		n, err := nodeArg(ctx, args)
		if err != nil || n == nil {
			return str(""), err
		}
		return str(n.Name.Space), nil
	})
	ranged(reg, "root", 0, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		n, err := nodeArg(ctx, args)
		if err != nil || n == nil {
			return nil, err
		}
		return xdm.Singleton(xdm.NewNode(n.Root())), nil
	})
	ranged(reg, "base-uri", 0, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		n, err := nodeArg(ctx, args)
		if err != nil || n == nil {
			return nil, err
		}
		if b := n.Base(); b != "" {
			return xdm.Singleton(xdm.AnyURI(b)), nil
		}
		return nil, nil
	})
	// fn:id — elements with matching id attributes, the XQuery twin of
	// getElementById (our documents are schemaless, so any attribute
	// named "id" qualifies).
	ranged(reg, "id", 1, 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		var root *dom.Node
		if len(args) == 2 {
			it, err := args[1].One()
			if err != nil {
				return nil, err
			}
			n, ok := xdm.IsNode(it)
			if !ok {
				return nil, fmt.Errorf("fn:id: second argument must be a node")
			}
			root = n.Root()
		} else {
			n, ok := xdm.IsNode(ctx.Item)
			if !ok {
				return nil, fmt.Errorf("fn:id: context item is not a node")
			}
			root = n.Root()
		}
		want := map[string]bool{}
		for _, it := range xdm.AtomizeSequence(args[0]) {
			for _, id := range strings.Fields(it.String()) {
				want[id] = true
			}
		}
		// The id index answers each value in O(matches); the per-value
		// lists merge back to document order through the runtime's
		// index-aware sort. NoIndex, a declined Probe (the amortised
		// rebuild heuristic) and a stale index all fall back to the
		// full walk.
		if !ctx.NoIndex {
			if idx := index.Probe(root); idx != nil {
				var nodes []*dom.Node
				usable := true
				for id := range want {
					if id == "" {
						continue
					}
					list, ok := idx.ByID(id)
					if !ok {
						usable = false
						break
					}
					nodes = append(nodes, list...)
				}
				if usable {
					return ctx.SortedNodeSequence(nodes), nil
				}
			}
		}
		var out xdm.Sequence
		root.Walk(func(n *dom.Node) bool {
			if n.Type == dom.ElementNode && want[n.AttrValue("id")] && n.AttrValue("id") != "" {
				out = append(out, xdm.NewNode(n))
			}
			return true
		})
		return out, nil
	})
	simple(reg, "node-name", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		n, err := nodeArg(ctx, args)
		if err != nil || n == nil {
			return nil, err
		}
		if n.Name.IsZero() {
			return nil, nil
		}
		return xdm.Singleton(xdm.QNameValue{Name: n.Name}), nil
	})
}

// --- dates ------------------------------------------------------------------------

func registerDates(reg *runtime.Registry) {
	simple(reg, "current-dateTime", 0, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.Singleton(xdm.DateTime{T: ctx.Now, Kind: xdm.TDateTime, HasTZ: true}), nil
	})
	simple(reg, "current-date", 0, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		y, m, d := ctx.Now.Date()
		return xdm.Singleton(xdm.DateTime{T: timeDate(y, int(m), d), Kind: xdm.TDate, HasTZ: false}), nil
	})
	simple(reg, "current-time", 0, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return xdm.Singleton(xdm.DateTime{T: ctx.Now, Kind: xdm.TTime, HasTZ: true}), nil
	})
	component := func(local string, kinds []xdm.Type, f func(dt xdm.DateTime) xdm.Item) {
		simple(reg, local, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			it, err := xdm.AtomizeSequence(args[0]).AtMostOne()
			if err != nil || it == nil {
				return nil, err
			}
			if it.Type() == xdm.TUntypedAtomic || it.Type() == xdm.TString {
				for _, k := range kinds {
					if c, err := xdm.Cast(it, k); err == nil {
						it = c
						break
					}
				}
			}
			dt, ok := it.(xdm.DateTime)
			if !ok {
				return nil, fmt.Errorf("fn:%s: expected a date/time, got %s", local, it.Type())
			}
			return xdm.Singleton(f(dt)), nil
		})
	}
	component("year-from-dateTime", []xdm.Type{xdm.TDateTime}, func(dt xdm.DateTime) xdm.Item { return xdm.Integer(dt.T.Year()) })
	component("month-from-dateTime", []xdm.Type{xdm.TDateTime}, func(dt xdm.DateTime) xdm.Item { return xdm.Integer(int64(dt.T.Month())) })
	component("day-from-dateTime", []xdm.Type{xdm.TDateTime}, func(dt xdm.DateTime) xdm.Item { return xdm.Integer(dt.T.Day()) })
	component("hours-from-dateTime", []xdm.Type{xdm.TDateTime}, func(dt xdm.DateTime) xdm.Item { return xdm.Integer(dt.T.Hour()) })
	component("minutes-from-dateTime", []xdm.Type{xdm.TDateTime}, func(dt xdm.DateTime) xdm.Item { return xdm.Integer(dt.T.Minute()) })
	component("seconds-from-dateTime", []xdm.Type{xdm.TDateTime}, func(dt xdm.DateTime) xdm.Item { return xdm.Integer(dt.T.Second()) })
	component("year-from-date", []xdm.Type{xdm.TDate}, func(dt xdm.DateTime) xdm.Item { return xdm.Integer(dt.T.Year()) })
	component("month-from-date", []xdm.Type{xdm.TDate}, func(dt xdm.DateTime) xdm.Item { return xdm.Integer(int64(dt.T.Month())) })
	component("day-from-date", []xdm.Type{xdm.TDate}, func(dt xdm.DateTime) xdm.Item { return xdm.Integer(dt.T.Day()) })
	component("hours-from-time", []xdm.Type{xdm.TTime}, func(dt xdm.DateTime) xdm.Item { return xdm.Integer(dt.T.Hour()) })
	component("minutes-from-time", []xdm.Type{xdm.TTime}, func(dt xdm.DateTime) xdm.Item { return xdm.Integer(dt.T.Minute()) })
	component("seconds-from-time", []xdm.Type{xdm.TTime}, func(dt xdm.DateTime) xdm.Item { return xdm.Integer(dt.T.Second()) })

	durComponent := func(local string, f func(d xdm.Duration) xdm.Item) {
		simple(reg, local, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
			it, err := xdm.AtomizeSequence(args[0]).AtMostOne()
			if err != nil || it == nil {
				return nil, err
			}
			if it.Type() == xdm.TUntypedAtomic || it.Type() == xdm.TString {
				if c, err := xdm.Cast(it, xdm.TDuration); err == nil {
					it = c
				}
			}
			d, ok := it.(xdm.Duration)
			if !ok {
				return nil, fmt.Errorf("fn:%s: expected a duration, got %s", local, it.Type())
			}
			return xdm.Singleton(f(d)), nil
		})
	}
	durComponent("years-from-duration", func(d xdm.Duration) xdm.Item {
		return xdm.Integer(d.Months / 12)
	})
	durComponent("months-from-duration", func(d xdm.Duration) xdm.Item {
		return xdm.Integer(d.Months % 12)
	})
	durComponent("days-from-duration", func(d xdm.Duration) xdm.Item {
		return xdm.Integer(int64(d.Nanos.Hours()) / 24)
	})
	durComponent("hours-from-duration", func(d xdm.Duration) xdm.Item {
		return xdm.Integer(int64(d.Nanos.Hours()) % 24)
	})
	durComponent("minutes-from-duration", func(d xdm.Duration) xdm.Item {
		return xdm.Integer(int64(d.Nanos.Minutes()) % 60)
	})
	durComponent("seconds-from-duration", func(d xdm.Duration) xdm.Item {
		return mustSecondsDecimal(d.Nanos % time.Minute)
	})
}

func timeDate(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

// mustSecondsDecimal renders a sub-minute duration as an exact decimal
// number of seconds.
func mustSecondsDecimal(d time.Duration) xdm.Decimal {
	neg := d < 0
	if neg {
		d = -d
	}
	s := fmt.Sprintf("%d.%09d", d/time.Second, d%time.Second)
	if neg {
		s = "-" + s
	}
	dec, err := xdm.DecimalFromString(s)
	if err != nil {
		return xdm.DecimalFromInt(int64(d / time.Second))
	}
	return dec
}

// --- regex -------------------------------------------------------------------------

func registerRegex(reg *runtime.Registry) {
	compile := func(pattern, flags string) (*regexp.Regexp, error) {
		var goFlags string
		for _, f := range flags {
			switch f {
			case 'i':
				goFlags += "i"
			case 's':
				goFlags += "s"
			case 'm':
				goFlags += "m"
			case 'x':
				// Free-spacing mode: strip whitespace.
				pattern = strings.Join(strings.Fields(pattern), "")
			default:
				return nil, fmt.Errorf("fn: unsupported regex flag %q", string(f))
			}
		}
		if goFlags != "" {
			pattern = "(?" + goFlags + ")" + pattern
		}
		return regexp.Compile(pattern)
	}
	ranged(reg, "matches", 2, 3, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		pat, err := stringArg(args[1])
		if err != nil {
			return nil, err
		}
		flags := ""
		if len(args) == 3 {
			if flags, err = stringArg(args[2]); err != nil {
				return nil, err
			}
		}
		re, err := compile(pat, flags)
		if err != nil {
			return nil, err
		}
		return boolean(re.MatchString(s)), nil
	})
	ranged(reg, "replace", 3, 4, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		pat, err := stringArg(args[1])
		if err != nil {
			return nil, err
		}
		rep, err := stringArg(args[2])
		if err != nil {
			return nil, err
		}
		flags := ""
		if len(args) == 4 {
			if flags, err = stringArg(args[3]); err != nil {
				return nil, err
			}
		}
		re, err := compile(pat, flags)
		if err != nil {
			return nil, err
		}
		// XPath uses $1..$9 for group references, same as Go's Expand.
		return str(re.ReplaceAllString(s, rep)), nil
	})
	ranged(reg, "tokenize", 2, 3, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		pat, err := stringArg(args[1])
		if err != nil {
			return nil, err
		}
		flags := ""
		if len(args) == 3 {
			if flags, err = stringArg(args[2]); err != nil {
				return nil, err
			}
		}
		re, err := compile(pat, flags)
		if err != nil {
			return nil, err
		}
		if s == "" {
			return nil, nil
		}
		var out xdm.Sequence
		for _, part := range re.Split(s, -1) {
			out = append(out, xdm.String(part))
		}
		return out, nil
	})
}

// --- documents and context ------------------------------------------------------------

func registerDocs(reg *runtime.Registry) {
	simple(reg, "doc", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if ctx.Prog != nil && ctx.Prog.BlockDoc {
			// Paper §4.2.1: fn:doc and fn:put are blocked in the browser
			// for security; use browser:document and REST instead.
			return nil, fmt.Errorf("fn:doc is blocked in the browser profile")
		}
		uri, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		if ctx.Docs == nil {
			return nil, fmt.Errorf("fn:doc: no document resolver available")
		}
		doc, err := ctx.Docs(uri)
		if err != nil {
			return nil, fmt.Errorf("fn:doc(%q): %w", uri, err)
		}
		return xdm.Singleton(xdm.NewNode(doc)), nil
	})
	simple(reg, "doc-available", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if ctx.Prog != nil && ctx.Prog.BlockDoc {
			return boolean(false), nil
		}
		uri, err := stringArg(args[0])
		if err != nil {
			return nil, err
		}
		if ctx.Docs == nil {
			return boolean(false), nil
		}
		_, err = ctx.Docs(uri)
		return boolean(err == nil), nil
	})
	simple(reg, "put", 2, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		return nil, fmt.Errorf("fn:put is blocked (paper §4.2.1)")
	})
	ranged(reg, "collection", 0, 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if ctx.Prog != nil && ctx.Prog.BlockDoc {
			return nil, fmt.Errorf("fn:collection is blocked in the browser profile")
		}
		if ctx.Collections == nil && ctx.CollectionsIter == nil {
			return nil, fmt.Errorf("fn:collection: no collection resolver available")
		}
		uri := ""
		if len(args) == 1 {
			var err error
			if uri, err = stringArg(args[0]); err != nil {
				return nil, err
			}
		}
		if ctx.Collections == nil {
			// Only the streaming resolver is installed: drain it.
			it, err := ctx.CollectionsIter(uri)
			if err != nil {
				return nil, fmt.Errorf("fn:collection(%q): %w", uri, err)
			}
			seq, err := xdm.Materialize(it)
			if err != nil {
				return nil, fmt.Errorf("fn:collection(%q): %w", uri, err)
			}
			return seq, nil
		}
		docs, err := ctx.Collections(uri)
		if err != nil {
			return nil, fmt.Errorf("fn:collection(%q): %w", uri, err)
		}
		out := make(xdm.Sequence, len(docs))
		for i, d := range docs {
			out[i] = xdm.NewNode(d)
		}
		return out, nil
	})
}

func registerContext(reg *runtime.Registry) {
	simple(reg, "position", 0, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if ctx.Pos == 0 {
			return nil, fmt.Errorf("fn:position: context position is undefined")
		}
		return integer(int64(ctx.Pos)), nil
	})
	simple(reg, "last", 0, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if ctx.Size == 0 {
			return nil, fmt.Errorf("fn:last: context size is undefined")
		}
		return integer(int64(ctx.Size)), nil
	})
}
