package funclib

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery/parser"
	"repro/internal/xquery/runtime"
)

// call invokes a built-in directly.
func call(t *testing.T, local string, args ...xdm.Sequence) (xdm.Sequence, error) {
	t.Helper()
	reg := runtime.NewRegistry()
	Register(reg)
	f := reg.Lookup(dom.QName{Space: parser.FnNamespace, Local: local}, len(args))
	if f == nil {
		t.Fatalf("no function fn:%s/%d", local, len(args))
	}
	ctx := &runtime.Context{Now: time.Date(2009, 4, 20, 10, 30, 0, 0, time.UTC)}
	return f.Invoke(ctx, args)
}

func mustCall(t *testing.T, local string, args ...xdm.Sequence) xdm.Sequence {
	t.Helper()
	res, err := call(t, local, args...)
	if err != nil {
		t.Fatalf("fn:%s: %v", local, err)
	}
	return res
}

func one(v xdm.Item) xdm.Sequence { return xdm.Sequence{v} }

func TestRegistrySize(t *testing.T) {
	reg := runtime.NewRegistry()
	Register(reg)
	if n := reg.Names(); n < 90 {
		t.Errorf("registered %d function names, want at least 90", n)
	}
}

func TestSubstringEdgeCases(t *testing.T) {
	// XPath substring uses rounded positions and handles NaN/infinite.
	tests := []struct {
		args []xdm.Sequence
		want string
	}{
		{[]xdm.Sequence{one(xdm.String("motor car")), one(xdm.Double(6))}, " car"},
		{[]xdm.Sequence{one(xdm.String("metadata")), one(xdm.Double(4)), one(xdm.Double(3))}, "ada"},
		{[]xdm.Sequence{one(xdm.String("12345")), one(xdm.Double(1.5)), one(xdm.Double(2.6))}, "234"},
		{[]xdm.Sequence{one(xdm.String("12345")), one(xdm.Double(0)), one(xdm.Double(3))}, "12"},
		{[]xdm.Sequence{one(xdm.String("12345")), one(xdm.Double(-3))}, "12345"},
	}
	for _, tt := range tests {
		got := mustCall(t, "substring", tt.args...)
		if got[0].String() != tt.want {
			t.Errorf("substring = %q, want %q", got[0].String(), tt.want)
		}
	}
}

func TestStringFunctionsOnEmpty(t *testing.T) {
	// Most string functions treat the empty sequence as "".
	if got := mustCall(t, "string-length", xdm.Sequence{}); got[0].String() != "0" {
		t.Errorf("string-length(()) = %v", got)
	}
	if got := mustCall(t, "upper-case", xdm.Sequence{}); got[0].String() != "" {
		t.Errorf("upper-case(()) = %v", got)
	}
	if got := mustCall(t, "concat", xdm.Sequence{}, one(xdm.String("x"))); got[0].String() != "x" {
		t.Errorf("concat((), x) = %v", got)
	}
}

func TestCurrentDateTimeUsesContextNow(t *testing.T) {
	got := mustCall(t, "current-dateTime")
	if !strings.HasPrefix(got[0].String(), "2009-04-20T10:30:00") {
		t.Errorf("current-dateTime = %s", got[0])
	}
	d := mustCall(t, "current-date")
	if d[0].String() != "2009-04-20" {
		t.Errorf("current-date = %s", d[0])
	}
}

func TestNumericEdgeCases(t *testing.T) {
	// round on negative halves rounds toward positive infinity.
	if got := mustCall(t, "round", one(xdm.Double(-2.5))); got[0].String() != "-2" {
		t.Errorf("round(-2.5) = %s", got[0])
	}
	// floor/ceiling keep the operand type.
	if got := mustCall(t, "floor", one(xdm.Integer(5))); got[0].Type() != xdm.TInteger {
		t.Errorf("floor(int) type = %s", got[0].Type())
	}
	if got := mustCall(t, "ceiling", one(xdm.Double(1.2))); got[0].Type() != xdm.TDouble {
		t.Errorf("ceiling(double) type = %s", got[0].Type())
	}
	// round-half-to-even with precision.
	got := mustCall(t, "round-half-to-even",
		one(mustDecimal(t, "3.567812")), one(xdm.Integer(2)))
	if got[0].String() != "3.57" {
		t.Errorf("round-half-to-even = %s", got[0])
	}
	// Empty sequences propagate.
	if got := mustCall(t, "abs", xdm.Sequence{}); len(got) != 0 {
		t.Errorf("abs(()) = %v", got)
	}
}

func mustDecimal(t *testing.T, s string) xdm.Decimal {
	t.Helper()
	d, err := xdm.DecimalFromString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAggregatesMixedTypes(t *testing.T) {
	// sum promotes across the numeric tower.
	got := mustCall(t, "sum", xdm.Sequence{xdm.Integer(1), mustDecimal(t, "0.5"), xdm.Double(0.25)})
	if got[0].String() != "1.75" {
		t.Errorf("sum = %s", got[0])
	}
	// sum of untyped casts to double.
	got = mustCall(t, "sum", xdm.Sequence{xdm.UntypedAtomic("2"), xdm.UntypedAtomic("3")})
	if got[0].String() != "5" {
		t.Errorf("untyped sum = %s", got[0])
	}
	// sum with a zero-value override.
	got = mustCall(t, "sum", xdm.Sequence{}, one(xdm.Double(0)))
	if got[0].Type() != xdm.TDouble {
		t.Errorf("sum((), 0e0) type = %s", got[0].Type())
	}
	// sum of strings errors.
	if _, err := call(t, "sum", xdm.Sequence{xdm.String("x")}); err == nil {
		t.Error("sum of strings must fail")
	}
	// min/max on dates.
	d1, _ := xdm.ParseDateTime("2008-01-01", xdm.TDate)
	d2, _ := xdm.ParseDateTime("2009-01-01", xdm.TDate)
	got = mustCall(t, "min", xdm.Sequence{d2, d1})
	if got[0].String() != "2008-01-01" {
		t.Errorf("min(dates) = %s", got[0])
	}
	// avg of durations.
	dur1, _ := xdm.ParseDuration("PT2H")
	dur2, _ := xdm.ParseDuration("PT4H")
	got = mustCall(t, "avg", xdm.Sequence{dur1, dur2})
	if got[0].String() != "PT3H" {
		t.Errorf("avg(durations) = %s", got[0])
	}
}

func TestDistinctValuesSemantics(t *testing.T) {
	// 1 and 1.0 are the same value; "1" (string) is different.
	got := mustCall(t, "distinct-values",
		xdm.Sequence{xdm.Integer(1), xdm.Double(1), xdm.String("1"), mustDecimal(t, "1.0")})
	if len(got) != 2 {
		t.Errorf("distinct-values = %v", got)
	}
	// NaN equals itself for distinct-values purposes (one survivor).
	nan := xdm.Double(0)
	nanSeq := mustCall(t, "number", one(xdm.String("not-a-number")))
	nan = nanSeq[0].(xdm.Double)
	got = mustCall(t, "distinct-values", xdm.Sequence{nan, nan})
	if len(got) != 1 {
		t.Errorf("distinct NaN = %v", got)
	}
}

func TestNodeFunctions(t *testing.T) {
	doc, err := markup.Parse(`<a xmlns:p="urn:p"><p:b id="1">text</p:b><!--c--></a>`)
	if err != nil {
		t.Fatal(err)
	}
	b := doc.Elements("b")[0]
	if got := mustCall(t, "name", one(xdm.NewNode(b))); got[0].String() != "p:b" {
		t.Errorf("name = %s", got[0])
	}
	if got := mustCall(t, "local-name", one(xdm.NewNode(b))); got[0].String() != "b" {
		t.Errorf("local-name = %s", got[0])
	}
	if got := mustCall(t, "namespace-uri", one(xdm.NewNode(b))); got[0].String() != "urn:p" {
		t.Errorf("namespace-uri = %s", got[0])
	}
	if got := mustCall(t, "root", one(xdm.NewNode(b))); got[0].(xdm.Node).N != doc {
		t.Error("root wrong")
	}
	// name of a comment is "".
	comment := doc.DocumentElement().Children()[1]
	if got := mustCall(t, "name", one(xdm.NewNode(comment))); got[0].String() != "" {
		t.Errorf("name(comment) = %q", got[0].String())
	}
	// node-name returns a QName item.
	got := mustCall(t, "node-name", one(xdm.NewNode(b)))
	if got[0].Type() != xdm.TQName {
		t.Errorf("node-name type = %s", got[0].Type())
	}
}

func TestTokenizeEmptyAndAnchors(t *testing.T) {
	got := mustCall(t, "tokenize", one(xdm.String("")), one(xdm.String(",")))
	if len(got) != 0 {
		t.Errorf("tokenize(\"\") = %v", got)
	}
	got = mustCall(t, "tokenize", one(xdm.String("a,,b")), one(xdm.String(",")))
	if len(got) != 3 || got[1].String() != "" {
		t.Errorf("tokenize with empty fields = %v", got)
	}
	// Bad regex errors.
	if _, err := call(t, "matches", one(xdm.String("x")), one(xdm.String("["))); err == nil {
		t.Error("bad regex must fail")
	}
	// Unsupported flag errors.
	if _, err := call(t, "matches", one(xdm.String("x")), one(xdm.String("x")), one(xdm.String("q"))); err == nil {
		t.Error("unsupported flag must fail")
	}
}

func TestReplaceGroups(t *testing.T) {
	got := mustCall(t, "replace",
		one(xdm.String("2008-04-20")),
		one(xdm.String(`(\d+)-(\d+)-(\d+)`)),
		one(xdm.String("$3/$2/$1")))
	if got[0].String() != "20/04/2008" {
		t.Errorf("replace with groups = %s", got[0])
	}
}

func TestErrorFunction(t *testing.T) {
	if _, err := call(t, "error"); err == nil {
		t.Error("fn:error() must error")
	}
	_, err := call(t, "error", one(xdm.String("my:code")), one(xdm.String("boom")))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("fn:error description lost: %v", err)
	}
}

func TestPositionLastOutsideFocus(t *testing.T) {
	if _, err := call(t, "position"); err == nil {
		t.Error("position() without focus must fail")
	}
	if _, err := call(t, "last"); err == nil {
		t.Error("last() without focus must fail")
	}
}

func TestXSConstructors(t *testing.T) {
	reg := runtime.NewRegistry()
	Register(reg)
	f := reg.Lookup(dom.QName{Space: parser.XSNamespace, Local: "integer"}, 1)
	if f == nil {
		t.Fatal("xs:integer not registered")
	}
	res, err := f.Invoke(&runtime.Context{}, []xdm.Sequence{one(xdm.String(" 7 "))})
	if err != nil || res[0] != xdm.Integer(7) {
		t.Errorf("xs:integer = %v %v", res, err)
	}
	// Empty in, empty out.
	res, err = f.Invoke(&runtime.Context{}, []xdm.Sequence{{}})
	if err != nil || len(res) != 0 {
		t.Errorf("xs:integer(()) = %v %v", res, err)
	}
	// Invalid lexical form errors.
	if _, err := f.Invoke(&runtime.Context{}, []xdm.Sequence{one(xdm.String("x"))}); err == nil {
		t.Error("xs:integer('x') must fail")
	}
}

func TestDocBlockedProfile(t *testing.T) {
	reg := runtime.NewRegistry()
	Register(reg)
	f := reg.Lookup(dom.QName{Space: parser.FnNamespace, Local: "doc"}, 1)
	ctx := &runtime.Context{Prog: &runtime.Program{BlockDoc: true}}
	if _, err := f.Invoke(ctx, []xdm.Sequence{one(xdm.String("x.xml"))}); err == nil {
		t.Error("fn:doc must be blocked in the browser profile")
	}
	put := reg.Lookup(dom.QName{Space: parser.FnNamespace, Local: "put"}, 2)
	if _, err := put.Invoke(ctx, []xdm.Sequence{{}, {}}); err == nil {
		t.Error("fn:put must be blocked")
	}
	// doc-available is false, not an error, under the blocked profile.
	avail := reg.Lookup(dom.QName{Space: parser.FnNamespace, Local: "doc-available"}, 1)
	res, err := avail.Invoke(ctx, []xdm.Sequence{one(xdm.String("x.xml"))})
	if err != nil || res[0].String() != "false" {
		t.Errorf("doc-available = %v %v", res, err)
	}
}

func TestDurationComponents(t *testing.T) {
	d, err := xdm.ParseDuration("P2Y3MT0S")
	if err != nil {
		t.Fatal(err)
	}
	_ = d
	cases := []struct {
		fn   string
		dur  string
		want string
	}{
		{"years-from-duration", "P2Y3M", "2"},
		{"months-from-duration", "P2Y3M", "3"},
		{"days-from-duration", "P3DT10H", "3"},
		{"hours-from-duration", "P3DT10H", "10"},
		{"minutes-from-duration", "PT3H31M", "31"},
		{"seconds-from-duration", "PT1M30.5S", "30.5"},
		{"seconds-from-duration", "PT5S", "5"},
	}
	for _, tt := range cases {
		dur, err := xdm.ParseDuration(tt.dur)
		if err != nil {
			t.Fatal(err)
		}
		got := mustCall(t, tt.fn, one(dur))
		if got[0].String() != tt.want {
			t.Errorf("%s(%s) = %s, want %s", tt.fn, tt.dur, got[0], tt.want)
		}
	}
	// From a lexical string.
	got := mustCall(t, "years-from-duration", one(xdm.String("P10Y")))
	if got[0].String() != "10" {
		t.Errorf("lexical duration = %s", got[0])
	}
	// Non-duration errors.
	if _, err := call(t, "days-from-duration", one(xdm.Integer(1))); err == nil {
		t.Error("integer must fail")
	}
}
