package funclib

import (
	"sort"

	"repro/internal/dom"
	"repro/internal/xquery/runtime"
)

// Signature describes one built-in function's callable shape — the
// static view the analyzer checks calls against without instantiating
// any host state.
type Signature struct {
	Name    dom.QName
	MinArgs int
	// MaxArgs is the maximum accepted arity; -1 means variadic.
	MaxArgs    int
	Updating   bool
	Sequential bool
}

// Signatures returns the signature table of the full built-in library,
// sorted by namespace then local name then MinArgs. The table is
// rebuilt on every call; callers that care should cache it.
func Signatures() []Signature {
	reg := runtime.NewRegistry()
	Register(reg)
	var out []Signature
	for _, f := range reg.All() {
		out = append(out, Signature{
			Name:       f.Name,
			MinArgs:    f.MinArgs,
			MaxArgs:    f.MaxArgs,
			Updating:   f.Updating,
			Sequential: f.Sequential,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Name.Space != b.Name.Space {
			return a.Name.Space < b.Name.Space
		}
		if a.Name.Local != b.Name.Local {
			return a.Name.Local < b.Name.Local
		}
		return a.MinArgs < b.MinArgs
	})
	return out
}
