package funclib

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/xdm"
	"repro/internal/xqerr"
	"repro/internal/xquery/runtime"
)

// This file adds the lazy entry points of the function library:
// fn:head/fn:tail (which only make sense lazily) and Stream
// implementations for the built-ins whose answer is decided by a prefix
// of their argument — fn:exists pulls one item, fn:zero-or-one pulls at
// most two, fn:subsequence stops at the end of its window. Every
// function keeps its eager Invoke; the evaluator falls back to it when
// Context.NoStream is set.

// registerStreaming installs fn:head/fn:tail and attaches Stream
// implementations to already-registered sequence functions. A missing
// base registration is a wiring bug in this package, reported as an
// error wrapping xqerr.ErrMisconfigured rather than a panic so callers
// at any depth can surface it.
func registerStreaming(reg *runtime.Registry) error {
	var errs []error
	att := func(err error) {
		if err != nil {
			errs = append(errs, err)
		}
	}
	simple(reg, "head", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if len(args[0]) == 0 {
			return nil, nil
		}
		return xdm.Singleton(args[0][0]), nil
	})
	simple(reg, "tail", 1, func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if len(args[0]) <= 1 {
			return nil, nil
		}
		return args[0][1:], nil
	})

	att(stream(reg, "exists", 1, func(ctx *runtime.Context, args []xdm.Iter) (xdm.Iter, error) {
		_, ok, err := args[0].Next()
		if err != nil {
			return nil, err
		}
		return xdm.SingletonIter(xdm.Boolean(ok)), nil
	}))
	att(stream(reg, "empty", 1, func(ctx *runtime.Context, args []xdm.Iter) (xdm.Iter, error) {
		_, ok, err := args[0].Next()
		if err != nil {
			return nil, err
		}
		return xdm.SingletonIter(xdm.Boolean(!ok)), nil
	}))
	att(stream(reg, "count", 1, func(ctx *runtime.Context, args []xdm.Iter) (xdm.Iter, error) {
		// Counting drains the stream but never stores it.
		var n int64
		for {
			_, ok, err := args[0].Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				return xdm.SingletonIter(xdm.Integer(n)), nil
			}
			n++
		}
	}))
	att(stream(reg, "head", 1, func(ctx *runtime.Context, args []xdm.Iter) (xdm.Iter, error) {
		first, ok, err := args[0].Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return xdm.EmptyIter(), nil
		}
		return xdm.SingletonIter(first), nil
	}))
	att(stream(reg, "tail", 1, func(ctx *runtime.Context, args []xdm.Iter) (xdm.Iter, error) {
		_, _, err := args[0].Next()
		if err != nil {
			return nil, err
		}
		return args[0], nil
	}))
	att(stream(reg, "zero-or-one", 1, func(ctx *runtime.Context, args []xdm.Iter) (xdm.Iter, error) {
		s, err := xdm.MaterializeAtMost(args[0], 1)
		if err != nil {
			return nil, err
		}
		if len(s) > 1 {
			return nil, fmt.Errorf("fn:zero-or-one: sequence has more than one item")
		}
		return xdm.FromSlice(s), nil
	}))
	att(stream(reg, "one-or-more", 1, func(ctx *runtime.Context, args []xdm.Iter) (xdm.Iter, error) {
		first, ok, err := args[0].Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("fn:one-or-more: empty sequence")
		}
		return xdm.ConcatIters(xdm.SingletonIter(first), args[0]), nil
	}))
	att(stream(reg, "boolean", 1, func(ctx *runtime.Context, args []xdm.Iter) (xdm.Iter, error) {
		b, err := xdm.EffectiveBooleanValueIter(args[0])
		if err != nil {
			return nil, err
		}
		return xdm.SingletonIter(xdm.Boolean(b)), nil
	}))
	att(stream(reg, "not", 1, func(ctx *runtime.Context, args []xdm.Iter) (xdm.Iter, error) {
		b, err := xdm.EffectiveBooleanValueIter(args[0])
		if err != nil {
			return nil, err
		}
		return xdm.SingletonIter(xdm.Boolean(!b)), nil
	}))
	att(streamRange(reg, "subsequence", 2, 3, func(ctx *runtime.Context, args []xdm.Iter) (xdm.Iter, error) {
		startSeq, err := xdm.Materialize(args[1])
		if err != nil {
			return nil, err
		}
		start, err := numArg(startSeq)
		if err != nil || start == nil {
			return nil, err
		}
		from := math.Round(toF(start))
		to := math.Inf(1)
		if len(args) == 3 {
			lenSeq, err := xdm.Materialize(args[2])
			if err != nil {
				return nil, err
			}
			l, err := numArg(lenSeq)
			if err != nil || l == nil {
				return nil, err
			}
			to = from + math.Round(toF(l))
		}
		in := args[0]
		p := 0.0
		done := false
		return xdm.IterFunc(func() (xdm.Item, bool, error) {
			for !done {
				if p+1 >= to {
					// The next position is past the window: stop
					// without pulling the input any further.
					break
				}
				item, ok, err := in.Next()
				if err != nil {
					return nil, false, err
				}
				if !ok {
					break
				}
				p++
				if p >= from {
					return item, true, nil
				}
			}
			done = true
			return nil, false, nil
		}), nil
	}))
	att(streamRange(reg, "collection", 0, 1, func(ctx *runtime.Context, args []xdm.Iter) (xdm.Iter, error) {
		// The streaming fn:collection: with a CollectionIterResolver in
		// the context (the sharded store's incremental shard merge), the
		// documents flow one Next at a time, so collection($c)[1] pulls
		// a single merge step instead of materialising the collection.
		if ctx.Prog != nil && ctx.Prog.BlockDoc {
			return nil, fmt.Errorf("fn:collection is blocked in the browser profile")
		}
		uri := ""
		if len(args) == 1 {
			seq, err := xdm.Materialize(args[0])
			if err != nil {
				return nil, err
			}
			if uri, err = stringArg(seq); err != nil {
				return nil, err
			}
		}
		if ctx.CollectionsIter != nil {
			it, err := ctx.CollectionsIter(uri)
			if err != nil {
				return nil, fmt.Errorf("fn:collection(%q): %w", uri, err)
			}
			return it, nil
		}
		if ctx.Collections == nil {
			return nil, fmt.Errorf("fn:collection: no collection resolver available")
		}
		docs, err := ctx.Collections(uri)
		if err != nil {
			return nil, fmt.Errorf("fn:collection(%q): %w", uri, err)
		}
		out := make(xdm.Sequence, len(docs))
		for i, d := range docs {
			out[i] = xdm.NewNode(d)
		}
		return xdm.FromSlice(out), nil
	}))
	return errors.Join(errs...)
}

// stream attaches a Stream implementation to a registered fixed-arity
// fn: function.
func stream(reg *runtime.Registry, local string, arity int,
	s func(ctx *runtime.Context, args []xdm.Iter) (xdm.Iter, error)) error {
	f := reg.Lookup(fnName(local), arity)
	if f == nil {
		return fmt.Errorf("%w: funclib: streaming fn:%s#%d has no base registration",
			xqerr.ErrMisconfigured, local, arity)
	}
	f.Stream = s
	return nil
}

// streamRange is stream for a variable-arity registration.
func streamRange(reg *runtime.Registry, local string, min, max int,
	s func(ctx *runtime.Context, args []xdm.Iter) (xdm.Iter, error)) error {
	for a := min; a <= max; a++ {
		f := reg.Lookup(fnName(local), a)
		if f == nil {
			return fmt.Errorf("%w: funclib: streaming fn:%s#%d has no base registration",
				xqerr.ErrMisconfigured, local, a)
		}
		f.Stream = s
	}
	return nil
}
