package xquery

import (
	"testing"
	"time"

	"repro/internal/markup"
	"repro/internal/xdm"
)

// FuzzStreamingDifferential cross-checks the lazy iterator runtime
// against the eager evaluator: for any input that compiles and succeeds
// in both modes, the results must be identical. (When only one mode
// errors it must be the eager one — laziness may skip errors hidden
// past an early-exit point, never add new ones.) A step budget bounds
// runaway inputs so fuzzing stays fast.
func FuzzStreamingDifferential(f *testing.F) {
	seeds := []string{
		`(//book)[1]/@id/string()`,
		`//book[position() < 3]/title/string()`,
		`//author[1]`,
		`fn:exists(//book[price > 50])`,
		`some $b in //book satisfies $b/author = "Knuth"`,
		`every $b in //book satisfies fn:exists($b/title)`,
		`count(//book[last()])`,
		`for $b in //book order by $b/@id descending return $b/@year/string()`,
		`fn:head(fn:tail(//author))`,
		`fn:subsequence(1 to 20, 5, 3)`,
		`(1 to 50)[. mod 3 = 0][2]`,
		`string-join(//book/ancestor-or-self::*/name(), "/")`,
		`(//book, //author)[4]`,
		`//book["x"]`,
		`1 + "a"`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc, err := markup.Parse(libraryXML)
	if err != nil {
		f.Fatal(err)
	}
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	e := New()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return
		}
		p, err := e.Compile(src)
		if err != nil {
			return
		}
		run := func(noStream bool) (string, error) {
			res, err := p.Run(RunConfig{
				ContextItem:      xdm.NewNode(doc),
				DisableStreaming: noStream,
				MaxSteps:         200_000,
				Timeout:          time.Second,
				Now:              now,
			})
			if err != nil {
				return "", err
			}
			return FormatSequence(res.Value, markup.Serialize), nil
		}
		lazy, lerr := run(false)
		eager, eerr := run(true)
		if lerr != nil && eerr == nil {
			t.Fatalf("%q: streaming errored (%v) but eager succeeded (%q)", src, lerr, eager)
		}
		if lerr == nil && eerr == nil && lazy != eager {
			t.Fatalf("%q: streaming %q != eager %q", src, lazy, eager)
		}
	})
}
