// Package lexer tokenizes the extended XQuery dialect. XQuery has no
// reserved words — "div", "if" or "return" are legal element names — so
// the lexer emits Name tokens for everything word-shaped and the parser
// decides by grammatical position whether a name is a keyword. Direct
// element constructors are not tokenized here at all: the parser detects
// "<" at expression-primary position and switches to character-level
// scanning, using Reset to rewind this lexer.
package lexer

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	EOF  Kind = iota
	Name      // QName or NCName, possibly a *-wildcard form
	Str       // string literal, Text holds the decoded value
	Int       // integer literal
	Dec       // decimal literal, Text holds the lexical form
	Dbl       // double literal
	Sym       // operator or punctuation, Text holds the symbol
)

// String names the kind.
func (k Kind) String() string {
	return [...]string{"EOF", "name", "string", "integer", "decimal", "double", "symbol"}[k]
}

// Token is one lexical token.
type Token struct {
	Kind   Kind
	Text   string // Str: decoded value; Sym: the symbol; numbers: lexical
	Prefix string // Name only; "*" for *:local wildcards
	Local  string // Name only; "*" for prefix:* wildcards
	IntVal int64
	FltVal float64
	Start  int // byte offset of the first character
	End    int // byte offset just past the token
	Line   int
	Col    int // 1-based column of the first character
}

// IsName reports whether the token is a Name with the given (unprefixed)
// local part — the parser's keyword test.
func (t Token) IsName(word string) bool {
	return t.Kind == Name && t.Prefix == "" && t.Local == word
}

// IsSym reports whether the token is the given symbol.
func (t Token) IsSym(s string) bool { return t.Kind == Sym && t.Text == s }

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of input"
	case Name:
		if t.Prefix != "" {
			return fmt.Sprintf("name %s:%s", t.Prefix, t.Local)
		}
		return fmt.Sprintf("name %s", t.Local)
	case Str:
		return fmt.Sprintf("string %q", t.Text)
	case Sym:
		return fmt.Sprintf("%q", t.Text)
	default:
		return fmt.Sprintf("%s %s", t.Kind, t.Text)
	}
}

// Error is a lexical error with position.
type Error struct {
	Offset int
	Line   int
	Col    int
	Msg    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("xquery: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer is a pull tokenizer with arbitrary lookahead and rewind.
type Lexer struct {
	src string
	pos int
	buf []Token
	err *Error
}

// New builds a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src} }

// Src returns the full source text (for character-level constructor
// parsing in the parser).
func (l *Lexer) Src() string { return l.src }

// Err returns the first lexical error encountered, if any.
func (l *Lexer) Err() error {
	if l.err != nil {
		return l.err
	}
	return nil
}

// Line returns the 1-based line of a byte offset.
func (l *Lexer) Line(off int) int {
	if off > len(l.src) {
		off = len(l.src)
	}
	return 1 + strings.Count(l.src[:off], "\n")
}

// Col returns the 1-based column (in bytes) of a byte offset.
func (l *Lexer) Col(off int) int {
	if off > len(l.src) {
		off = len(l.src)
	}
	return off - strings.LastIndexByte(l.src[:off], '\n')
}

// Reset rewinds the lexer to an absolute byte offset, dropping buffered
// lookahead. The parser uses it to hand source ranges to the
// character-level constructor scanner and to resume after it.
func (l *Lexer) Reset(off int) {
	l.pos = off
	l.buf = l.buf[:0]
}

// Pos returns the byte offset where the next token would start (after
// skipping whitespace and comments).
func (l *Lexer) Pos() int {
	if len(l.buf) > 0 {
		return l.buf[0].Start
	}
	save := l.pos
	l.skipSpace()
	p := l.pos
	l.pos = save
	return p
}

// Next consumes and returns the next token.
func (l *Lexer) Next() Token {
	if len(l.buf) > 0 {
		t := l.buf[0]
		l.buf = l.buf[1:]
		return t
	}
	return l.scan()
}

// Peek returns the next token without consuming it.
func (l *Lexer) Peek() Token { return l.PeekAt(0) }

// PeekAt returns the k-th upcoming token (0 = next).
func (l *Lexer) PeekAt(k int) Token {
	for len(l.buf) <= k {
		l.buf = append(l.buf, l.scan())
	}
	return l.buf[k]
}

func (l *Lexer) fail(format string, args ...any) Token {
	if l.err == nil {
		l.err = &Error{Offset: l.pos, Line: l.Line(l.pos), Col: l.Col(l.pos),
			Msg: fmt.Sprintf(format, args...)}
	}
	l.pos = len(l.src)
	return Token{Kind: EOF, Start: l.pos, End: l.pos, Line: l.Line(l.pos), Col: l.Col(l.pos)}
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			l.pos++
			continue
		}
		// Nested (: ... :) comments.
		if c == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
			depth := 1
			l.pos += 2
			for l.pos < len(l.src) && depth > 0 {
				if strings.HasPrefix(l.src[l.pos:], "(:") {
					depth++
					l.pos += 2
				} else if strings.HasPrefix(l.src[l.pos:], ":)") {
					depth--
					l.pos += 2
				} else {
					l.pos++
				}
			}
			continue
		}
		return
	}
}

func isNCNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNCNameChar(c byte) bool {
	return isNCNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) scan() Token {
	l.skipSpace()
	start := l.pos
	line, col := l.Line(start), l.Col(start)
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Start: start, End: start, Line: line, Col: col}
	}
	c := l.src[l.pos]

	switch {
	case isNCNameStart(c):
		return l.scanName(start, line, col)
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.scanNumber(start, line, col)
	case c == '"' || c == '\'':
		return l.scanString(start, line, col)
	}

	// Multi-char symbols, longest first.
	for _, s := range []string{"!=", "<=", ">=", "<<", ">>", "//", "::", ":=", ".."} {
		if strings.HasPrefix(l.src[l.pos:], s) {
			l.pos += len(s)
			return Token{Kind: Sym, Text: s, Start: start, End: l.pos, Line: line, Col: col}
		}
	}
	// "*:name" wildcard.
	if c == '*' && l.pos+2 < len(l.src) && l.src[l.pos+1] == ':' && isNCNameStart(l.src[l.pos+2]) {
		l.pos += 2
		local := l.ncname()
		return Token{Kind: Name, Prefix: "*", Local: local, Start: start, End: l.pos, Line: line, Col: col}
	}
	switch c {
	case '(', ')', '[', ']', '{', '}', ',', ';', '$', '@', '.', '/', ':',
		'=', '<', '>', '+', '-', '*', '|', '?':
		l.pos++
		return Token{Kind: Sym, Text: string(c), Start: start, End: l.pos, Line: line, Col: col}
	}
	return l.fail("unexpected character %q", string(c))
}

func (l *Lexer) ncname() string {
	s := l.pos
	for l.pos < len(l.src) && isNCNameChar(l.src[l.pos]) {
		l.pos++
	}
	return l.src[s:l.pos]
}

func (l *Lexer) scanName(start, line, col int) Token {
	first := l.ncname()
	prefix, local := "", first
	// QName: colon immediately followed by an NCName or "*", with no
	// intervening space and not "::".
	if l.pos < len(l.src) && l.src[l.pos] == ':' && l.pos+1 < len(l.src) {
		next := l.src[l.pos+1]
		if next == ':' {
			// axis "::" — leave for symbol scanning
		} else if isNCNameStart(next) {
			l.pos++
			prefix, local = first, l.ncname()
		} else if next == '*' {
			l.pos += 2
			prefix, local = first, "*"
		}
	}
	return Token{Kind: Name, Prefix: prefix, Local: local, Start: start, End: l.pos, Line: line, Col: col}
}

func (l *Lexer) scanNumber(start, line, col int) Token {
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	isDec, isDbl := false, false
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		// ".." must not be eaten (1..2 is not valid anyway, but "1 .. 2"
		// range syntax does not exist; still, keep "." only when a digit
		// or nothing name-ish follows).
		if l.pos+1 >= len(l.src) || isDigit(l.src[l.pos+1]) {
			isDec = true
			l.pos++
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		p := l.pos + 1
		if p < len(l.src) && (l.src[p] == '+' || l.src[p] == '-') {
			p++
		}
		if p < len(l.src) && isDigit(l.src[p]) {
			isDbl = true
			l.pos = p
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
	}
	text := l.src[start:l.pos]
	// A number immediately followed by name characters is an error
	// ("123abc"), per the XQuery terminal rules.
	if l.pos < len(l.src) && isNCNameStart(l.src[l.pos]) {
		return l.fail("invalid numeric literal %q", text+string(l.src[l.pos]))
	}
	switch {
	case isDbl:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return l.fail("invalid double literal %q", text)
		}
		return Token{Kind: Dbl, Text: text, FltVal: f, Start: start, End: l.pos, Line: line, Col: col}
	case isDec:
		return Token{Kind: Dec, Text: text, Start: start, End: l.pos, Line: line, Col: col}
	default:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return l.fail("integer literal %q out of range", text)
		}
		return Token{Kind: Int, Text: text, IntVal: n, Start: start, End: l.pos, Line: line, Col: col}
	}
}

func (l *Lexer) scanString(start, line, col int) Token {
	quote := l.src[l.pos]
	l.pos++
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return l.fail("unterminated string literal")
		}
		c := l.src[l.pos]
		if c == quote {
			// Doubled quote is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				b.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: Str, Text: b.String(), Start: start, End: l.pos, Line: line, Col: col}
		}
		if c == '&' {
			s, n, ok := DecodeEntity(l.src[l.pos:])
			if !ok {
				return l.fail("invalid entity reference in string literal")
			}
			b.WriteString(s)
			l.pos += n
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
}

// DecodeEntity decodes a leading XML entity/character reference in s
// ("&lt;", "&#10;", "&#x41;", ...) returning the replacement text and
// the number of bytes consumed.
func DecodeEntity(s string) (string, int, bool) {
	if len(s) < 3 || s[0] != '&' {
		return "", 0, false
	}
	semi := strings.IndexByte(s, ';')
	if semi < 2 || semi > 12 {
		return "", 0, false
	}
	ent := s[1:semi]
	switch ent {
	case "lt":
		return "<", semi + 1, true
	case "gt":
		return ">", semi + 1, true
	case "amp":
		return "&", semi + 1, true
	case "quot":
		return `"`, semi + 1, true
	case "apos":
		return "'", semi + 1, true
	}
	if strings.HasPrefix(ent, "#x") || strings.HasPrefix(ent, "#X") {
		n, err := strconv.ParseInt(ent[2:], 16, 32)
		if err != nil {
			return "", 0, false
		}
		return string(rune(n)), semi + 1, true
	}
	if strings.HasPrefix(ent, "#") {
		n, err := strconv.ParseInt(ent[1:], 10, 32)
		if err != nil {
			return "", 0, false
		}
		return string(rune(n)), semi + 1, true
	}
	return "", 0, false
}
