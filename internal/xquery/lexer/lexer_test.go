package lexer

import (
	"testing"
	"testing/quick"
)

func kinds(t *testing.T, src string) []Token {
	t.Helper()
	l := New(src)
	var out []Token
	for {
		tok := l.Next()
		if err := l.Err(); err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.Kind == EOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestNames(t *testing.T) {
	toks := kinds(t, `foo bar:baz _x a-b a.b x123`)
	want := []struct{ prefix, local string }{
		{"", "foo"}, {"bar", "baz"}, {"", "_x"}, {"", "a-b"}, {"", "a.b"}, {"", "x123"},
	}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %d, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != Name || toks[i].Prefix != w.prefix || toks[i].Local != w.local {
			t.Errorf("token %d = %+v, want %v", i, toks[i], w)
		}
	}
}

func TestWildcardNames(t *testing.T) {
	toks := kinds(t, `p:* *:local *`)
	if toks[0].Kind != Name || toks[0].Prefix != "p" || toks[0].Local != "*" {
		t.Errorf("p:* = %+v", toks[0])
	}
	if toks[1].Kind != Name || toks[1].Prefix != "*" || toks[1].Local != "local" {
		t.Errorf("*:local = %+v", toks[1])
	}
	if !toks[2].IsSym("*") {
		t.Errorf("* = %+v", toks[2])
	}
}

func TestAxisColonColon(t *testing.T) {
	toks := kinds(t, `child::a`)
	if len(toks) != 3 || !toks[0].IsName("child") || !toks[1].IsSym("::") || !toks[2].IsName("a") {
		t.Errorf("tokens = %+v", toks)
	}
}

func TestNumbers(t *testing.T) {
	tests := []struct {
		src  string
		kind Kind
	}{
		{"0", Int}, {"42", Int}, {"4.2", Dec}, {".5", Dec}, {"5.", Dec},
		{"1e3", Dbl}, {"1.5E-2", Dbl}, {"2e+10", Dbl},
	}
	for _, tt := range tests {
		toks := kinds(t, tt.src)
		if len(toks) != 1 || toks[0].Kind != tt.kind {
			t.Errorf("%q = %+v, want kind %v", tt.src, toks, tt.kind)
		}
	}
	if toks := kinds(t, "42"); toks[0].IntVal != 42 {
		t.Error("IntVal wrong")
	}
	if toks := kinds(t, "1.5e1"); toks[0].FltVal != 15 {
		t.Error("FltVal wrong")
	}
}

func TestNumberFollowedByName(t *testing.T) {
	l := New("123abc")
	l.Next()
	if l.Err() == nil {
		t.Error("123abc must be a lexical error")
	}
}

func TestStrings(t *testing.T) {
	tests := []struct{ src, want string }{
		{`"hello"`, "hello"},
		{`'hello'`, "hello"},
		{`"it""s"`, `it"s`},
		{`'it''s'`, "it's"},
		{`"&lt;&gt;&amp;&quot;&apos;"`, `<>&"'`},
		{`"&#65;&#x42;"`, "AB"},
		{`""`, ""},
	}
	for _, tt := range tests {
		toks := kinds(t, tt.src)
		if len(toks) != 1 || toks[0].Kind != Str || toks[0].Text != tt.want {
			t.Errorf("%s = %+v, want %q", tt.src, toks, tt.want)
		}
	}
}

func TestStringErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `"&unknown;"`, `"&#zz;"`} {
		l := New(src)
		l.Next()
		if l.Err() == nil {
			t.Errorf("%q should fail", src)
		}
	}
}

func TestSymbols(t *testing.T) {
	toks := kinds(t, `( ) [ ] { } , ; $ @ . .. / // :: := = != < <= > >= << >> + - * | ?`)
	want := []string{"(", ")", "[", "]", "{", "}", ",", ";", "$", "@", ".",
		"..", "/", "//", "::", ":=", "=", "!=", "<", "<=", ">", ">=",
		"<<", ">>", "+", "-", "*", "|", "?"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %d, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if !toks[i].IsSym(w) {
			t.Errorf("token %d = %v, want %q", i, toks[i], w)
		}
	}
}

func TestComments(t *testing.T) {
	toks := kinds(t, `1 (: comment :) 2 (: nested (: inner :) outer :) 3`)
	if len(toks) != 3 {
		t.Fatalf("tokens = %+v", toks)
	}
	for i, tok := range toks {
		if tok.Kind != Int || tok.IntVal != int64(i+1) {
			t.Errorf("token %d = %+v", i, tok)
		}
	}
}

func TestPeekAndReset(t *testing.T) {
	l := New("a b c")
	if !l.Peek().IsName("a") || !l.PeekAt(1).IsName("b") || !l.PeekAt(2).IsName("c") {
		t.Fatal("peek wrong")
	}
	a := l.Next()
	if !a.IsName("a") {
		t.Fatal("next after peek wrong")
	}
	// Reset to b's start.
	b := l.Peek()
	l.Next()
	l.Next()
	if l.Peek().Kind != EOF {
		t.Fatal("not at EOF")
	}
	l.Reset(b.Start)
	if !l.Next().IsName("b") {
		t.Error("reset did not rewind")
	}
}

func TestLineNumbers(t *testing.T) {
	l := New("a\nb\n  c")
	if l.Next().Line != 1 || l.Next().Line != 2 || l.Next().Line != 3 {
		t.Error("line numbers wrong")
	}
}

func TestDotDisambiguation(t *testing.T) {
	// "." alone vs ".5" decimal vs "..".
	toks := kinds(t, `. .5 ..`)
	if !toks[0].IsSym(".") || toks[1].Kind != Dec || !toks[2].IsSym("..") {
		t.Errorf("tokens = %+v", toks)
	}
}

func TestDecodeEntity(t *testing.T) {
	tests := []struct {
		in  string
		out string
		n   int
		ok  bool
	}{
		{"&lt;x", "<", 4, true},
		{"&amp;", "&", 5, true},
		{"&#65;", "A", 5, true},
		{"&#x41;", "A", 6, true},
		{"&bogus;", "", 0, false},
		{"&", "", 0, false},
		{"&;", "", 0, false},
	}
	for _, tt := range tests {
		out, n, ok := DecodeEntity(tt.in)
		if ok != tt.ok || out != tt.out || (ok && n != tt.n) {
			t.Errorf("DecodeEntity(%q) = %q,%d,%v", tt.in, out, n, ok)
		}
	}
}

// Property: lexing never panics and always terminates for arbitrary
// input.
func TestLexerTotalityProperty(t *testing.T) {
	f := func(src string) bool {
		l := New(src)
		for i := 0; i < len(src)+10; i++ {
			if l.Next().Kind == EOF {
				return true
			}
		}
		return false // did not terminate within bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: token offsets are monotonically non-decreasing and within
// the source.
func TestTokenOffsetsProperty(t *testing.T) {
	f := func(src string) bool {
		l := New(src)
		prev := 0
		for {
			tok := l.Next()
			if tok.Kind == EOF {
				return true
			}
			if tok.Start < prev || tok.End < tok.Start || tok.End > len(src) {
				return false
			}
			prev = tok.End
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
