package xquery

import (
	"fmt"

	"repro/internal/xdm"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/runtime"
)

// NewLocalResolver builds a module resolver over a set of in-memory
// library module sources, keyed by namespace URI (location hints are
// also consulted). It gives the engine proper multi-module programs —
// the way the paper's applications factor shared XQuery into modules
// (§6.1: "the XQuery modules defined in the Reference 2.0 application
// code are directly published").
//
// Each imported module compiles once; its functions are exposed to the
// importer through proxies that evaluate in the library's own context
// (so library-global variables work and cannot collide with the
// importer's).
func NewLocalResolver(sources map[string]string, opts ...Option) runtime.ModuleResolver {
	engine := New(opts...)
	compiled := map[string]*Program{}
	return func(imp ast.ModuleImport, reg *runtime.Registry) error {
		src, ok := sources[imp.URI]
		if !ok {
			for _, hint := range imp.Hints {
				if s, ok2 := sources[hint]; ok2 {
					src, ok = s, true
					break
				}
			}
		}
		if !ok {
			return fmt.Errorf("xquery: no module source for %q", imp.URI)
		}
		prog, ok := compiled[imp.URI]
		if !ok {
			p, err := engine.Compile(src)
			if err != nil {
				return fmt.Errorf("xquery: compiling module %q: %w", imp.URI, err)
			}
			m := p.Module()
			if !m.IsLibrary {
				return fmt.Errorf("xquery: %q is not a library module", imp.URI)
			}
			if m.URI != imp.URI {
				return fmt.Errorf("xquery: module namespace %q does not match import %q", m.URI, imp.URI)
			}
			compiled[imp.URI] = p
			prog = p
		}
		for i := range prog.Module().Prolog.Functions {
			decl := &prog.Module().Prolog.Functions[i]
			if decl.Name.Space != imp.URI {
				continue
			}
			name := decl.Name
			arity := len(decl.Params)
			libProg := prog
			reg.Register(&runtime.Function{
				Name:       name,
				MinArgs:    arity,
				MaxArgs:    arity,
				Updating:   decl.Updating,
				Sequential: decl.Sequential,
				Invoke: func(ctx *runtime.Context, args []xdm.Sequence) (xdm.Sequence, error) {
					// Evaluate in the library's own context but share
					// the caller's external interfaces and pending
					// update list so library updates take effect in the
					// caller's snapshot.
					lctx := runtime.NewContext(libProg.Runtime())
					lctx.Docs = ctx.Docs
					lctx.Hooks = ctx.Hooks
					lctx.Now = ctx.Now
					lctx.PUL = ctx.PUL
					lctx.Ambient = ctx.Ambient
					if err := lctx.InitGlobals(); err != nil {
						return nil, err
					}
					return lctx.CallFunction(name, args)
				},
			})
		}
		return nil
	}
}

// CombineResolvers tries each resolver in turn until one succeeds —
// hosts often mix local library modules with remote web services.
func CombineResolvers(resolvers ...runtime.ModuleResolver) runtime.ModuleResolver {
	return func(imp ast.ModuleImport, reg *runtime.Registry) error {
		var lastErr error
		for _, r := range resolvers {
			if r == nil {
				continue
			}
			if err := r(imp, reg); err != nil {
				lastErr = err
				continue
			}
			return nil
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("xquery: no resolver for module %q", imp.URI)
		}
		return lastErr
	}
}
