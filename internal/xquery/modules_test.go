package xquery

import (
	"strings"
	"testing"

	"repro/internal/markup"
	"repro/internal/xdm"
)

const mathModule = `module namespace m = "urn:math";
declare variable $m:pi := 3.14159;
declare function m:square($x) { $x * $x };
declare function m:cube($x) { $x * m:square($x) };
declare function m:tau() { $m:pi * 2 };`

func TestLocalModuleImport(t *testing.T) {
	resolver := NewLocalResolver(map[string]string{"urn:math": mathModule})
	e := New(WithModuleResolver(resolver))
	res, err := e.EvalQuery(`import module namespace m = "urn:math";
		m:square(6) + m:cube(2)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].String() != "44" {
		t.Errorf("result = %v", res)
	}
	// Library globals work inside library functions.
	res, err = e.EvalQuery(`import module namespace m = "urn:math"; m:tau()`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].String() != "6.28318" {
		t.Errorf("tau = %v", res)
	}
}

func TestLocalModuleErrors(t *testing.T) {
	resolver := NewLocalResolver(map[string]string{
		"urn:math": mathModule,
		"urn:main": `1+1`, // not a library module
		"urn:bad":  `module namespace b = "urn:OTHER"; declare function b:f() { 1 };`,
	})
	e := New(WithModuleResolver(resolver))
	if _, err := e.Compile(`import module namespace x = "urn:nosuch"; 1`); err == nil {
		t.Error("unknown module must fail")
	}
	if _, err := e.Compile(`import module namespace x = "urn:main"; 1`); err == nil {
		t.Error("main module as import must fail")
	}
	if _, err := e.Compile(`import module namespace x = "urn:bad"; 1`); err == nil {
		t.Error("namespace mismatch must fail")
	}
}

func TestLocalModuleUpdatesShareSnapshot(t *testing.T) {
	lib := `module namespace u = "urn:upd";
declare updating function u:mark($target) {
  insert node <marked/> into $target
};`
	resolver := NewLocalResolver(map[string]string{"urn:upd": lib})
	e := New(WithModuleResolver(resolver))
	doc, err := markup.Parse(`<root/>`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := e.Compile(`import module namespace u = "urn:upd"; u:mark(/root)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(RunConfig{ContextItem: xdm.NewNode(doc), Sequential: true}); err != nil {
		t.Fatal(err)
	}
	if got := markup.Serialize(doc); got != `<root><marked/></root>` {
		t.Errorf("library update lost: %s", got)
	}
}

func TestCombineResolvers(t *testing.T) {
	r1 := NewLocalResolver(map[string]string{"urn:math": mathModule})
	r2 := NewLocalResolver(map[string]string{
		"urn:other": `module namespace o = "urn:other"; declare function o:one() { 1 };`,
	})
	e := New(WithModuleResolver(CombineResolvers(r1, r2)))
	res, err := e.EvalQuery(`import module namespace m = "urn:math";
		import module namespace o = "urn:other";
		m:square(o:one() + 1)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].String() != "4" {
		t.Errorf("combined = %v", res)
	}
	// Neither resolver knows the module.
	if _, err := e.Compile(`import module namespace z = "urn:zzz"; 1`); err == nil ||
		!strings.Contains(err.Error(), "urn:zzz") {
		t.Errorf("missing module error: %v", err)
	}
}

func TestModuleImportCachedCompilation(t *testing.T) {
	resolver := NewLocalResolver(map[string]string{"urn:math": mathModule})
	e := New(WithModuleResolver(resolver))
	// Two programs importing the same module share the compiled library.
	for i := 0; i < 2; i++ {
		res, err := e.EvalQuery(`import module namespace m = "urn:math"; m:square(3)`, nil)
		if err != nil || res[0].String() != "9" {
			t.Fatalf("round %d: %v %v", i, res, err)
		}
	}
}
