package xquery

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/markup"
	"repro/internal/xdm"
)

var errNoDoc = fmt.Errorf("no such document")

// Every remaining code listing from the paper, executed as close to
// verbatim as the reproduced grammar allows (the browser-dependent
// listings live in internal/core's tests, the web-service ones in
// internal/rest's).

// §3.2: "insert node <book title="Starwars"/> into
// doc("library.xml")/books" and the price replacement.
func TestPaper32UpdateListings(t *testing.T) {
	library, err := markup.Parse(`<books><book title="Old"/></books>`)
	if err != nil {
		t.Fatal(err)
	}
	bill, err := markup.Parse(`<bill><items>
		<item id="computer"><price>2000</price></item>
		<item id="mouse"><price>10</price></item>
	</items></bill>`)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	prog := e.MustCompile(`
		insert node <book title="Starwars"/>
		into doc("library.xml")/books,
		replace value of node
		doc("bill.xml")/bill/items/item[@id="computer"]/price
		with 1500`)
	_, err = prog.Run(RunConfig{
		Sequential: false, // §3.2: all modifications at the end
		Docs: func(uri string) (*dom.Node, error) {
			switch uri {
			case "library.xml":
				return library, nil
			case "bill.xml":
				return bill, nil
			}
			return nil, errNoDoc
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := markup.Serialize(library); !strings.Contains(got, `<book title="Starwars"/>`) {
		t.Errorf("library = %s", got)
	}
	if got := mustEval(t, `string(//item[@id="computer"]/price)`, bill); got != "1500" {
		t.Errorf("price = %s", got)
	}
}

// §3.3: the sequential block inserting a starwars book and commenting
// it, relying on statement-level visibility.
func TestPaper33ScriptingListing(t *testing.T) {
	src, err := markup.Parse(`<catalog><book><title>starwars</title></book></catalog>`)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := markup.Parse(`<books/>`)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	prog := e.MustCompile(`
		{ declare variable $b := //book[title="starwars"];
		  insert node $b into doc("lib.xml")/books;
		  set $b := doc("lib.xml")//book[title="starwars"];
		  insert node <comment>6 movies</comment> into $b; }`)
	_, err = prog.Run(RunConfig{
		ContextItem: xdm.NewNode(src),
		Sequential:  true,
		Docs: func(uri string) (*dom.Node, error) {
			if uri == "lib.xml" {
				return lib, nil
			}
			return nil, errNoDoc
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The inserted copy carries the comment; the original does not.
	if got := mustEval(t, `string(//book/comment)`, lib); got != "6 movies" {
		t.Errorf("lib comment = %q", got)
	}
	if got := mustEval(t, `count(//comment)`, src); got != "0" {
		t.Errorf("source modified: %s comments", got)
	}
}

// §1/§3.1: "XQuery is Turing complete" — a non-trivial computation
// (iterative Fibonacci via the scripting extension, recursive via
// functions) to back the claim operationally.
func TestPaperTuringCompletenessClaims(t *testing.T) {
	got := mustEval(t, `
		declare function local:fib($n as xs:integer) as xs:integer {
			if ($n < 2) then $n
			else local:fib($n - 1) + local:fib($n - 2)
		};
		local:fib(15)`, nil)
	if got != "610" {
		t.Errorf("recursive fib = %s", got)
	}
	got = mustEval(t, `
		{ declare variable $a := 0;
		  declare variable $b := 1;
		  declare variable $i := 0;
		  declare variable $t := 0;
		  while ($i < 15) {
		    set $t := $a + $b;
		    set $a := $b;
		    set $b := $t;
		    set $i := $i + 1;
		  };
		  $a; }`, nil)
	if got != "610" {
		t.Errorf("iterative fib = %s", got)
	}
}

// §2.2 (transliterated): the JavaScript heart-gif program expressed in
// XQuery — the paper's point that "all XPath expressions can be
// executed by an XQuery processor".
func TestPaper22XPathSubset(t *testing.T) {
	page, err := markup.ParseHTML(`<html><body>
		<div>all you need is love</div><div>other</div>
	</body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	// The XPath from the JS listing runs unchanged as XQuery.
	got := mustEval(t, `count(//div[contains(., 'love')])`, page)
	if got != "1" {
		t.Errorf("xpath subset count = %s", got)
	}
}
