package parser

import (
	"strings"

	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/lexer"
)

// Direct constructors ("<a x='{$v}'>text{expr}</a>") cannot be tokenized
// by the regular lexer: inside a constructor the input is XML-shaped
// character data with embedded {expr} escapes. The parser therefore
// rewinds the lexer to the "<" and scans characters itself, recursing
// back into token-level parsing for each enclosed expression.

type rawScanner struct {
	p   *Parser
	src string
	pos int
}

func (p *Parser) parseDirectConstructor() ast.Expr {
	start := p.peek().Start // offset of "<"
	r := &rawScanner{p: p, src: p.lx.Src(), pos: start}
	var e ast.Expr
	switch {
	case strings.HasPrefix(r.src[r.pos:], "<!--"):
		e = r.comment()
	case strings.HasPrefix(r.src[r.pos:], "<?"):
		e = r.pi()
	default:
		e = r.element()
	}
	p.lx.Reset(r.pos)
	return e
}

func (r *rawScanner) fail(format string, args ...any) {
	r.p.failAt(r.p.lx.Line(r.pos), r.p.lx.Col(r.pos), format, args...)
}

func (r *rawScanner) eof() bool { return r.pos >= len(r.src) }

func (r *rawScanner) peek() byte {
	if r.eof() {
		return 0
	}
	return r.src[r.pos]
}

func (r *rawScanner) has(s string) bool { return strings.HasPrefix(r.src[r.pos:], s) }

func (r *rawScanner) skipSpace() {
	for !r.eof() {
		switch r.src[r.pos] {
		case ' ', '\t', '\r', '\n':
			r.pos++
		default:
			return
		}
	}
}

func (r *rawScanner) name() string {
	start := r.pos
	if r.eof() || !isNameStartByte(r.src[r.pos]) {
		r.fail("expected a name in element constructor")
	}
	for !r.eof() && isNameByte(r.src[r.pos]) {
		r.pos++
	}
	return r.src[start:r.pos]
}

func isNameStartByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameByte(c byte) bool {
	return isNameStartByte(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

// qname reads an optionally prefixed lexical name.
func (r *rawScanner) qname() (prefix, local string) {
	first := r.name()
	if !r.eof() && r.peek() == ':' && r.pos+1 < len(r.src) && isNameStartByte(r.src[r.pos+1]) {
		r.pos++
		return first, r.name()
	}
	return "", first
}

// enclosed parses "{ Expr }" starting at the "{", by handing control
// back to the token-level parser at the current offset.
func (r *rawScanner) enclosed() ast.Expr {
	r.pos++ // "{"
	r.p.lx.Reset(r.pos)
	e := r.p.parseExpr()
	tok := r.p.next()
	if !tok.IsSym("}") {
		r.p.failTok(tok, "expected \"}\" to close enclosed expression, found %s", tok)
	}
	r.pos = tok.End
	return e
}

func (r *rawScanner) comment() ast.Expr {
	r.pos += len("<!--")
	end := strings.Index(r.src[r.pos:], "-->")
	if end < 0 {
		r.fail("unterminated comment constructor")
	}
	text := r.src[r.pos : r.pos+end]
	r.pos += end + 3
	return ast.CompConstructor{Kind: xdm.TCommentNode, Content: ast.StringLit{Val: text}}
}

func (r *rawScanner) pi() ast.Expr {
	r.pos += 2
	target := r.name()
	end := strings.Index(r.src[r.pos:], "?>")
	if end < 0 {
		r.fail("unterminated processing-instruction constructor")
	}
	data := strings.TrimLeft(r.src[r.pos:r.pos+end], " \t\r\n")
	r.pos += end + 2
	return ast.CompConstructor{Kind: xdm.TPINode,
		Name:    dom.Name(target),
		Content: ast.StringLit{Val: data}}
}

// element parses a full direct element constructor.
func (r *rawScanner) element() ast.Expr {
	if r.p.depth++; r.p.depth > maxParseDepth {
		r.fail("element nesting exceeds %d levels", maxParseDepth)
	}
	defer func() { r.p.depth-- }()
	r.pos++ // "<"
	prefix, local := r.qname()

	type rawAttr struct {
		prefix, local string
		pieces        []ast.Expr
		literal       string // the concatenated literal form, for xmlns
		isLiteral     bool
	}
	var attrs []rawAttr
	selfClose := false
	for {
		r.skipSpace()
		if r.eof() {
			r.fail("unterminated start tag <%s", local)
		}
		if r.has("/>") {
			r.pos += 2
			selfClose = true
			break
		}
		if r.peek() == '>' {
			r.pos++
			break
		}
		ap, al := r.qname()
		r.skipSpace()
		if r.peek() != '=' {
			r.fail("expected \"=\" after attribute %s", al)
		}
		r.pos++
		r.skipSpace()
		pieces, lit, isLit := r.attrValue()
		attrs = append(attrs, rawAttr{prefix: ap, local: al, pieces: pieces, literal: lit, isLiteral: isLit})
	}

	// Push a namespace scope: xmlns attributes are declarations.
	savedNS := r.p.ns
	savedDefault := r.p.defaultElemNS
	scope := make(map[string]string, len(savedNS)+2)
	for k, v := range savedNS {
		scope[k] = v
	}
	r.p.ns = scope
	defer func() {
		r.p.ns = savedNS
		r.p.defaultElemNS = savedDefault
	}()

	el := ast.DirElem{}
	for _, a := range attrs {
		if a.prefix == "" && a.local == "xmlns" {
			if !a.isLiteral {
				r.fail("namespace declarations must be literal")
			}
			scope[""] = a.literal
			r.p.defaultElemNS = a.literal
			continue
		}
		if a.prefix == "xmlns" {
			if !a.isLiteral {
				r.fail("namespace declarations must be literal")
			}
			scope[a.local] = a.literal
			continue
		}
	}
	for _, a := range attrs {
		if (a.prefix == "" && a.local == "xmlns") || a.prefix == "xmlns" {
			continue
		}
		name := dom.Name(a.local)
		if a.prefix != "" {
			uri, ok := scope[a.prefix]
			if !ok {
				r.fail("undeclared namespace prefix %q", a.prefix)
			}
			name = dom.QName{Space: uri, Prefix: a.prefix, Local: a.local}
		}
		el.Attrs = append(el.Attrs, ast.DirAttr{Name: name, Pieces: a.pieces})
	}

	// Resolve the element name in the (possibly extended) scope.
	if prefix != "" {
		uri, ok := scope[prefix]
		if !ok {
			r.fail("undeclared namespace prefix %q", prefix)
		}
		el.Name = dom.QName{Space: uri, Prefix: prefix, Local: local}
	} else {
		el.Name = dom.QName{Space: r.p.defaultElemNS, Local: local}
	}

	if selfClose {
		return el
	}
	el.Content = r.content(local)

	// Closing tag (the "</" was consumed by content()).
	cp, cl := r.qname()
	closing := cl
	if cp != "" {
		closing = cp + ":" + cl
	}
	opening := local
	if prefix != "" {
		opening = prefix + ":" + local
	}
	if closing != opening {
		r.fail("mismatched end tag </%s>, expected </%s>", closing, opening)
	}
	r.skipSpace()
	if r.peek() != '>' {
		r.fail("malformed end tag </%s", closing)
	}
	r.pos++
	return el
}

// content parses element content until the matching "</", which it
// consumes. Boundary whitespace (pure-whitespace text runs) is stripped,
// the XQuery default.
func (r *rawScanner) content(openName string) []ast.Expr {
	var out []ast.Expr
	var text strings.Builder
	flush := func() {
		if text.Len() == 0 {
			return
		}
		s := text.String()
		text.Reset()
		if strings.TrimSpace(s) == "" {
			return // boundary-space strip
		}
		out = append(out, ast.StringLit{Val: s})
	}
	for {
		if r.eof() {
			r.fail("unterminated element constructor <%s>", openName)
		}
		c := r.peek()
		switch {
		case r.has("</"):
			flush()
			r.pos += 2
			return out
		case r.has("<!--"):
			flush()
			out = append(out, r.comment())
		case r.has("<![CDATA["):
			r.pos += len("<![CDATA[")
			end := strings.Index(r.src[r.pos:], "]]>")
			if end < 0 {
				r.fail("unterminated CDATA section")
			}
			// CDATA content is never boundary-stripped.
			if s := r.src[r.pos : r.pos+end]; s != "" {
				flush()
				out = append(out, ast.StringLit{Val: s})
			}
			r.pos += end + 3
		case r.has("<?"):
			flush()
			out = append(out, r.pi())
		case c == '<':
			flush()
			out = append(out, r.element())
		case r.has("{{"):
			text.WriteByte('{')
			r.pos += 2
		case r.has("}}"):
			text.WriteByte('}')
			r.pos += 2
		case c == '{':
			flush()
			out = append(out, r.enclosed())
		case c == '}':
			r.fail("unescaped \"}\" in element content")
		case c == '&':
			s, n, ok := lexer.DecodeEntity(r.src[r.pos:])
			if !ok {
				r.fail("invalid entity reference in element content")
			}
			text.WriteString(s)
			r.pos += n
		default:
			text.WriteByte(c)
			r.pos++
		}
	}
}

// attrValue parses a quoted attribute value with {expr} escapes. It
// returns the pieces, plus the literal string and whether the value was
// fully literal (required for xmlns declarations).
func (r *rawScanner) attrValue() ([]ast.Expr, string, bool) {
	quote := r.peek()
	if quote != '"' && quote != '\'' {
		r.fail("attribute value must be quoted")
	}
	r.pos++
	var pieces []ast.Expr
	var text strings.Builder
	isLiteral := true
	var literal strings.Builder
	flush := func() {
		if text.Len() > 0 {
			pieces = append(pieces, ast.StringLit{Val: text.String()})
			text.Reset()
		}
	}
	for {
		if r.eof() {
			r.fail("unterminated attribute value")
		}
		c := r.peek()
		switch {
		case c == quote:
			// Doubled quote escapes itself.
			if r.pos+1 < len(r.src) && r.src[r.pos+1] == quote {
				text.WriteByte(quote)
				literal.WriteByte(quote)
				r.pos += 2
				continue
			}
			r.pos++
			flush()
			return pieces, literal.String(), isLiteral
		case r.has("{{"):
			text.WriteByte('{')
			literal.WriteByte('{')
			r.pos += 2
		case r.has("}}"):
			text.WriteByte('}')
			literal.WriteByte('}')
			r.pos += 2
		case c == '{':
			flush()
			isLiteral = false
			pieces = append(pieces, r.enclosed())
		case c == '}':
			r.fail("unescaped \"}\" in attribute value")
		case c == '&':
			s, n, ok := lexer.DecodeEntity(r.src[r.pos:])
			if !ok {
				r.fail("invalid entity reference in attribute value")
			}
			text.WriteString(s)
			literal.WriteString(s)
			r.pos += n
		default:
			text.WriteByte(c)
			literal.WriteByte(c)
			r.pos++
		}
	}
}
