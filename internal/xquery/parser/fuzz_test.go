package parser

import "testing"

// FuzzParseModule: the parser must return an error or an AST for any
// input — never panic, never hang. The seed corpus covers each grammar
// family; `go test -fuzz=FuzzParseModule ./internal/xquery/parser` digs
// deeper.
func FuzzParseModule(f *testing.F) {
	seeds := []string{
		``,
		`1 + 2 * 3`,
		`for $x at $i in (1,2) where $x order by $x return <a x="{$i}">{$x}</a>`,
		`declare function local:f($a as xs:integer) as xs:integer { $a };
		 local:f(1)`,
		`module namespace m = "urn:m" port:80; declare option fn:webservice "true";`,
		`insert node <x/> as first into //y`,
		`copy $a := //b modify rename node $a as "c" return $a`,
		`{ declare variable $x := 1; while ($x < 3) { set $x := $x + 1; }; $x; }`,
		`on event "click" at //input attach listener local:l`,
		`set style "color" of //div to "red"`,
		`. ftcontains ("dog" with stemming) ftand "cat" ftor ftnot "x"`,
		`typeswitch (.) case $e as element(a) return 1 default return 2`,
		`<a xmlns:p="urn:p" p:b="{1+1}"><!--c--><?pi d?><![CDATA[<&]]>{{}}</a>`,
		`"unterminated`,
		`<a><b></a>`,
		`some $x in (1 to 10) satisfies $x div 0`,
		`$x := 5`,
		`xquery version "1.0"; declare boundary-space strip; ()`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		_, _ = ParseModule(src) // must not panic
	})
}

// FuzzParsePathPredicates targets the grammar the streaming runtime
// rewrites and analyses: positional predicates, quantifiers and nested
// paths. The lazy evaluator inspects these AST shapes statically
// (position-free predicate detection, positional bounds, the //x
// rewrite), so the parser must produce well-formed trees — or errors —
// for every contortion of them.
func FuzzParsePathPredicates(f *testing.F) {
	seeds := []string{
		`(//div)[1]`,
		`//div[1]`,
		`//book[position() < 3]/title`,
		`//book[position() = last()]`,
		`//book[last() - 1]`,
		`(//a//b//c)[2]`,
		`//a[.//b[c/@id = "x"][2]]/d[1]`,
		`(1 to 100)[. mod 7 = 0][position() >= 2][2]`,
		`some $d in //div satisfies $d/@id = "d3"`,
		`every $x in //a[1]/b[2] satisfies some $y in $x/c satisfies $y < 3`,
		`fn:exists(//div[fn:empty(.//span)])`,
		`fn:head(fn:subsequence(//p, 2, 3))`,
		`/descendant-or-self::node()/child::div[1]`,
		`//*[self::a or self::b][1]`,
		`ancestor::*[1]/preceding-sibling::x[last()]`,
		`$v/(a | b)[position() ne 1]/..`,
		`(//a)[//b[//c[1]][1]][1]`,
		`//a[1][2][3]`,
		`//a[position()]`,
		`//a[(1, 2)]`,
		`(/)[1]`,
		`//a[`,
		`//[1]`,
		`some $x in satisfies 1`,
		`//a[position() < ]`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		_, _ = ParseModule(src) // must not panic
	})
}
