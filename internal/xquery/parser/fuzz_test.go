package parser

import "testing"

// FuzzParseModule: the parser must return an error or an AST for any
// input — never panic, never hang. The seed corpus covers each grammar
// family; `go test -fuzz=FuzzParseModule ./internal/xquery/parser` digs
// deeper.
func FuzzParseModule(f *testing.F) {
	seeds := []string{
		``,
		`1 + 2 * 3`,
		`for $x at $i in (1,2) where $x order by $x return <a x="{$i}">{$x}</a>`,
		`declare function local:f($a as xs:integer) as xs:integer { $a };
		 local:f(1)`,
		`module namespace m = "urn:m" port:80; declare option fn:webservice "true";`,
		`insert node <x/> as first into //y`,
		`copy $a := //b modify rename node $a as "c" return $a`,
		`{ declare variable $x := 1; while ($x < 3) { set $x := $x + 1; }; $x; }`,
		`on event "click" at //input attach listener local:l`,
		`set style "color" of //div to "red"`,
		`. ftcontains ("dog" with stemming) ftand "cat" ftor ftnot "x"`,
		`typeswitch (.) case $e as element(a) return 1 default return 2`,
		`<a xmlns:p="urn:p" p:b="{1+1}"><!--c--><?pi d?><![CDATA[<&]]>{{}}</a>`,
		`"unterminated`,
		`<a><b></a>`,
		`some $x in (1 to 10) satisfies $x div 0`,
		`$x := 5`,
		`xquery version "1.0"; declare boundary-space strip; ()`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		_, _ = ParseModule(src) // must not panic
	})
}
