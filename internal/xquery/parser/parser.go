// Package parser implements a recursive-descent parser for the extended
// XQuery dialect: XQuery 1.0 with the Update Facility, the Scripting
// Extension subset, full-text ftcontains, and the paper's browser
// grammar extensions (§4.3 events, §4.5 CSS). XQuery has no reserved
// words, so keyword decisions are made by grammatical position with
// bounded lookahead, exactly as the W3C grammar prescribes.
package parser

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/lexer"
)

// Well-known namespace URIs preset in the static context.
const (
	FnNamespace      = "http://www.w3.org/2005/xpath-functions"
	XSNamespace      = "http://www.w3.org/2001/XMLSchema"
	LocalNamespace   = "http://www.w3.org/2005/xquery-local-functions"
	BrowserNamespace = "http://www.example.com/browser" // paper §4.2
	XMLNamespace     = "http://www.w3.org/XML/1998/namespace"
	// FTNamespace hosts the full-text helper functions (ft:score,
	// ft:tokenize); KWICNamespace hosts keyword-in-context snippets.
	FTNamespace   = "http://www.example.com/fulltext"
	KWICNamespace = "http://www.example.com/kwic"
)

// Error is a syntax error with line/column information (both 1-based;
// Col may be 0 when unknown).
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("xquery: syntax error at line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parser holds the parsing state.
type Parser struct {
	lx            *lexer.Lexer
	ns            map[string]string
	defaultElemNS string
	defaultFnNS   string
	// noRange suppresses the "to" range operator while parsing the
	// target of "set style ... of T to V", whose grammar reuses "to".
	noRange int
	// depth guards against pathologically nested input blowing the
	// stack: recursive descent fails cleanly past maxParseDepth.
	depth int
}

// maxParseDepth bounds expression nesting.
const maxParseDepth = 3000

// ParseModule parses a complete main or library module.
func ParseModule(src string) (m *ast.Module, err error) {
	p := newParser(src)
	defer p.recoverTo(&err)
	m = p.parseModule()
	return m, nil
}

// ParseExpr parses a standalone expression (no prolog) — the XPath
// subset entry point used by the JavaScript-baseline document.evaluate.
func ParseExpr(src string) (e ast.Expr, err error) {
	p := newParser(src)
	defer p.recoverTo(&err)
	e = p.parseExpr()
	p.expectEOF()
	return e, nil
}

func newParser(src string) *Parser {
	return &Parser{
		lx: lexer.New(src),
		ns: map[string]string{
			"xs":      XSNamespace,
			"fn":      FnNamespace,
			"local":   LocalNamespace,
			"browser": BrowserNamespace,
			"xml":     XMLNamespace,
			"ft":      FTNamespace,
			"kwic":    KWICNamespace,
		},
		defaultFnNS: FnNamespace,
	}
}

func (p *Parser) recoverTo(err *error) {
	if r := recover(); r != nil {
		if pe, ok := r.(*Error); ok {
			*err = pe
			return
		}
		// Any other panic is a parser bug (index out of range, nil
		// dereference, ...). Re-panicking would tear down whatever
		// serving goroutine called Parse, so wrap it as a positioned
		// parse error at the token the parser was stuck on instead.
		t := p.lx.Peek()
		*err = &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf("internal error: %v", r)}
	}
}

func (p *Parser) failAt(line, col int, format string, args ...any) {
	panic(&Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)})
}

// failTok fails at a token's position.
func (p *Parser) failTok(t lexer.Token, format string, args ...any) {
	p.failAt(t.Line, t.Col, format, args...)
}

func (p *Parser) fail(format string, args ...any) {
	p.failTok(p.lx.Peek(), format, args...)
}

// tokPos converts a token's position into an AST source position.
func tokPos(t lexer.Token) ast.Pos { return ast.Pos{Line: t.Line, Col: t.Col} }

// --- token helpers --------------------------------------------------------

func (p *Parser) next() lexer.Token {
	t := p.lx.Next()
	if err := p.lx.Err(); err != nil {
		le := err.(*lexer.Error)
		p.failAt(le.Line, le.Col, "%s", le.Msg)
	}
	return t
}

func (p *Parser) peek() lexer.Token        { return p.lx.Peek() }
func (p *Parser) peekAt(k int) lexer.Token { return p.lx.PeekAt(k) }

func (p *Parser) expectSym(s string) lexer.Token {
	t := p.next()
	if !t.IsSym(s) {
		p.failTok(t, "expected %q, found %s", s, t)
	}
	return t
}

func (p *Parser) expectName(word string) {
	t := p.next()
	if !t.IsName(word) {
		p.failTok(t, "expected %q, found %s", word, t)
	}
}

func (p *Parser) expectEOF() {
	if t := p.peek(); t.Kind != lexer.EOF {
		p.failTok(t, "unexpected %s after end of expression", t)
	}
}

// eatSym consumes the symbol if present.
func (p *Parser) eatSym(s string) bool {
	if p.peek().IsSym(s) {
		p.next()
		return true
	}
	return false
}

// eatName consumes the unprefixed name if present.
func (p *Parser) eatName(w string) bool {
	if p.peek().IsName(w) {
		p.next()
		return true
	}
	return false
}

// --- QName resolution -------------------------------------------------------

func (p *Parser) resolve(t lexer.Token, kind string) dom.QName {
	if t.Kind != lexer.Name {
		p.failTok(t, "expected a name, found %s", t)
	}
	if t.Prefix == "" {
		switch kind {
		case "element":
			return dom.QName{Space: p.defaultElemNS, Local: t.Local}
		case "function":
			return dom.QName{Space: p.defaultFnNS, Local: t.Local}
		default: // variable, attribute: no namespace
			return dom.Name(t.Local)
		}
	}
	uri, ok := p.ns[t.Prefix]
	if !ok {
		p.failTok(t, "undeclared namespace prefix %q", t.Prefix)
	}
	return dom.QName{Space: uri, Prefix: t.Prefix, Local: t.Local}
}

func (p *Parser) qname(kind string) dom.QName {
	return p.resolve(p.next(), kind)
}

// varName parses "$" QName.
func (p *Parser) varName() dom.QName {
	p.expectSym("$")
	return p.qname("variable")
}

// --- expressions ----------------------------------------------------------

// parseExpr parses the comma operator level.
func (p *Parser) parseExpr() ast.Expr {
	first := p.parseExprSingle()
	if !p.peek().IsSym(",") {
		return first
	}
	items := []ast.Expr{first}
	for p.eatSym(",") {
		items = append(items, p.parseExprSingle())
	}
	return ast.SeqExpr{Items: items}
}

// parseExprSingle dispatches on the leading keywords of the composite
// expressions, falling through to the operator precedence chain.
func (p *Parser) parseExprSingle() ast.Expr {
	if p.depth++; p.depth > maxParseDepth {
		p.fail("expression nesting exceeds %d levels", maxParseDepth)
	}
	defer func() { p.depth-- }()
	t := p.peek()
	if t.Kind == lexer.Name && t.Prefix == "" {
		n1 := p.peekAt(1)
		switch t.Local {
		case "for", "let":
			if n1.IsSym("$") {
				return p.parseFLWOR()
			}
		case "some", "every":
			if n1.IsSym("$") {
				return p.parseQuantified()
			}
		case "typeswitch":
			if n1.IsSym("(") {
				return p.parseTypeswitch()
			}
		case "if":
			if n1.IsSym("(") {
				return p.parseIf()
			}
		case "insert":
			if n1.IsName("node") || n1.IsName("nodes") {
				return p.parseInsert()
			}
		case "delete":
			if n1.IsName("node") || n1.IsName("nodes") {
				p.next()
				p.next()
				return ast.Delete{Target: p.parseExprSingle(), At: tokPos(t)}
			}
		case "replace":
			if n1.IsName("node") || n1.IsName("value") {
				return p.parseReplace()
			}
		case "rename":
			if n1.IsName("node") {
				p.next()
				p.next()
				target := p.parseExprSingle()
				p.expectName("as")
				return ast.Rename{Target: target, NewName: p.parseExprSingle(), At: tokPos(t)}
			}
		case "copy":
			if n1.IsSym("$") {
				return p.parseTransform()
			}
		case "do":
			// The scripting drafts (and paper §4.4) prefix updating
			// expressions with "do"; it is transparent for us.
			if n1.IsName("insert") || n1.IsName("delete") ||
				n1.IsName("replace") || n1.IsName("rename") {
				p.next()
				return p.parseExprSingle()
			}
		case "block":
			if n1.IsSym("{") {
				p.next()
				p.next()
				return p.parseBlock()
			}
		case "declare":
			if n1.IsName("variable") {
				return p.parseBlockDecl()
			}
		case "set":
			if n1.IsName("style") {
				p.next()
				p.next()
				prop := p.parseExprSingle()
				p.expectName("of")
				target := p.parseExprSingleNoRange()
				p.expectName("to")
				return ast.SetStyle{Prop: prop, Target: target, Value: p.parseExprSingle(), At: tokPos(t)}
			}
			if n1.IsSym("$") {
				p.next()
				v := p.varName()
				p.expectSym(":=")
				return ast.Assign{Var: v, Val: p.parseExprSingle(), At: tokPos(t)}
			}
		case "get":
			if n1.IsName("style") {
				p.next()
				p.next()
				prop := p.parseExprSingle()
				p.expectName("of")
				return ast.GetStyle{Prop: prop, Target: p.parseExprSingle(), At: tokPos(t)}
			}
		case "while":
			if n1.IsSym("(") {
				p.next()
				p.expectSym("(")
				cond := p.parseExpr()
				p.expectSym(")")
				return ast.While{Cond: cond, Body: p.parseExprSingle(), At: tokPos(t)}
			}
		case "exit":
			if n1.IsName("with") || n1.IsName("returning") {
				p.next()
				p.next()
				return ast.Exit{With: p.parseExprSingle(), At: tokPos(t)}
			}
		case "break", "continue":
			// Bare loop-control statements (§3.3). Only when a
			// statement/branch terminator follows — "break" is still a
			// legal path step ("break/x") since XQuery has no reserved
			// words.
			if n1.IsSym(";") || n1.IsSym("}") || n1.IsSym(")") || n1.IsSym(",") ||
				n1.IsName("else") || n1.Kind == lexer.EOF {
				p.next()
				if t.Local == "break" {
					return ast.Break{}
				}
				return ast.Continue{}
			}
		case "on":
			if n1.IsName("event") {
				return p.parseEventExpr()
			}
		case "trigger":
			if n1.IsName("event") {
				p.next()
				p.next()
				ev := p.parseExprSingle()
				p.expectName("at")
				return ast.EventTrigger{Event: ev, Target: p.parseExprSingle(), At: tokPos(t)}
			}
		}
	}
	// Scripting assignment "$x := e".
	if t.IsSym("$") && p.peekAt(1).Kind == lexer.Name && p.peekAt(2).IsSym(":=") {
		v := p.varName()
		p.next() // :=
		return ast.Assign{Var: v, Val: p.parseExprSingle(), At: tokPos(t)}
	}
	// Bare block "{ ... }" (paper §3.3 writes blocks without a keyword).
	if t.IsSym("{") {
		p.next()
		return p.parseBlock()
	}
	return p.parseOr()
}

func (p *Parser) parseFLWOR() ast.Expr {
	var f ast.FLWOR
	for {
		t := p.peek()
		if t.IsName("for") && p.peekAt(1).IsSym("$") {
			p.next()
			for {
				cl := ast.Clause{For: true, At: tokPos(p.peek())}
				cl.Var = p.varName()
				if p.peek().IsName("as") {
					p.next()
					st := p.parseSequenceType()
					cl.Type = &st
				}
				if p.eatName("at") {
					cl.PosVar = p.varName()
				}
				p.expectName("in")
				cl.In = p.parseExprSingle()
				f.Clauses = append(f.Clauses, cl)
				if !p.eatSym(",") {
					break
				}
			}
			continue
		}
		if t.IsName("let") && p.peekAt(1).IsSym("$") {
			p.next()
			for {
				cl := ast.Clause{At: tokPos(p.peek())}
				cl.Var = p.varName()
				if p.peek().IsName("as") {
					p.next()
					st := p.parseSequenceType()
					cl.Type = &st
				}
				p.expectSym(":=")
				cl.In = p.parseExprSingle()
				f.Clauses = append(f.Clauses, cl)
				if !p.eatSym(",") {
					break
				}
			}
			continue
		}
		break
	}
	if len(f.Clauses) == 0 {
		p.fail("FLWOR expression needs at least one for/let clause")
	}
	if p.eatName("where") {
		f.Where = p.parseExprSingle()
	}
	if p.peek().IsName("stable") || p.peek().IsName("order") {
		p.eatName("stable")
		p.expectName("order")
		p.expectName("by")
		for {
			spec := ast.OrderSpec{Key: p.parseExprSingle()}
			if p.eatName("descending") {
				spec.Descending = true
			} else {
				p.eatName("ascending")
			}
			if p.eatName("empty") {
				spec.EmptySet = true
				if p.eatName("least") {
					spec.EmptyLeast = true
				} else {
					p.expectName("greatest")
				}
			}
			f.OrderBy = append(f.OrderBy, spec)
			if !p.eatSym(",") {
				break
			}
		}
	}
	p.expectName("return")
	f.Return = p.parseExprSingle()
	return f
}

func (p *Parser) parseQuantified() ast.Expr {
	q := ast.Quantified{Every: p.next().Local == "every"}
	for {
		cl := ast.Clause{For: true, At: tokPos(p.peek())}
		cl.Var = p.varName()
		if p.peek().IsName("as") {
			p.next()
			st := p.parseSequenceType()
			cl.Type = &st
		}
		p.expectName("in")
		cl.In = p.parseExprSingle()
		q.Vars = append(q.Vars, cl)
		if !p.eatSym(",") {
			break
		}
	}
	p.expectName("satisfies")
	q.Satisfies = p.parseExprSingle()
	return q
}

func (p *Parser) parseTypeswitch() ast.Expr {
	tt := p.next() // typeswitch
	p.expectSym("(")
	ts := ast.Typeswitch{Operand: p.parseExpr(), At: tokPos(tt)}
	p.expectSym(")")
	for p.peek().IsName("case") {
		ct := p.next()
		var c ast.TypeswitchCase
		c.At = tokPos(ct)
		if p.peek().IsSym("$") {
			c.Var = p.varName()
			p.expectName("as")
		}
		c.Type = p.parseSequenceType()
		p.expectName("return")
		c.Body = p.parseExprSingle()
		ts.Cases = append(ts.Cases, c)
	}
	if len(ts.Cases) == 0 {
		p.fail("typeswitch needs at least one case")
	}
	p.expectName("default")
	if p.peek().IsSym("$") {
		ts.DefaultVar = p.varName()
	}
	p.expectName("return")
	ts.Default = p.parseExprSingle()
	return ts
}

func (p *Parser) parseIf() ast.Expr {
	it := p.next() // if
	p.expectSym("(")
	cond := p.parseExpr()
	p.expectSym(")")
	p.expectName("then")
	then := p.parseExprSingle()
	p.expectName("else")
	return ast.If{Cond: cond, Then: then, Else: p.parseExprSingle(), At: tokPos(it)}
}

func (p *Parser) parseInsert() ast.Expr {
	it := p.next() // insert
	p.next()       // node(s)
	src := p.parseExprSingle()
	var pos ast.InsertPos
	switch {
	case p.eatName("into"):
		pos = ast.Into
	case p.eatName("as"):
		switch {
		case p.eatName("first"):
			pos = ast.IntoFirst
		case p.eatName("last"):
			pos = ast.IntoLast
		default:
			p.fail(`expected "first" or "last" after "as"`)
		}
		p.expectName("into")
	case p.eatName("before"):
		pos = ast.Before
	case p.eatName("after"):
		pos = ast.After
	default:
		p.fail(`expected "into", "as first into", "as last into", "before" or "after"`)
	}
	target := p.parseExprSingle()
	// The paper's §4.2.1 example writes "into $d/html/body as first";
	// accept the postfix placement as well as the spec's prefix form.
	if pos == ast.Into && p.peek().IsName("as") &&
		(p.peekAt(1).IsName("first") || p.peekAt(1).IsName("last")) {
		p.next()
		if p.next().Local == "first" {
			pos = ast.IntoFirst
		} else {
			pos = ast.IntoLast
		}
	}
	return ast.Insert{Source: src, Target: target, Pos: pos, At: tokPos(it)}
}

func (p *Parser) parseReplace() ast.Expr {
	rt := p.next() // replace
	r := ast.Replace{At: tokPos(rt)}
	if p.eatName("value") {
		p.expectName("of")
		r.ValueOf = true
	}
	p.expectName("node")
	r.Target = p.parseExprSingle()
	p.expectName("with")
	r.With = p.parseExprSingle()
	return r
}

func (p *Parser) parseTransform() ast.Expr {
	cpt := p.next() // copy
	tr := ast.Transform{At: tokPos(cpt)}
	for {
		cl := ast.Clause{At: tokPos(p.peek())}
		cl.Var = p.varName()
		p.expectSym(":=")
		cl.In = p.parseExprSingle()
		tr.Bindings = append(tr.Bindings, cl)
		if !p.eatSym(",") {
			break
		}
	}
	p.expectName("modify")
	tr.Modify = p.parseExprSingle()
	p.expectName("return")
	tr.Return = p.parseExprSingle()
	return tr
}

// parseBlock parses the statements of a block after the opening "{".
func (p *Parser) parseBlock() ast.Expr {
	var stmts []ast.Expr
	for {
		if p.peek().IsSym("}") {
			p.next()
			break
		}
		if p.peek().Kind == lexer.EOF {
			p.fail("unterminated block")
		}
		stmts = append(stmts, p.parseExprSingle())
		if !p.eatSym(";") {
			p.expectSym("}")
			break
		}
	}
	return ast.Block{Stmts: stmts}
}

func (p *Parser) parseBlockDecl() ast.Expr {
	dt := p.next() // declare
	p.next()       // variable
	d := ast.BlockDecl{Var: p.varName(), At: tokPos(dt)}
	if p.peek().IsName("as") {
		p.next()
		st := p.parseSequenceType()
		d.Type = &st
	}
	// The paper writes both ":=" and "=" in block declarations.
	if p.eatSym(":=") || p.eatSym("=") {
		d.Init = p.parseExprSingle()
	}
	return d
}

func (p *Parser) parseEventExpr() ast.Expr {
	ot := p.next() // on
	p.next()       // event
	ev := p.parseExprSingle()
	behind := false
	switch {
	case p.eatName("at"):
	case p.eatName("behind"):
		behind = true
	default:
		p.fail(`expected "at" or "behind" in event expression`)
	}
	target := p.parseExprSingle()
	switch {
	case p.eatName("attach"):
		p.expectName("listener")
		return ast.EventAttach{Event: ev, Target: target, Behind: behind,
			Listener: p.qname("function"), At: tokPos(ot)}
	case p.eatName("detach"):
		if behind {
			p.fail(`"behind" cannot be used with detach`)
		}
		p.expectName("listener")
		return ast.EventDetach{Event: ev, Target: target, Listener: p.qname("function"), At: tokPos(ot)}
	default:
		p.fail(`expected "attach listener" or "detach listener"`)
		return nil
	}
}

// --- operator precedence chain ---------------------------------------------

func (p *Parser) parseOr() ast.Expr {
	l := p.parseAnd()
	for p.peek().IsName("or") {
		p.next()
		l = ast.Binary{Op: "or", L: l, R: p.parseAnd()}
	}
	return l
}

func (p *Parser) parseAnd() ast.Expr {
	l := p.parseComparison()
	for p.peek().IsName("and") {
		p.next()
		l = ast.Binary{Op: "and", L: l, R: p.parseComparison()}
	}
	return l
}

func (p *Parser) parseComparison() ast.Expr {
	l := p.parseFTContains()
	t := p.peek()
	switch {
	case t.Kind == lexer.Sym:
		switch t.Text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.next()
			return ast.Compare{Op: t.Text, Kind: ast.GeneralComp, L: l, R: p.parseFTContains()}
		case "<<", ">>":
			p.next()
			return ast.Compare{Op: t.Text, Kind: ast.NodeComp, L: l, R: p.parseFTContains()}
		}
	case t.Kind == lexer.Name && t.Prefix == "":
		switch t.Local {
		case "eq", "ne", "lt", "le", "gt", "ge":
			// Only a comparison if an operand follows (not, e.g., a path
			// step named "eq" — position disambiguates because we are
			// after a complete operand).
			p.next()
			return ast.Compare{Op: t.Local, Kind: ast.ValueComp, L: l, R: p.parseFTContains()}
		case "is":
			p.next()
			return ast.Compare{Op: "is", Kind: ast.NodeComp, L: l, R: p.parseFTContains()}
		}
	}
	return l
}

func (p *Parser) parseFTContains() ast.Expr {
	l := p.parseRange()
	if p.peek().IsName("ftcontains") {
		p.next()
		return ast.FTContains{X: l, Sel: p.parseFTOr()}
	}
	return l
}

func (p *Parser) parseRange() ast.Expr {
	l := p.parseAdditive()
	if p.noRange == 0 && p.peek().IsName("to") {
		p.next()
		return ast.Range{L: l, R: p.parseAdditive()}
	}
	return l
}

// parseExprSingleNoRange parses an ExprSingle with the "to" operator
// disabled (the set-style target position).
func (p *Parser) parseExprSingleNoRange() ast.Expr {
	p.noRange++
	defer func() { p.noRange-- }()
	return p.parseExprSingle()
}

func (p *Parser) parseAdditive() ast.Expr {
	l := p.parseMultiplicative()
	for {
		t := p.peek()
		if t.IsSym("+") || t.IsSym("-") {
			p.next()
			l = ast.Binary{Op: t.Text, L: l, R: p.parseMultiplicative()}
			continue
		}
		return l
	}
}

func (p *Parser) parseMultiplicative() ast.Expr {
	l := p.parseUnion()
	for {
		t := p.peek()
		op := ""
		switch {
		case t.IsSym("*"):
			op = "*"
		case t.IsName("div"):
			op = "div"
		case t.IsName("idiv"):
			op = "idiv"
		case t.IsName("mod"):
			op = "mod"
		}
		if op == "" {
			return l
		}
		p.next()
		l = ast.Binary{Op: op, L: l, R: p.parseUnion()}
	}
}

func (p *Parser) parseUnion() ast.Expr {
	l := p.parseIntersectExcept()
	for {
		t := p.peek()
		if t.IsSym("|") || t.IsName("union") {
			p.next()
			l = ast.Binary{Op: "union", L: l, R: p.parseIntersectExcept()}
			continue
		}
		return l
	}
}

func (p *Parser) parseIntersectExcept() ast.Expr {
	l := p.parseInstanceOf()
	for {
		t := p.peek()
		if t.IsName("intersect") || t.IsName("except") {
			p.next()
			l = ast.Binary{Op: t.Local, L: l, R: p.parseInstanceOf()}
			continue
		}
		return l
	}
}

func (p *Parser) parseInstanceOf() ast.Expr {
	l := p.parseTreat()
	if p.peek().IsName("instance") && p.peekAt(1).IsName("of") {
		p.next()
		p.next()
		return ast.InstanceOf{X: l, Type: p.parseSequenceType()}
	}
	return l
}

func (p *Parser) parseTreat() ast.Expr {
	l := p.parseCastable()
	if p.peek().IsName("treat") && p.peekAt(1).IsName("as") {
		p.next()
		p.next()
		return ast.TreatAs{X: l, Type: p.parseSequenceType()}
	}
	return l
}

func (p *Parser) parseCastable() ast.Expr {
	l := p.parseCast()
	if p.peek().IsName("castable") && p.peekAt(1).IsName("as") {
		p.next()
		p.next()
		typ, opt := p.parseSingleType()
		return ast.CastAs{X: l, Type: typ, Optional: opt, Castable: true}
	}
	return l
}

func (p *Parser) parseCast() ast.Expr {
	l := p.parseUnary()
	if p.peek().IsName("cast") && p.peekAt(1).IsName("as") {
		p.next()
		p.next()
		typ, opt := p.parseSingleType()
		return ast.CastAs{X: l, Type: typ, Optional: opt}
	}
	return l
}

func (p *Parser) parseUnary() ast.Expr {
	neg := false
	signed := false
	for {
		t := p.peek()
		if t.IsSym("-") {
			neg = !neg
			signed = true
			p.next()
			continue
		}
		if t.IsSym("+") {
			signed = true
			p.next()
			continue
		}
		break
	}
	x := p.parsePath()
	if signed {
		return ast.Unary{Neg: neg, X: x}
	}
	return x
}
