package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xdm"
	"repro/internal/xquery/ast"
)

func parseOne(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestLiteralShapes(t *testing.T) {
	if _, ok := parseOne(t, `"s"`).(ast.StringLit); !ok {
		t.Error("string literal shape")
	}
	if e, ok := parseOne(t, `42`).(ast.IntLit); !ok || e.Val != 42 {
		t.Error("int literal shape")
	}
	if e, ok := parseOne(t, `4.2`).(ast.DecimalLit); !ok || e.Val != "4.2" {
		t.Error("decimal literal shape")
	}
	if _, ok := parseOne(t, `1e2`).(ast.DoubleLit); !ok {
		t.Error("double literal shape")
	}
	if _, ok := parseOne(t, `$x`).(ast.VarRef); !ok {
		t.Error("var ref shape")
	}
	if _, ok := parseOne(t, `.`).(ast.ContextItem); !ok {
		t.Error("context item shape")
	}
	if e, ok := parseOne(t, `()`).(ast.SeqExpr); !ok || len(e.Items) != 0 {
		t.Error("empty sequence shape")
	}
}

func TestPrecedence(t *testing.T) {
	// 1 + 2 * 3 parses as 1 + (2 * 3).
	e := parseOne(t, `1 + 2 * 3`).(ast.Binary)
	if e.Op != "+" {
		t.Fatalf("top op = %s", e.Op)
	}
	if r, ok := e.R.(ast.Binary); !ok || r.Op != "*" {
		t.Errorf("right = %#v", e.R)
	}
	// or binds looser than and.
	o := parseOne(t, `1 or 2 and 3`).(ast.Binary)
	if o.Op != "or" {
		t.Fatalf("top = %s", o.Op)
	}
	if r, ok := o.R.(ast.Binary); !ok || r.Op != "and" {
		t.Errorf("right = %#v", o.R)
	}
	// comparison binds looser than range.
	c := parseOne(t, `1 to 3 = 2`).(ast.Compare)
	if _, ok := c.L.(ast.Range); !ok {
		t.Errorf("left of = should be range: %#v", c.L)
	}
	// unary binds tighter than *.
	u := parseOne(t, `-1 * 2`).(ast.Binary)
	if _, ok := u.L.(ast.Unary); !ok {
		t.Errorf("left of * should be unary: %#v", u.L)
	}
}

func TestComparisonKinds(t *testing.T) {
	tests := []struct {
		src  string
		kind ast.CompareKind
		op   string
	}{
		{`1 = 2`, ast.GeneralComp, "="},
		{`1 != 2`, ast.GeneralComp, "!="},
		{`1 eq 2`, ast.ValueComp, "eq"},
		{`1 lt 2`, ast.ValueComp, "lt"},
		{`$a is $b`, ast.NodeComp, "is"},
		{`$a << $b`, ast.NodeComp, "<<"},
		{`$a >> $b`, ast.NodeComp, ">>"},
	}
	for _, tt := range tests {
		c, ok := parseOne(t, tt.src).(ast.Compare)
		if !ok || c.Kind != tt.kind || c.Op != tt.op {
			t.Errorf("%q = %#v", tt.src, c)
		}
	}
}

func TestPathShapes(t *testing.T) {
	p := parseOne(t, `/a/b`).(ast.Path)
	if !p.Absolute || len(p.Steps) != 2 {
		t.Fatalf("path = %#v", p)
	}
	if p.Steps[0].Axis != ast.AxisChild || p.Steps[0].Test.Name.Local != "a" {
		t.Errorf("step 0 = %#v", p.Steps[0])
	}

	p2 := parseOne(t, `//b`).(ast.Path)
	if !p2.Absolute || len(p2.Steps) != 2 || p2.Steps[0].Axis != ast.AxisDescendantOrSelf {
		t.Errorf("//b = %#v", p2)
	}

	p3 := parseOne(t, `a//@c`).(ast.Path)
	if p3.Absolute || len(p3.Steps) != 3 || p3.Steps[2].Axis != ast.AxisAttribute {
		t.Errorf("a//@c = %#v", p3)
	}

	// Lone slash.
	p4 := parseOne(t, `/`).(ast.Path)
	if !p4.Absolute || len(p4.Steps) != 0 {
		t.Errorf("/ = %#v", p4)
	}
}

func TestAxes(t *testing.T) {
	for name, axis := range map[string]ast.Axis{
		"child": ast.AxisChild, "descendant": ast.AxisDescendant,
		"attribute": ast.AxisAttribute, "self": ast.AxisSelf,
		"descendant-or-self": ast.AxisDescendantOrSelf,
		"following-sibling":  ast.AxisFollowingSibling,
		"following":          ast.AxisFollowing, "parent": ast.AxisParent,
		"ancestor":          ast.AxisAncestor,
		"preceding-sibling": ast.AxisPrecedingSibling,
		"preceding":         ast.AxisPreceding,
		"ancestor-or-self":  ast.AxisAncestorOrSelf,
	} {
		p := parseOne(t, name+`::node()`).(ast.Path)
		if p.Steps[0].Axis != axis {
			t.Errorf("%s axis = %v", name, p.Steps[0].Axis)
		}
	}
	if _, err := ParseExpr(`bogus::x`); err == nil {
		t.Error("unknown axis should fail")
	}
}

func TestNodeTests(t *testing.T) {
	p := parseOne(t, `*`).(ast.Path)
	if !p.Steps[0].Test.IsName || !p.Steps[0].Test.AnySpace || p.Steps[0].Test.Name.Local != "*" {
		t.Errorf("* = %#v", p.Steps[0].Test)
	}
	p = parseOne(t, `text()`).(ast.Path)
	if p.Steps[0].Test.Kind != xdm.TTextNode {
		t.Errorf("text() = %#v", p.Steps[0].Test)
	}
	p = parseOne(t, `element(book)`).(ast.Path)
	tst := p.Steps[0].Test
	if tst.Kind != xdm.TElementNode || !tst.HasName || tst.KindName.Local != "book" {
		t.Errorf("element(book) = %#v", tst)
	}
	p = parseOne(t, `attribute(id)`).(ast.Path)
	if p.Steps[0].Axis != ast.AxisAttribute {
		t.Error("attribute() kind test must default to the attribute axis")
	}
	p = parseOne(t, `processing-instruction(php)`).(ast.Path)
	if p.Steps[0].Test.PITarget != "php" {
		t.Errorf("pi test = %#v", p.Steps[0].Test)
	}
}

func TestPredicates(t *testing.T) {
	p := parseOne(t, `a[1][@x = "v"]`).(ast.Path)
	if len(p.Steps[0].Preds) != 2 {
		t.Errorf("preds = %d", len(p.Steps[0].Preds))
	}
}

func TestFLWORShape(t *testing.T) {
	e := parseOne(t, `for $x at $i in (1,2), $y in (3) let $z := $x + $y
		where $z > 2 stable order by $z descending empty greatest, $x
		return $z`).(ast.FLWOR)
	if len(e.Clauses) != 3 {
		t.Fatalf("clauses = %d", len(e.Clauses))
	}
	if !e.Clauses[0].For || e.Clauses[0].PosVar.Local != "i" {
		t.Errorf("clause 0 = %#v", e.Clauses[0])
	}
	if e.Clauses[2].For {
		t.Error("clause 2 should be let")
	}
	if e.Where == nil || len(e.OrderBy) != 2 {
		t.Error("where/order by missing")
	}
	if !e.OrderBy[0].Descending || !e.OrderBy[0].EmptySet || e.OrderBy[0].EmptyLeast {
		t.Errorf("order spec = %#v", e.OrderBy[0])
	}
}

func TestTypeDeclarations(t *testing.T) {
	e := parseOne(t, `for $x as xs:integer+ in (1,2) return $x`).(ast.FLWOR)
	if e.Clauses[0].Type == nil || e.Clauses[0].Type.Occ != xdm.OneOrMore {
		t.Errorf("typed for = %#v", e.Clauses[0].Type)
	}
}

func TestQuantifiedShape(t *testing.T) {
	q := parseOne(t, `some $x in (1,2), $y in (3,4) satisfies $x > $y`).(ast.Quantified)
	if q.Every || len(q.Vars) != 2 {
		t.Errorf("quantified = %#v", q)
	}
	q2 := parseOne(t, `every $x in () satisfies true()`).(ast.Quantified)
	if !q2.Every {
		t.Error("every flag")
	}
}

func TestConstructorShapes(t *testing.T) {
	e := parseOne(t, `<a x="1" y="{2}">t{3}<b/></a>`).(ast.DirElem)
	if e.Name.Local != "a" || len(e.Attrs) != 2 || len(e.Content) != 3 {
		t.Fatalf("constructor = %#v", e)
	}
	if len(e.Attrs[1].Pieces) != 1 {
		t.Errorf("attr pieces = %#v", e.Attrs[1])
	}
	cc := parseOne(t, `element {$n} {1}`).(ast.CompConstructor)
	if cc.Kind != xdm.TElementNode || cc.NameExpr == nil {
		t.Errorf("computed elem = %#v", cc)
	}
}

func TestConstructorNamespaceScope(t *testing.T) {
	e := parseOne(t, `<p:a xmlns:p="urn:p"><p:b/></p:a>`).(ast.DirElem)
	if e.Name.Space != "urn:p" {
		t.Errorf("element ns = %q", e.Name.Space)
	}
	inner := e.Content[0].(ast.DirElem)
	if inner.Name.Space != "urn:p" {
		t.Errorf("inner ns = %q", inner.Name.Space)
	}
	// The declaration does not leak outside.
	if _, err := ParseExpr(`(<a xmlns:q="urn:q"/>, q:f())`); err == nil {
		t.Error("constructor namespace must not leak")
	}
}

func TestUpdateShapes(t *testing.T) {
	i := parseOne(t, `insert node <x/> as first into $t`).(ast.Insert)
	if i.Pos != ast.IntoFirst {
		t.Errorf("insert pos = %v", i.Pos)
	}
	i2 := parseOne(t, `insert node <x/> into $t as last`).(ast.Insert)
	if i2.Pos != ast.IntoLast {
		t.Errorf("postfix insert pos = %v", i2.Pos)
	}
	r := parseOne(t, `replace value of node $t with 5`).(ast.Replace)
	if !r.ValueOf {
		t.Error("value-of flag")
	}
	if _, ok := parseOne(t, `delete nodes //a`).(ast.Delete); !ok {
		t.Error("delete shape")
	}
	if _, ok := parseOne(t, `rename node $t as "n"`).(ast.Rename); !ok {
		t.Error("rename shape")
	}
	tr := parseOne(t, `copy $a := $x, $b := $y modify delete node $a/z return $a`).(ast.Transform)
	if len(tr.Bindings) != 2 {
		t.Errorf("transform bindings = %d", len(tr.Bindings))
	}
	// "do" prefix is transparent.
	if _, ok := parseOne(t, `do replace value of node $t with 1`).(ast.Replace); !ok {
		t.Error("do replace shape")
	}
}

func TestScriptingShapes(t *testing.T) {
	b := parseOne(t, `{ declare variable $x := 1; set $x := 2; $x; }`).(ast.Block)
	if len(b.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(b.Stmts))
	}
	if _, ok := b.Stmts[0].(ast.BlockDecl); !ok {
		t.Error("decl shape")
	}
	if _, ok := b.Stmts[1].(ast.Assign); !ok {
		t.Error("assign shape")
	}
	if _, ok := parseOne(t, `$x := 5`).(ast.Assign); !ok {
		t.Error("bare assignment shape")
	}
	w := parseOne(t, `while ($x < 3) { set $x := $x + 1; }`).(ast.While)
	if _, ok := w.Body.(ast.Block); !ok {
		t.Error("while body shape")
	}
	if _, ok := parseOne(t, `exit with 5`).(ast.Exit); !ok {
		t.Error("exit shape")
	}
	if _, ok := parseOne(t, `exit returning 5`).(ast.Exit); !ok {
		t.Error("exit returning shape")
	}
}

func TestBrowserExtensionShapes(t *testing.T) {
	a := parseOne(t, `on event "click" at //b attach listener local:f`).(ast.EventAttach)
	if a.Behind || a.Listener.Local != "f" {
		t.Errorf("attach = %#v", a)
	}
	bh := parseOne(t, `on event "x" behind f() attach listener local:g`).(ast.EventAttach)
	if !bh.Behind {
		t.Error("behind flag")
	}
	if _, ok := parseOne(t, `on event "click" at //b detach listener local:f`).(ast.EventDetach); !ok {
		t.Error("detach shape")
	}
	if _, ok := parseOne(t, `trigger event "click" at //b`).(ast.EventTrigger); !ok {
		t.Error("trigger shape")
	}
	if _, ok := parseOne(t, `set style "color" of //d to "red"`).(ast.SetStyle); !ok {
		t.Error("set style shape")
	}
	if _, ok := parseOne(t, `get style "color" of //d`).(ast.GetStyle); !ok {
		t.Error("get style shape")
	}
	// behind+detach is rejected.
	if _, err := ParseExpr(`on event "x" behind f() detach listener local:g`); err == nil {
		t.Error("behind detach must fail")
	}
}

func TestFTSelectionShapes(t *testing.T) {
	f := parseOne(t, `. ftcontains ("dog" with stemming) ftand "cat" ftor ftnot "x"`).(ast.FTContains)
	or, ok := f.Sel.(ast.FTOr)
	if !ok {
		t.Fatalf("sel = %#v", f.Sel)
	}
	and, ok := or.L.(ast.FTAnd)
	if !ok {
		t.Fatalf("or.L = %#v", or.L)
	}
	w, ok := and.L.(ast.FTWords)
	if !ok || !w.Opts.Stemming {
		t.Errorf("and.L = %#v", and.L)
	}
	if _, ok := or.R.(ast.FTNot); !ok {
		t.Errorf("or.R = %#v", or.R)
	}
}

func TestKeywordsAsNames(t *testing.T) {
	// XQuery has no reserved words: these parse as paths.
	for _, src := range []string{`for`, `if`, `div`, `return`, `insert`, `delete/node2`} {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("%q should parse as a path: %v", src, err)
		}
	}
	// "div" as operator vs name.
	e := parseOne(t, `div div div`).(ast.Binary)
	if e.Op != "div" {
		t.Errorf("div div div = %#v", e)
	}
}

func TestModuleParsing(t *testing.T) {
	m, err := ParseModule(`xquery version "1.0" encoding "utf-8";
		module namespace ex = "urn:ex" port:2001;
		declare namespace other = "urn:o";
		declare variable $ex:v := 5;
		declare function ex:f($a as xs:integer) as xs:integer { $a };
		declare option fn:webservice "true";`)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsLibrary || m.Prefix != "ex" || m.URI != "urn:ex" || m.Port != 2001 {
		t.Errorf("module header = %+v", m)
	}
	if len(m.Prolog.Vars) != 1 || len(m.Prolog.Functions) != 1 {
		t.Errorf("prolog = %+v", m.Prolog)
	}
	if m.Prolog.Options["fn:webservice"] != "true" {
		t.Errorf("options = %v", m.Prolog.Options)
	}
	if m.Prolog.Namespaces["other"] != "urn:o" {
		t.Errorf("namespaces = %v", m.Prolog.Namespaces)
	}
}

func TestMainModuleStatements(t *testing.T) {
	m, err := ParseModule(`declare variable $x := 1; $x + 1; $x + 2`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Body.(ast.Block); !ok {
		t.Errorf("multi-statement body = %#v", m.Body)
	}
	m2, err := ParseModule(`declare function local:f() { 1 };`)
	if err != nil {
		t.Fatal(err)
	}
	if seq, ok := m2.Body.(ast.SeqExpr); !ok || len(seq.Items) != 0 {
		t.Errorf("empty body = %#v", m2.Body)
	}
}

func TestImportParsing(t *testing.T) {
	m, err := ParseModule(`import module namespace ab = "urn:svc" at "http://h/wsdl", "http://h2/wsdl";
		ab:f()`)
	if err != nil {
		t.Fatal(err)
	}
	imp := m.Prolog.Imports[0]
	if imp.Prefix != "ab" || imp.URI != "urn:svc" || len(imp.Hints) != 2 {
		t.Errorf("import = %+v", imp)
	}
}

func TestFunctionDeclFlags(t *testing.T) {
	m, err := ParseModule(`
		declare updating function local:u() { delete node //x };
		declare sequential function local:s() { exit with 1; };
		declare function local:p() { 1 };`)
	if err != nil {
		t.Fatal(err)
	}
	fns := m.Prolog.Functions
	if !fns[0].Updating || fns[1].Updating {
		t.Error("updating flags wrong")
	}
	if !fns[1].Sequential || fns[0].Sequential {
		t.Error("sequential flags wrong")
	}
	// Unprefixed declared functions land in local:.
	m2, err := ParseModule(`declare function f() { 1 }; 2`)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Prolog.Functions[0].Name.Space != LocalNamespace {
		t.Errorf("unprefixed function ns = %q", m2.Prolog.Functions[0].Name.Space)
	}
}

func TestSequenceTypes(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`$x instance of xs:integer`, "xs:integer"},
		{`$x instance of xs:string?`, "xs:string?"},
		{`$x instance of item()*`, "item()*"},
		{`$x instance of node()+`, "node()+"},
		{`$x instance of element()`, "element()"},
		{`$x instance of element(book)`, "element(book)"},
		{`$x instance of document-node()`, "document-node()"},
		{`$x instance of empty-sequence()`, "empty-sequence()"},
	}
	for _, tt := range cases {
		e := parseOne(t, tt.src).(ast.InstanceOf)
		if got := e.Type.String(); got != tt.want {
			t.Errorf("%q type = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	// Note: the empty string is a VALID module (prolog-only browser
	// scripts have no body, §5.1), so it is not in this list.
	bad := []string{
		`1 +`, `(1`, `for $x return 1`, `if (1) then 2`,
		`let $x = 1 return $x`, // let needs :=
		`<a>`, `<a></b>`, `<a x=5/>`, `<a>{</a>`,
		`some $x satisfies 1`, `typeswitch (1) default return 2`,
		`unknown:prefix`, `$`, `copy $x modify 1 return 1`,
		`on event "x" at //y attach local:f`, // missing "listener"
		`xquery version 1.0; 2`,              // version needs a string
		`declare variable x := 1; 2`,         // missing $
		`1 instance of xs:nosuchtype`,
	}
	for _, src := range bad {
		if _, err := ParseModule(src); err == nil {
			t.Errorf("%q should fail to parse", src)
		}
	}
}

// Property: the parser never panics on arbitrary input (errors are
// returned, not thrown).
func TestParserTotalityProperty(t *testing.T) {
	f := func(src string) bool {
		_, _ = ParseModule(src)
		return true // reaching here means no panic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPathologicalNesting(t *testing.T) {
	// Deeply nested parentheses and constructors must fail cleanly, not
	// blow the stack.
	deep := strings.Repeat("(", 10000) + "1" + strings.Repeat(")", 10000)
	if _, err := ParseExpr(deep); err == nil {
		t.Error("10000-deep parens should be rejected by the depth guard")
	}
	var b strings.Builder
	for i := 0; i < 10000; i++ {
		b.WriteString("<a>")
	}
	if _, err := ParseExpr(b.String()); err == nil {
		t.Error("10000-deep constructors should be rejected")
	}
	// Reasonable nesting still works.
	ok := strings.Repeat("(", 100) + "1" + strings.Repeat(")", 100)
	if _, err := ParseExpr(ok); err != nil {
		t.Errorf("100-deep parens should parse: %v", err)
	}
}

func TestRecoverToWrapsForeignPanics(t *testing.T) {
	// A non-*Error panic is a parser bug; recoverTo must turn it into
	// a positioned parse error rather than re-panic through whatever
	// goroutine called Parse.
	p := newParser("1 +\n  2")
	p.lx.Next() // advance so Peek has a real position
	var err error
	func() {
		defer p.recoverTo(&err)
		panic("boom")
	}()
	if err == nil {
		t.Fatal("foreign panic not converted to error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *Error, got %T: %v", err, err)
	}
	if !strings.Contains(pe.Msg, "internal error: boom") {
		t.Errorf("message %q should mention the panic value", pe.Msg)
	}
	if pe.Line == 0 && pe.Col == 0 {
		t.Errorf("error should carry the current token position, got %d:%d", pe.Line, pe.Col)
	}
}

func TestRecoverToPassesParseErrors(t *testing.T) {
	_, err := ParseExpr("1 +")
	if err == nil {
		t.Fatal("want syntax error")
	}
	if _, ok := err.(*Error); !ok {
		t.Fatalf("want *Error, got %T", err)
	}
}
