package parser

import (
	"math"
	"strconv"

	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/lexer"
)

// kindTestNames are the names that open a kind test (and therefore can
// never be function names).
var kindTestNames = map[string]bool{
	"node": true, "text": true, "comment": true, "element": true,
	"attribute": true, "document-node": true,
	"processing-instruction": true, "item": true, "empty-sequence": true,
}

// nonFunctionNames may not be used as unprefixed function names.
var nonFunctionNames = map[string]bool{
	"if": true, "typeswitch": true, "node": true, "text": true,
	"comment": true, "element": true, "attribute": true,
	"document-node": true, "processing-instruction": true, "item": true,
	"empty-sequence": true,
}

func (p *Parser) parsePath() ast.Expr {
	t := p.peek()
	switch {
	case t.IsSym("/"):
		p.next()
		path := ast.Path{Absolute: true}
		if p.startsStep() {
			p.parseRelativeInto(&path)
		}
		return path
	case t.IsSym("//"):
		p.next()
		path := ast.Path{Absolute: true}
		path.Steps = append(path.Steps, anyNodeDescOrSelf())
		if !p.startsStep() {
			p.fail(`"//" must be followed by a path step`)
		}
		p.parseRelativeInto(&path)
		return path
	default:
		path := ast.Path{}
		p.parseRelativeInto(&path)
		// A single filter step with no predicates is just its primary.
		if len(path.Steps) == 1 && path.Steps[0].Primary != nil && len(path.Steps[0].Preds) == 0 {
			return path.Steps[0].Primary
		}
		return path
	}
}

func (p *Parser) parseRelativeInto(path *ast.Path) {
	path.Steps = append(path.Steps, p.parseStep())
	for {
		t := p.peek()
		switch {
		case t.IsSym("/"):
			p.next()
			path.Steps = append(path.Steps, p.parseStep())
		case t.IsSym("//"):
			p.next()
			path.Steps = append(path.Steps, anyNodeDescOrSelf())
			path.Steps = append(path.Steps, p.parseStep())
		default:
			return
		}
	}
}

func anyNodeDescOrSelf() ast.Step {
	return ast.Step{Axis: ast.AxisDescendantOrSelf, Test: anyNodeTest()}
}

func anyNodeTest() ast.NodeTest { return ast.NodeTest{AnyNode: true} }

// startsComputedConstructor reports whether the upcoming tokens begin a
// computed constructor, ordered/unordered expression or validate
// expression — word-led primaries that would otherwise parse as child
// name tests.
func (p *Parser) startsComputedConstructor() bool {
	t := p.peek()
	if t.Kind != lexer.Name || t.Prefix != "" {
		return false
	}
	n1 := p.peekAt(1)
	switch t.Local {
	case "text", "comment", "document", "ordered", "unordered":
		return n1.IsSym("{")
	case "validate":
		return n1.IsSym("{") || n1.IsName("lax") || n1.IsName("strict")
	case "element", "attribute", "processing-instruction":
		if n1.IsSym("{") {
			return true
		}
		return n1.Kind == lexer.Name && p.peekAt(2).IsSym("{")
	default:
		return false
	}
}

// startsStep reports whether the next token can begin a path step or
// primary expression (used to decide whether "/" is the whole path).
func (p *Parser) startsStep() bool {
	t := p.peek()
	switch t.Kind {
	case lexer.Name, lexer.Str, lexer.Int, lexer.Dec, lexer.Dbl:
		return true
	case lexer.Sym:
		switch t.Text {
		case "$", "(", ".", "..", "@", "*", "<":
			return true
		}
	}
	return false
}

func (p *Parser) parseStep() ast.Step {
	t := p.peek()
	// Reverse/forward abbreviations.
	if t.IsSym("..") {
		p.next()
		return p.withPreds(ast.Step{Axis: ast.AxisParent, Test: anyNodeTest()})
	}
	if t.IsSym("@") {
		p.next()
		test := p.parseNodeTest(ast.AxisAttribute)
		return p.withPreds(ast.Step{Axis: ast.AxisAttribute, Test: test})
	}
	// Explicit axis "name::".
	if t.Kind == lexer.Name && t.Prefix == "" && p.peekAt(1).IsSym("::") {
		axis, ok := axisByName(t.Local)
		if !ok {
			p.failTok(t, "unknown axis %q", t.Local)
		}
		p.next()
		p.next()
		test := p.parseNodeTest(axis)
		return p.withPreds(ast.Step{Axis: axis, Test: test})
	}
	// Kind test at step position → axis step on child (or attribute for
	// attribute() tests).
	if t.Kind == lexer.Name && t.Prefix == "" && kindTestNames[t.Local] &&
		p.peekAt(1).IsSym("(") && t.Local != "item" && t.Local != "empty-sequence" {
		test := p.parseKindTest()
		axis := ast.AxisChild
		if test.Kind == xdm.TAttributeNode {
			axis = ast.AxisAttribute
		}
		return p.withPreds(ast.Step{Axis: axis, Test: test})
	}
	// Name test (wildcards included) — but not a function call, computed
	// constructor, or other primary.
	if (t.Kind == lexer.Name && !p.peekAt(1).IsSym("(") && !p.startsComputedConstructor()) || t.IsSym("*") {
		test := p.parseNodeTest(ast.AxisChild)
		return p.withPreds(ast.Step{Axis: ast.AxisChild, Test: test})
	}
	// Otherwise a filter expression step.
	primary := p.parsePrimary()
	return p.withPreds(ast.Step{Primary: primary})
}

func (p *Parser) withPreds(s ast.Step) ast.Step {
	for p.peek().IsSym("[") {
		p.next()
		s.Preds = append(s.Preds, p.parseExpr())
		p.expectSym("]")
	}
	return s
}

func axisByName(name string) (ast.Axis, bool) {
	switch name {
	case "child":
		return ast.AxisChild, true
	case "descendant":
		return ast.AxisDescendant, true
	case "attribute":
		return ast.AxisAttribute, true
	case "self":
		return ast.AxisSelf, true
	case "descendant-or-self":
		return ast.AxisDescendantOrSelf, true
	case "following-sibling":
		return ast.AxisFollowingSibling, true
	case "following":
		return ast.AxisFollowing, true
	case "parent":
		return ast.AxisParent, true
	case "ancestor":
		return ast.AxisAncestor, true
	case "preceding-sibling":
		return ast.AxisPrecedingSibling, true
	case "preceding":
		return ast.AxisPreceding, true
	case "ancestor-or-self":
		return ast.AxisAncestorOrSelf, true
	default:
		return 0, false
	}
}

// parseNodeTest parses a name test or kind test for the given axis.
func (p *Parser) parseNodeTest(axis ast.Axis) ast.NodeTest {
	t := p.peek()
	if t.Kind == lexer.Name && t.Prefix == "" && kindTestNames[t.Local] && p.peekAt(1).IsSym("(") {
		return p.parseKindTest()
	}
	if t.IsSym("*") {
		p.next()
		return ast.NodeTest{IsName: true, AnySpace: true, Name: dom.Name("*")}
	}
	if t.Kind != lexer.Name {
		p.failTok(t, "expected a node test, found %s", t)
	}
	p.next()
	switch {
	case t.Prefix == "*": // *:local
		return ast.NodeTest{IsName: true, AnySpace: true, Name: dom.Name(t.Local)}
	case t.Local == "*": // prefix:*
		uri, ok := p.ns[t.Prefix]
		if !ok {
			p.failTok(t, "undeclared namespace prefix %q", t.Prefix)
		}
		return ast.NodeTest{IsName: true, Name: dom.QName{Space: uri, Prefix: t.Prefix, Local: "*"}}
	default:
		kind := "attribute"
		if axis != ast.AxisAttribute {
			kind = "element"
		}
		return ast.NodeTest{IsName: true, Name: p.resolve(t, kind)}
	}
}

// parseKindTest parses node()/text()/element(...)/... tests.
func (p *Parser) parseKindTest() ast.NodeTest {
	t := p.next() // the kind name
	p.expectSym("(")
	test := ast.NodeTest{}
	switch t.Local {
	case "node":
		test = anyNodeTest()
	case "text":
		test.Kind = xdm.TTextNode
	case "comment":
		test.Kind = xdm.TCommentNode
	case "document-node":
		test.Kind = xdm.TDocumentNode
		// Optional element(...) inside: parse and discard the name
		// constraint at document level (we only check the kind).
		if p.peek().IsName("element") {
			p.parseKindTest()
		}
	case "element", "attribute":
		if t.Local == "element" {
			test.Kind = xdm.TElementNode
		} else {
			test.Kind = xdm.TAttributeNode
		}
		if !p.peek().IsSym(")") {
			nt := p.peek()
			if nt.IsSym("*") {
				p.next()
				test.HasName = true
				test.KindName = dom.Name("*")
			} else {
				kind := "element"
				if test.Kind == xdm.TAttributeNode {
					kind = "attribute"
				}
				test.HasName = true
				test.KindName = p.qname(kind)
			}
			// Optional ", TypeName" — parsed and ignored (schemaless).
			if p.eatSym(",") {
				p.next()
				p.eatSym("?")
			}
		}
	case "processing-instruction":
		test.Kind = xdm.TPINode
		if !p.peek().IsSym(")") {
			nt := p.next()
			switch nt.Kind {
			case lexer.Name:
				test.PITarget = nt.Local
			case lexer.Str:
				test.PITarget = nt.Text
			default:
				p.failTok(nt, "expected a PI target, found %s", nt)
			}
		}
	default:
		p.failTok(t, "%q is not a kind test", t.Local)
	}
	p.expectSym(")")
	return test
}

// --- primary expressions -----------------------------------------------------

func (p *Parser) parsePrimary() ast.Expr {
	t := p.peek()
	switch t.Kind {
	case lexer.Str:
		p.next()
		return ast.StringLit{Val: t.Text}
	case lexer.Int:
		p.next()
		return ast.IntLit{Val: t.IntVal}
	case lexer.Dec:
		p.next()
		return ast.DecimalLit{Val: t.Text}
	case lexer.Dbl:
		p.next()
		return ast.DoubleLit{Val: t.FltVal}
	}
	switch {
	case t.IsSym("$"):
		return ast.VarRef{Name: p.varName(), At: tokPos(t)}
	case t.IsSym("("):
		p.next()
		if p.eatSym(")") {
			return ast.SeqExpr{}
		}
		e := p.parseExpr()
		p.expectSym(")")
		return e
	case t.IsSym("."):
		p.next()
		return ast.ContextItem{}
	case t.IsSym("<"):
		return p.parseDirectConstructor()
	}
	if t.Kind == lexer.Name {
		n1 := p.peekAt(1)
		// ordered { } / unordered { }.
		if (t.IsName("ordered") || t.IsName("unordered")) && n1.IsSym("{") {
			p.next()
			p.next()
			e := p.parseExpr()
			p.expectSym("}")
			return ast.Ordered{X: e}
		}
		// validate { } / validate lax|strict { }: transparent.
		if t.IsName("validate") && (n1.IsSym("{") || n1.IsName("lax") || n1.IsName("strict")) {
			p.next()
			p.eatName("lax")
			p.eatName("strict")
			p.expectSym("{")
			e := p.parseExpr()
			p.expectSym("}")
			return ast.Ordered{X: e}
		}
		// Computed constructors.
		if ce, ok := p.tryComputedConstructor(t); ok {
			return ce
		}
		// Function call.
		if n1.IsSym("(") && !(t.Prefix == "" && nonFunctionNames[t.Local]) {
			name := p.qname("function")
			p.expectSym("(")
			var args []ast.Expr
			if !p.peek().IsSym(")") {
				args = append(args, p.parseExprSingle())
				for p.eatSym(",") {
					args = append(args, p.parseExprSingle())
				}
			}
			p.expectSym(")")
			return ast.FuncCall{Name: name, Args: args, At: tokPos(t)}
		}
	}
	p.failTok(t, "unexpected %s", t)
	return nil
}

// tryComputedConstructor parses element/attribute/text/comment/document/
// processing-instruction computed constructors.
func (p *Parser) tryComputedConstructor(t lexer.Token) (ast.Expr, bool) {
	if t.Kind != lexer.Name || t.Prefix != "" {
		return nil, false
	}
	n1 := p.peekAt(1)
	switch t.Local {
	case "document", "text", "comment":
		if !n1.IsSym("{") {
			return nil, false
		}
		p.next()
		p.next()
		var kind xdm.Type
		switch t.Local {
		case "document":
			kind = xdm.TDocumentNode
		case "text":
			kind = xdm.TTextNode
		default:
			kind = xdm.TCommentNode
		}
		var content ast.Expr
		if !p.peek().IsSym("}") {
			content = p.parseExpr()
		}
		p.expectSym("}")
		return ast.CompConstructor{Kind: kind, Content: content}, true
	case "element", "attribute", "processing-instruction":
		// name form: element foo {...} | element {expr} {...}
		var kind xdm.Type
		switch t.Local {
		case "element":
			kind = xdm.TElementNode
		case "attribute":
			kind = xdm.TAttributeNode
		default:
			kind = xdm.TPINode
		}
		cc := ast.CompConstructor{Kind: kind}
		switch {
		case n1.Kind == lexer.Name && p.peekAt(2).IsSym("{"):
			p.next()
			nameKind := "element"
			if kind == xdm.TAttributeNode || kind == xdm.TPINode {
				nameKind = "attribute"
			}
			cc.Name = p.qname(nameKind)
		case n1.IsSym("{"):
			p.next()
			p.next()
			cc.NameExpr = p.parseExpr()
			p.expectSym("}")
		default:
			return nil, false
		}
		p.expectSym("{")
		if !p.peek().IsSym("}") {
			cc.Content = p.parseExpr()
		}
		p.expectSym("}")
		return cc, true
	}
	return nil, false
}

// --- sequence types -----------------------------------------------------------

func (p *Parser) parseSequenceType() xdm.SeqType {
	t := p.peek()
	if t.IsName("empty-sequence") && p.peekAt(1).IsSym("(") {
		p.next()
		p.expectSym("(")
		p.expectSym(")")
		return xdm.SeqType{Empty: true}
	}
	item := p.parseItemType()
	st := xdm.SeqType{Item: item}
	n := p.peek()
	switch {
	case n.IsSym("?"):
		p.next()
		st.Occ = xdm.ZeroOrOne
	case n.IsSym("*"):
		p.next()
		st.Occ = xdm.ZeroOrMore
	case n.IsSym("+"):
		p.next()
		st.Occ = xdm.OneOrMore
	}
	return st
}

func (p *Parser) parseItemType() xdm.ItemTest {
	t := p.peek()
	if t.Kind == lexer.Name && t.Prefix == "" && kindTestNames[t.Local] && p.peekAt(1).IsSym("(") {
		if t.Local == "item" {
			p.next()
			p.expectSym("(")
			p.expectSym(")")
			return xdm.ItemTest{AnyItem: true}
		}
		nt := p.parseKindTest()
		if nt.AnyNode {
			return xdm.ItemTest{AnyNode: true}
		}
		if nt.Kind == xdm.TDocumentNode && !nt.HasName {
			return xdm.ItemTest{Kind: xdm.TDocumentNode}
		}
		it := xdm.ItemTest{Kind: nt.Kind}
		if nt.HasName {
			it.HasName = true
			it.KindName = nt.KindName
		}
		return it
	}
	// Atomic type QName.
	tok := p.next()
	if tok.Kind != lexer.Name {
		p.failTok(tok, "expected an item type, found %s", tok)
	}
	at, ok := p.atomicType(tok)
	if !ok {
		p.failTok(tok, "unknown atomic type %s", tok)
	}
	return xdm.ItemTest{Atomic: at}
}

func (p *Parser) atomicType(tok lexer.Token) (xdm.Type, bool) {
	// Accept xs:Name, or unprefixed names for convenience.
	if tok.Prefix != "" {
		uri, ok := p.ns[tok.Prefix]
		if !ok || uri != XSNamespace {
			return 0, false
		}
	}
	if tok.Local == "anyAtomicType" {
		return xdm.TUntypedAtomic, true // closest supertype we model
	}
	return xdm.AtomicTypeByName(tok.Local)
}

func (p *Parser) parseSingleType() (xdm.Type, bool) {
	tok := p.next()
	at, ok := p.atomicType(tok)
	if !ok {
		p.failTok(tok, "unknown atomic type %s", tok)
	}
	optional := p.eatSym("?")
	return at, optional
}

// --- full-text selections -------------------------------------------------------

func (p *Parser) parseFTOr() ast.FTSelection {
	l := p.parseFTAnd()
	for p.peek().IsName("ftor") {
		p.next()
		l = ast.FTOr{L: l, R: p.parseFTAnd()}
	}
	return l
}

func (p *Parser) parseFTAnd() ast.FTSelection {
	l := p.parseFTUnary()
	for p.peek().IsName("ftand") {
		p.next()
		l = ast.FTAnd{L: l, R: p.parseFTUnary()}
	}
	return l
}

func (p *Parser) parseFTUnary() ast.FTSelection {
	if p.eatName("ftnot") {
		return ast.FTNot{X: p.parseFTPrimary()}
	}
	return p.parseFTPrimary()
}

func (p *Parser) parseFTPrimary() ast.FTSelection {
	t := p.peek()
	if t.IsSym("(") {
		p.next()
		sel := p.parseFTOr()
		p.expectSym(")")
		if opts, any := p.parseFTOptions(); any {
			sel = applyFTOptions(sel, opts)
		}
		return sel
	}
	var src ast.Expr
	switch {
	case t.Kind == lexer.Str:
		p.next()
		src = ast.StringLit{Val: t.Text}
	case t.IsSym("{"):
		p.next()
		src = p.parseExpr()
		p.expectSym("}")
	case t.IsSym("$"):
		src = ast.VarRef{Name: p.varName(), At: tokPos(t)}
	default:
		p.failTok(t, "expected a full-text word selection, found %s", t)
	}
	w := ast.FTWords{Source: src, AnyAll: "any"}
	// Optional any/all/phrase option.
	switch {
	case p.eatName("any"):
		p.eatName("word")
		w.AnyAll = "any"
	case p.eatName("all"):
		p.eatName("words")
		w.AnyAll = "all"
	case p.eatName("phrase"):
		w.AnyAll = "phrase"
	}
	w.Opts, _ = p.parseFTOptions()
	return w
}

func (p *Parser) parseFTOptions() (ast.FTOptions, bool) {
	var o ast.FTOptions
	any := false
	for {
		t := p.peek()
		switch {
		case t.IsName("with") && p.peekAt(1).IsName("stemming"):
			p.next()
			p.next()
			o.Stemming = true
			any = true
		case t.IsName("without") && p.peekAt(1).IsName("stemming"):
			p.next()
			p.next()
			o.Stemming = false
			any = true
		case t.IsName("with") && p.peekAt(1).IsName("wildcards"):
			p.next()
			p.next()
			o.Wildcards = true
			any = true
		case t.IsName("without") && p.peekAt(1).IsName("wildcards"):
			p.next()
			p.next()
			o.Wildcards = false
			any = true
		case t.IsName("case") && (p.peekAt(1).IsName("sensitive") || p.peekAt(1).IsName("insensitive")):
			p.next()
			o.CaseSensitive = p.next().Local == "sensitive"
			any = true
		default:
			return o, any
		}
	}
}

func applyFTOptions(sel ast.FTSelection, opts ast.FTOptions) ast.FTSelection {
	switch s := sel.(type) {
	case ast.FTWords:
		s.Opts = mergeFTOptions(s.Opts, opts)
		return s
	case ast.FTAnd:
		return ast.FTAnd{L: applyFTOptions(s.L, opts), R: applyFTOptions(s.R, opts)}
	case ast.FTOr:
		return ast.FTOr{L: applyFTOptions(s.L, opts), R: applyFTOptions(s.R, opts)}
	case ast.FTNot:
		return ast.FTNot{X: applyFTOptions(s.X, opts)}
	default:
		return sel
	}
}

func mergeFTOptions(inner, outer ast.FTOptions) ast.FTOptions {
	return ast.FTOptions{
		Stemming:      inner.Stemming || outer.Stemming,
		CaseSensitive: inner.CaseSensitive || outer.CaseSensitive,
		Wildcards:     inner.Wildcards || outer.Wildcards,
	}
}

// parseNumericLiteralValue is a helper for the webservice port syntax.
func (p *Parser) parseNumericLiteralValue() int {
	t := p.next()
	if t.Kind == lexer.Int {
		return int(t.IntVal)
	}
	if t.Kind == lexer.Dec || t.Kind == lexer.Dbl {
		f, err := strconv.ParseFloat(t.Text, 64)
		if err == nil && f == math.Trunc(f) {
			return int(f)
		}
	}
	p.failTok(t, "expected an integer, found %s", t)
	return 0
}
