package parser

import (
	"repro/internal/xquery/ast"
	"repro/internal/xquery/lexer"
)

// parseModule parses a complete module: optional version declaration,
// optional library-module declaration (with the paper's webservice port
// extension), prolog, and — for main modules — the body program. The
// body may be a single expression or, per the Scripting Extension, a
// ";"-separated statement sequence; an empty body is allowed because
// browser pages often contain only function declarations plus listener
// registrations done from local:main() (paper §5.1).
func (p *Parser) parseModule() *ast.Module {
	m := &ast.Module{}
	m.Prolog.Namespaces = map[string]string{}
	m.Prolog.Options = map[string]string{}

	// xquery version "1.0" (encoding "...")? ;
	if p.peek().IsName("xquery") && p.peekAt(1).IsName("version") {
		p.next()
		p.next()
		if p.next().Kind != lexer.Str {
			p.fail("expected a version string")
		}
		if p.eatName("encoding") {
			if p.next().Kind != lexer.Str {
				p.fail("expected an encoding string")
			}
		}
		p.expectSym(";")
	}

	// module namespace prefix = "uri" (port: N)? ;
	if p.peek().IsName("module") && p.peekAt(1).IsName("namespace") {
		p.next()
		p.next()
		prefix := p.next()
		if prefix.Kind != lexer.Name || prefix.Prefix != "" {
			p.fail("expected a namespace prefix")
		}
		p.expectSym("=")
		uri := p.next()
		if uri.Kind != lexer.Str {
			p.fail("expected a namespace URI string")
		}
		m.IsLibrary = true
		m.Prefix = prefix.Local
		m.URI = uri.Text
		p.ns[prefix.Local] = uri.Text
		// Webservice extension: port:2001 (paper §3.4).
		if p.peek().IsName("port") && p.peekAt(1).IsSym(":") {
			p.next()
			p.next()
			m.Port = p.parseNumericLiteralValue()
		}
		p.expectSym(";")
	}

	p.parseProlog(&m.Prolog)

	if m.IsLibrary {
		p.expectEOF()
		return m
	}
	// Main module body: statements separated by ";".
	var stmts []ast.Expr
	for p.peek().Kind != lexer.EOF {
		stmts = append(stmts, p.parseExpr())
		if !p.eatSym(";") {
			break
		}
	}
	p.expectEOF()
	switch len(stmts) {
	case 0:
		m.Body = ast.SeqExpr{}
	case 1:
		m.Body = stmts[0]
	default:
		m.Body = ast.Block{Stmts: stmts}
	}
	return m
}

func (p *Parser) parseProlog(pr *ast.Prolog) {
	for {
		t := p.peek()
		switch {
		case t.IsName("declare"):
			n1 := p.peekAt(1)
			switch {
			case n1.IsName("namespace"):
				p.next()
				p.next()
				prefix := p.next()
				if prefix.Kind != lexer.Name || prefix.Prefix != "" {
					p.fail("expected a namespace prefix")
				}
				p.expectSym("=")
				uri := p.next()
				if uri.Kind != lexer.Str {
					p.fail("expected a namespace URI string")
				}
				p.ns[prefix.Local] = uri.Text
				pr.Namespaces[prefix.Local] = uri.Text
				p.expectSym(";")
			case n1.IsName("default"):
				p.next()
				p.next()
				which := p.next()
				switch {
				case which.IsName("element"):
					p.expectName("namespace")
					uri := p.next()
					if uri.Kind != lexer.Str {
						p.fail("expected a namespace URI string")
					}
					p.defaultElemNS = uri.Text
					pr.DefaultElemNS = uri.Text
				case which.IsName("function"):
					p.expectName("namespace")
					uri := p.next()
					if uri.Kind != lexer.Str {
						p.fail("expected a namespace URI string")
					}
					p.defaultFnNS = uri.Text
					pr.DefaultFnNS = uri.Text
				case which.IsName("collation"), which.IsName("order"):
					p.skipToSemicolon()
				default:
					p.failTok(which, "unknown default declaration %s", which)
				}
				p.expectSym(";")
			case n1.IsName("variable"):
				// Global variable: must be followed by ";" (unlike a
				// scripting block declaration inside the body — at
				// prolog level they are the same construct).
				p.next()
				p.next()
				v := ast.VarDecl{At: tokPos(t)}
				v.Name = p.varName()
				if p.peek().IsName("as") {
					p.next()
					st := p.parseSequenceType()
					v.Type = &st
				}
				switch {
				case p.eatSym(":=") || p.eatSym("="):
					v.Init = p.parseExprSingle()
				case p.eatName("external"):
					v.External = true
				}
				pr.Vars = append(pr.Vars, v)
				p.expectSym(";")
			case n1.IsName("function") || n1.IsName("updating") || n1.IsName("sequential"):
				pr.Functions = append(pr.Functions, p.parseFunctionDecl())
			case n1.IsName("option"):
				p.next()
				p.next()
				nameTok := p.next()
				if nameTok.Kind != lexer.Name {
					p.fail("expected an option name")
				}
				val := p.next()
				if val.Kind != lexer.Str {
					p.fail("expected an option value string")
				}
				lex := nameTok.Local
				if nameTok.Prefix != "" {
					lex = nameTok.Prefix + ":" + nameTok.Local
				}
				pr.Options[lex] = val.Text
				p.expectSym(";")
			case n1.IsName("boundary-space") || n1.IsName("base-uri") ||
				n1.IsName("ordering") || n1.IsName("construction") ||
				n1.IsName("copy-namespaces") || n1.IsName("revalidation"):
				// Recognised but semantically fixed in this engine.
				p.next()
				p.skipToSemicolon()
				p.expectSym(";")
			default:
				return
			}
		case t.IsName("import"):
			n1 := p.peekAt(1)
			if !n1.IsName("module") {
				p.failTok(t, "only module imports are supported")
			}
			p.next()
			p.next()
			imp := ast.ModuleImport{}
			if p.eatName("namespace") {
				prefix := p.next()
				if prefix.Kind != lexer.Name || prefix.Prefix != "" {
					p.fail("expected a namespace prefix")
				}
				imp.Prefix = prefix.Local
				p.expectSym("=")
			}
			uri := p.next()
			if uri.Kind != lexer.Str {
				p.fail("expected a module URI string")
			}
			imp.URI = uri.Text
			if imp.Prefix != "" {
				p.ns[imp.Prefix] = uri.Text
			}
			if p.eatName("at") {
				for {
					h := p.next()
					if h.Kind != lexer.Str {
						p.fail("expected a location hint string")
					}
					imp.Hints = append(imp.Hints, h.Text)
					if !p.eatSym(",") {
						break
					}
				}
			}
			pr.Imports = append(pr.Imports, imp)
			p.expectSym(";")
		default:
			return
		}
	}
}

func (p *Parser) skipToSemicolon() {
	for {
		t := p.peek()
		if t.Kind == lexer.EOF {
			p.fail("unterminated declaration")
		}
		if t.IsSym(";") {
			return
		}
		p.next()
	}
}

func (p *Parser) parseFunctionDecl() ast.FuncDecl {
	dt := p.next() // declare
	var f ast.FuncDecl
	f.At = tokPos(dt)
	for {
		t := p.peek()
		switch {
		case t.IsName("updating"):
			f.Updating = true
			p.next()
		case t.IsName("sequential"):
			f.Sequential = true
			p.next()
		default:
			goto done
		}
	}
done:
	p.expectName("function")
	nameTok := p.next()
	if nameTok.Kind != lexer.Name {
		p.fail("expected a function name")
	}
	if nameTok.Prefix == "" {
		// Unprefixed declared functions land in the local namespace by
		// convention (main-module functions must not be in fn:).
		nameTok.Prefix = "local"
	}
	f.Name = p.resolve(nameTok, "function")
	p.expectSym("(")
	if !p.peek().IsSym(")") {
		for {
			prm := ast.Param{Name: p.varName()}
			if p.peek().IsName("as") {
				p.next()
				st := p.parseSequenceType()
				prm.Type = &st
			}
			f.Params = append(f.Params, prm)
			if !p.eatSym(",") {
				break
			}
		}
	}
	p.expectSym(")")
	if p.peek().IsName("as") {
		p.next()
		st := p.parseSequenceType()
		f.ReturnType = &st
	}
	switch {
	case p.eatName("external"):
		f.External = true
		p.expectSym(";")
	case p.peek().IsSym("{"):
		p.next()
		f.Body = p.parseBlock()
		// A body of a single non-scripting expression evaluates
		// identically whether treated as a block or not.
		if b, ok := f.Body.(ast.Block); ok && len(b.Stmts) == 1 {
			if _, isDecl := b.Stmts[0].(ast.BlockDecl); !isDecl {
				f.Body = b.Stmts[0]
			}
		}
		p.expectSym(";")
	default:
		p.fail("expected a function body or \"external\"")
	}
	return f
}
