package xquery

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/dom/index"
	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery/runtime"
)

// pathIndexCorpus exercises every access method the path planner
// assigns — name probes, id probes, the scan fallback — plus shapes
// designed to tempt a wrong plan: positional predicates, axes the
// planner must leave alone, ids that do not exist, empty and duplicate
// ids, union dedup that routes through the index sort.
var pathIndexCorpus = []string{
	`//book`,
	`count(//book)`,
	`//book/title/string()`,
	`(//book)[2]/@id/string()`,
	`//book[position() < 3]/author/string()`,
	`//book[last()]/@id/string()`,
	`//author`,
	`//missing`,
	`/descendant::book[1]/@id/string()`,
	`//*[@id = "b2"]/title/string()`,
	`//book[@id = "b3"]`,
	`//book[@id = "nope"]`,
	`//book[@id = ""]`,
	`descendant::book[@id eq "b1"]/author/string()`,
	`//book[@id = "b2"][1]/title/string()`,
	`//book[price > 50]/@id/string()`,
	`(//book, //book[2], //author)/name()`,
	`(//author | //title)/string()`,
	`string-join(//book/ancestor-or-self::*/name(), "/")`,
	`fn:exists(//book[author = "Knuth"])`,
	`some $b in //book satisfies $b/@year = "1994"`,
	`for $b in //book order by $b/@year return $b/@id/string()`,
	`fn:id("b2")/title/string()`,
	`fn:id(("b3", "b1"))/@id/string()`,
	`fn:id("b1 b2")/name()`,
	`fn:id("")`,
	`count(//book/following::author)`,
	`//book/child::title/string()`,
}

// runModes runs one query in all four streaming×index mode
// combinations against the same document and reports each formatted
// result (or error).
func runModes(t *testing.T, p *Program, doc xdm.Item) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, m := range []struct {
		name              string
		noStream, noIndex bool
	}{
		{"stream+index", false, false},
		{"stream+scan", false, true},
		{"eager+index", true, false},
		{"eager+scan", true, true},
	} {
		res, err := p.Run(RunConfig{
			ContextItem:      doc,
			DisableStreaming: m.noStream,
			DisableIndexes:   m.noIndex,
		})
		if err != nil {
			out[m.name] = "error: " + err.Error()
			continue
		}
		out[m.name] = FormatSequence(res.Value, markup.Serialize)
	}
	return out
}

// TestPathIndexDifferential: with indexes force-enabled and
// force-disabled (crossed with both evaluators), every corpus query
// over the same document must produce byte-identical output.
func TestPathIndexDifferential(t *testing.T) {
	e := New()
	doc := xdm.NewNode(libraryDoc(t))
	for _, q := range pathIndexCorpus {
		p, err := e.Compile(q)
		if err != nil {
			t.Fatalf("%q: compile: %v", q, err)
		}
		got := runModes(t, p, doc)
		want := got["eager+scan"]
		for mode, res := range got {
			if res != want {
				t.Errorf("%q: %s = %q, eager+scan = %q", q, mode, res, want)
			}
		}
	}
}

// TestPathIndexDifferentialAfterUpdates interleaves DOM mutations with
// reads: after each updating query the stale index must be ignored, so
// indexed and scan modes keep agreeing on the new tree.
func TestPathIndexDifferentialAfterUpdates(t *testing.T) {
	e := New()
	doc := xdm.NewNode(libraryDoc(t))
	updates := []string{
		`insert node <book year="2026" id="b4"><title>New</title><author>Nobody</author></book> into /library`,
		`replace value of node (//book/@id)[1] with "b9"`,
		`delete node //book[@id = "b2"]`,
		`rename node (//book/title)[1] as "heading"`,
		`insert node attribute id {"b2"} into //book[@year = "2026"][1]`,
	}
	reads := []string{
		`//book/@id/string()`,
		`//book[@id = "b2"]/name()`,
		`fn:id("b2 b9")/@year/string()`,
		`count(//title)`,
		`count(//heading)`,
	}
	check := func(stage string) {
		t.Helper()
		for _, q := range reads {
			p, err := e.Compile(q)
			if err != nil {
				t.Fatalf("%q: compile: %v", q, err)
			}
			got := runModes(t, p, doc)
			want := got["eager+scan"]
			for mode, res := range got {
				if res != want {
					t.Errorf("%s: %q: %s = %q, eager+scan = %q", stage, q, mode, res, want)
				}
			}
		}
	}
	check("initial")
	for _, u := range updates {
		p, err := e.Compile(u)
		if err != nil {
			t.Fatalf("%q: compile: %v", u, err)
		}
		// Run the update itself with indexes on: its target paths
		// probe the index, and its PUL must invalidate it.
		if _, err := p.Run(RunConfig{ContextItem: doc}); err != nil {
			t.Fatalf("%q: run: %v", u, err)
		}
		check(u)
	}
}

// TestPathIndexLazyRebuildAcrossUpdates pins the invalidation contract
// at the engine level: an updating query bumps the document version,
// the stale index is never consulted (post-update reads scan and stay
// correct), no rebuild happens until probe traffic at the new version
// crosses the amortisation threshold, and repeated reads on an
// unchanged tree never rebuild.
func TestPathIndexLazyRebuildAcrossUpdates(t *testing.T) {
	e := New()
	doc := xdm.NewNode(libraryDoc(t))
	read := e.MustCompile(`count(//book)`)
	update := e.MustCompile(`insert node <book id="bx"/> into /library`)

	runRead := func(want string) {
		t.Helper()
		res, err := read.Run(RunConfig{ContextItem: doc})
		if err != nil {
			t.Fatal(err)
		}
		if got := FormatSequence(res.Value, markup.Serialize); got != want {
			t.Fatalf("count(//book) = %s, want %s", got, want)
		}
	}
	base := index.Snapshot().Builds
	runRead("3")
	if d := index.Snapshot().Builds - base; d != 1 {
		t.Fatalf("first indexed read built %d indexes, want 1 (cold tree builds immediately)", d)
	}
	runRead("3")
	runRead("3")
	if d := index.Snapshot().Builds - base; d != 1 {
		t.Fatalf("repeat reads on an unchanged tree built %d indexes, want 1", d)
	}
	if _, err := update.Run(RunConfig{ContextItem: doc}); err != nil {
		t.Fatal(err)
	}
	if d := index.Snapshot().Builds - base; d != 1 {
		t.Fatalf("the update itself built %d extra indexes, want 0 (rebuild must be lazy)", d-1)
	}
	// The first post-update reads fall below Probe's amortisation
	// threshold: they scan (correct results, no rebuild). Sustained
	// reads at the settled version then rebuild exactly once.
	runRead("4")
	if d := index.Snapshot().Builds - base; d != 1 {
		t.Fatalf("a single post-update read built %d extra indexes, want 0 (scan until amortised)", d-1)
	}
	for i := 0; i < 8; i++ {
		runRead("4")
	}
	if d := index.Snapshot().Builds - base; d != 2 {
		t.Fatalf("sustained post-update reads built %d total indexes, want 2 (exactly one rebuild)", d)
	}
}

// TestPathIndexProfilerAndMetrics: index hits surface in the profiler's
// Path row and in the process-wide counters serve.Metrics snapshots.
func TestPathIndexProfilerAndMetrics(t *testing.T) {
	e := New()
	doc := xdm.NewNode(libraryDoc(t))
	p := e.MustCompile(`count(//book) + count(//author)`)
	before := index.Snapshot()
	prof := runtime.NewProfiler()
	if _, err := p.Run(RunConfig{ContextItem: doc, Profiler: prof}); err != nil {
		t.Fatal(err)
	}
	if hits := prof.IndexHitsFor("Path"); hits != 2 {
		t.Errorf("profiler Path index hits = %d, want 2 (one per // step)", hits)
	}
	if !strings.Contains(prof.Format(), "idxhits") {
		t.Errorf("profiler report missing idxhits column:\n%s", prof.Format())
	}
	after := index.Snapshot()
	if after.Hits-before.Hits < 2 {
		t.Errorf("global index hits grew by %d, want >= 2", after.Hits-before.Hits)
	}
	if after.Builds <= 0 {
		t.Errorf("global index builds = %d, want > 0", after.Builds)
	}

	// The scan mode must record no hits.
	prof = runtime.NewProfiler()
	if _, err := p.Run(RunConfig{ContextItem: doc, Profiler: prof, DisableIndexes: true}); err != nil {
		t.Fatal(err)
	}
	if hits := prof.IndexHitsFor("Path"); hits != 0 {
		t.Errorf("DisableIndexes run recorded %d index hits, want 0", hits)
	}
}

// FuzzIndexDifferential cross-checks the index-backed path evaluator
// against the scan baseline the same way FuzzStreamingDifferential
// checks lazy against eager: any input that compiles and succeeds in
// both modes must agree, and the indexed mode may never introduce an
// error the scan does not hit.
func FuzzIndexDifferential(f *testing.F) {
	for _, s := range pathIndexCorpus {
		f.Add(s)
	}
	doc, err := markup.Parse(libraryXML)
	if err != nil {
		f.Fatal(err)
	}
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	e := New()
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return
		}
		p, err := e.Compile(src)
		if err != nil {
			return
		}
		run := func(noIndex bool) (string, error) {
			res, err := p.Run(RunConfig{
				ContextItem:    xdm.NewNode(doc),
				DisableIndexes: noIndex,
				MaxSteps:       200_000,
				Timeout:        time.Second,
				Now:            now,
			})
			if err != nil {
				return "", err
			}
			return FormatSequence(res.Value, markup.Serialize), nil
		}
		indexed, ierr := run(false)
		scanned, serr := run(true)
		if ierr != nil && serr == nil {
			t.Fatalf("%q: indexed errored (%v) but scan succeeded (%q)", src, ierr, scanned)
		}
		if ierr == nil && serr == nil && indexed != scanned {
			t.Fatalf("%q: indexed %q != scan %q", src, indexed, scanned)
		}
	})
}

// TestPathIndexWideDocAgreement drives the two modes over a much wider
// document than the library fixture, including mid-test mutations, so
// the binary-search slicing and the merge sort see non-trivial list
// sizes.
func TestPathIndexWideDocAgreement(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 500; i++ {
		if i%7 == 0 {
			fmt.Fprintf(&sb, `<item id="i%d"><sub id="s%d"/>t%d</item>`, i, i, i)
		} else {
			fmt.Fprintf(&sb, `<div id="d%d">c%d</div>`, i, i)
		}
	}
	sb.WriteString("</root>")
	d, err := markup.Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	doc := xdm.NewNode(d)
	e := New()
	queries := []string{
		`count(//item)`,
		`count(//sub)`,
		`(//item)[37]/@id/string()`,
		`//item[@id = "i343"]/sub/@id/string()`,
		`(//sub | //item)[100]/name()`,
		`fn:id("i70 d71 s77")/name()`,
		`count(//item/descendant::sub)`,
	}
	mutate := e.MustCompile(`delete node //item[@id = "i343"]`)
	for round := 0; round < 2; round++ {
		for _, q := range queries {
			p, err := e.Compile(q)
			if err != nil {
				t.Fatalf("%q: compile: %v", q, err)
			}
			got := runModes(t, p, doc)
			want := got["eager+scan"]
			for mode, res := range got {
				if res != want {
					t.Errorf("round %d: %q: %s = %q, eager+scan = %q", round, q, mode, res, want)
				}
			}
		}
		if round == 0 {
			if _, err := mutate.Run(RunConfig{ContextItem: doc}); err != nil {
				t.Fatal(err)
			}
		}
	}
}
