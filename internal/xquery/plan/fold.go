package plan

import (
	"repro/internal/xquery/ast"
)

// Constant folding lives in the planner so both consumers share one
// implementation: the optimizer (Optimize) replaces foldable subtrees
// with literals before compilation, and the static analyzer keeps
// using the same fold for dead-branch detection and range sizing.
// Folding is deliberately small — enough to catch `if (true())` /
// `if (1 = 2)` dead branches and to size `1 to N` ranges exactly;
// everything else stays unknown. It never errors: a subexpression
// whose evaluation could raise (idiv by zero, incomparable types)
// simply does not fold, so runtime error behaviour is untouched.

// ConstKind tags a folded constant value.
type ConstKind int

// Folded value kinds.
const (
	ConstInt ConstKind = iota
	ConstFloat
	ConstString
	ConstBool
	ConstEmpty
)

// Const is a folded constant.
type Const struct {
	Kind ConstKind
	I    int64
	F    float64
	S    string
	B    bool
}

// EBV is the effective boolean value of a folded constant.
func (v Const) EBV() bool {
	switch v.Kind {
	case ConstInt:
		return v.I != 0
	case ConstFloat:
		return v.F != 0 && v.F == v.F // non-zero, non-NaN
	case ConstString:
		return v.S != ""
	case ConstBool:
		return v.B
	default:
		return false
	}
}

// AsFloat widens an int or float constant to float64.
func (v Const) AsFloat() float64 {
	if v.Kind == ConstInt {
		return float64(v.I)
	}
	return v.F
}

// FoldBool folds e and takes its effective boolean value.
func FoldBool(e ast.Expr) (bool, bool) {
	v, ok := Fold(e)
	if !ok {
		return false, false
	}
	return v.EBV(), true
}

// Fold evaluates e if it is a constant expression.
func Fold(e ast.Expr) (Const, bool) {
	switch x := e.(type) {
	case ast.IntLit:
		return Const{Kind: ConstInt, I: x.Val}, true
	case ast.DoubleLit:
		return Const{Kind: ConstFloat, F: x.Val}, true
	case ast.StringLit:
		return Const{Kind: ConstString, S: x.Val}, true
	case ast.SeqExpr:
		if len(x.Items) == 0 {
			return Const{Kind: ConstEmpty}, true
		}
	case ast.Unary:
		v, ok := Fold(x.X)
		if !ok {
			return Const{}, false
		}
		if x.Neg {
			switch v.Kind {
			case ConstInt:
				v.I = -v.I
			case ConstFloat:
				v.F = -v.F
			default:
				return Const{}, false
			}
		}
		return v, true
	case ast.FuncCall:
		if x.Name.Space != fnSpace {
			return Const{}, false
		}
		switch {
		case x.Name.Local == "true" && len(x.Args) == 0:
			return Const{Kind: ConstBool, B: true}, true
		case x.Name.Local == "false" && len(x.Args) == 0:
			return Const{Kind: ConstBool, B: false}, true
		case x.Name.Local == "not" && len(x.Args) == 1:
			if b, ok := FoldBool(x.Args[0]); ok {
				return Const{Kind: ConstBool, B: !b}, true
			}
		}
	case ast.Binary:
		return foldBinary(x)
	case ast.Compare:
		return foldCompare(x)
	}
	return Const{}, false
}

func foldBinary(x ast.Binary) (Const, bool) {
	switch x.Op {
	case "and", "or":
		lb, lok := FoldBool(x.L)
		rb, rok := FoldBool(x.R)
		// Short-circuit folds: a constant dominant operand decides the
		// result regardless of the other side.
		if x.Op == "and" {
			if lok && !lb || rok && !rb {
				return Const{Kind: ConstBool, B: false}, true
			}
			if lok && rok {
				return Const{Kind: ConstBool, B: lb && rb}, true
			}
		} else {
			if lok && lb || rok && rb {
				return Const{Kind: ConstBool, B: true}, true
			}
			if lok && rok {
				return Const{Kind: ConstBool, B: lb || rb}, true
			}
		}
		return Const{}, false
	case "+", "-", "*", "idiv", "mod":
		l, lok := Fold(x.L)
		r, rok := Fold(x.R)
		if !lok || !rok || l.Kind != ConstInt || r.Kind != ConstInt {
			return Const{}, false
		}
		switch x.Op {
		case "+":
			return Const{Kind: ConstInt, I: l.I + r.I}, true
		case "-":
			return Const{Kind: ConstInt, I: l.I - r.I}, true
		case "*":
			return Const{Kind: ConstInt, I: l.I * r.I}, true
		case "idiv":
			if r.I == 0 {
				return Const{}, false // a runtime error, not a constant
			}
			return Const{Kind: ConstInt, I: l.I / r.I}, true
		default: // mod
			if r.I == 0 {
				return Const{}, false
			}
			return Const{Kind: ConstInt, I: l.I % r.I}, true
		}
	}
	return Const{}, false
}

func foldCompare(x ast.Compare) (Const, bool) {
	if x.Kind == ast.NodeComp {
		return Const{}, false
	}
	l, lok := Fold(x.L)
	r, rok := Fold(x.R)
	if !lok || !rok {
		return Const{}, false
	}
	op := x.Op
	switch op { // value-comparison spellings map onto the general ones
	case "eq":
		op = "="
	case "ne":
		op = "!="
	case "lt":
		op = "<"
	case "le":
		op = "<="
	case "gt":
		op = ">"
	case "ge":
		op = ">="
	}
	var cmp int // -1, 0, 1
	switch {
	case l.Kind == ConstInt && r.Kind == ConstInt:
		cmp = cmpOrder(l.I < r.I, l.I == r.I)
	case l.Kind == ConstString && r.Kind == ConstString:
		cmp = cmpOrder(l.S < r.S, l.S == r.S)
	case (l.Kind == ConstFloat || l.Kind == ConstInt) && (r.Kind == ConstFloat || r.Kind == ConstInt):
		lf, rf := l.AsFloat(), r.AsFloat()
		if lf != lf || rf != rf { // NaN compares false for everything but !=
			return Const{Kind: ConstBool, B: op == "!="}, true
		}
		cmp = cmpOrder(lf < rf, lf == rf)
	default:
		return Const{}, false
	}
	var b bool
	switch op {
	case "=":
		b = cmp == 0
	case "!=":
		b = cmp != 0
	case "<":
		b = cmp < 0
	case "<=":
		b = cmp <= 0
	case ">":
		b = cmp > 0
	case ">=":
		b = cmp >= 0
	default:
		return Const{}, false
	}
	return Const{Kind: ConstBool, B: b}, true
}

func cmpOrder(less, eq bool) int {
	switch {
	case less:
		return -1
	case eq:
		return 0
	default:
		return 1
	}
}
