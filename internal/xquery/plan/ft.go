package plan

import (
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
)

// Full-text planning: a descendant step whose first predicate is
// ". ftcontains <literal selection>" upgrades to AccessFT, so the
// runtime enumerates candidates from the document's inverted postings
// instead of walking the subtree. Like the other access methods the
// annotation is advisory — the evaluator re-applies the node test and
// every predicate (the ftcontains included) to each candidate, so the
// probe only has to produce a superset of the true matches.

// ftProbePred recognises the probe-able first-predicate shape: an
// ftcontains whose search context is the context item itself and whose
// word sources are all string literals (anything dynamic must wait for
// evaluation). Returns the selection for the runtime to compile.
func ftProbePred(p ast.Expr) (ast.FTSelection, bool) {
	ftc, ok := p.(ast.FTContains)
	if !ok {
		return nil, false
	}
	if _, ok := ftc.X.(ast.ContextItem); !ok {
		return nil, false
	}
	if !ftSelStatic(ftc.Sel) {
		return nil, false
	}
	return ftc.Sel, true
}

// FTProbeSelection re-exposes the probe-pred recognition to the
// runtime: given a step annotated AccessFT, it extracts the literal
// selection from the first predicate. ok is false when the predicate
// is not the planned shape (a stale annotation is treated as a scan).
func FTProbeSelection(p ast.Expr) (ast.FTSelection, bool) {
	return ftProbePred(p)
}

// ftSelStatic reports whether every word source in the selection is a
// string literal (or a parenthesized sequence of string literals).
func ftSelStatic(sel ast.FTSelection) bool {
	switch s := sel.(type) {
	case ast.FTWords:
		_, ok := FTStaticPhrases(s.Source)
		return ok
	case ast.FTAnd:
		return ftSelStatic(s.L) && ftSelStatic(s.R)
	case ast.FTOr:
		return ftSelStatic(s.L) && ftSelStatic(s.R)
	case ast.FTNot:
		return ftSelStatic(s.X)
	default:
		return false
	}
}

// FTStaticPhrases extracts the phrase list a literal word source
// denotes: a single string literal, or a sequence expression of string
// literals. ok is false for anything dynamic.
func FTStaticPhrases(e ast.Expr) ([]string, bool) {
	switch x := e.(type) {
	case ast.StringLit:
		return []string{x.Val}, true
	case ast.SeqExpr:
		out := make([]string, 0, len(x.Items))
		for _, it := range x.Items {
			lit, ok := it.(ast.StringLit)
			if !ok {
				return nil, false
			}
			out = append(out, lit.Val)
		}
		return out, true
	default:
		return nil, false
	}
}

// ftSelAnswerable mirrors the index's candidate-set logic: a selection
// the postings can bound from above. ftnot bounds nothing; ftor needs
// both sides bounded; ftand needs either. Annotating an unanswerable
// selection would be correct (the runtime falls back to scanning) but
// pointless, so the planner refuses it.
func ftSelAnswerable(sel ast.FTSelection) bool {
	switch s := sel.(type) {
	case ast.FTWords:
		return true
	case ast.FTAnd:
		return ftSelAnswerable(s.L) || ftSelAnswerable(s.R)
	case ast.FTOr:
		return ftSelAnswerable(s.L) && ftSelAnswerable(s.R)
	case ast.FTNot:
		return false
	default:
		_ = s
		return false
	}
}

// ftProbeTestOK restricts AccessFT to node tests that only match node
// kinds the full-text index ranges: elements and text nodes. The index
// never sees comments or processing instructions, so a node() or
// comment() test probed through it would lose matches — those shapes
// keep scanning.
func ftProbeTestOK(t ast.NodeTest) bool {
	switch {
	case t.AnyNode:
		return false
	case t.IsName:
		// Name tests on the descendant axes match elements only
		// (attributes live on their own axis).
		return true
	default:
		return t.Kind == xdm.TElementNode || t.Kind == xdm.TTextNode
	}
}
