package plan

import (
	"testing"

	"repro/internal/xquery/ast"
	"repro/internal/xquery/parser"
)

// ftPlanned parses a single-path query, runs the //-rewrite the
// evaluator runs, and returns the merged steps' access annotations.
func ftPlanned(t *testing.T, src string) []ast.Step {
	t.Helper()
	m, err := parser.ParseModule(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	Annotate(m)
	p, ok := m.Body.(ast.Path)
	if !ok {
		t.Fatalf("body of %q is %T, want Path", src, m.Body)
	}
	return RewriteDescendantSteps(p.Steps)
}

func TestPlanStepFTProbe(t *testing.T) {
	cases := []struct {
		src  string
		want ast.AccessMethod
	}{
		// The canonical probed shape: descendant step, context-item
		// ftcontains, literal words.
		{`//article[. ftcontains "marlin"]`, ast.AccessFT},
		// Phrases, sequences, and boolean combinations of literals
		// still plan; ftnot at the top bounds nothing and scans — the
		// element-name index still answers the step itself.
		{`//article[. ftcontains "coral reef"]`, ast.AccessFT},
		{`//article[. ftcontains { ("a", "b") } any]`, ast.AccessFT},
		{`//article[. ftcontains "a" ftand "b"]`, ast.AccessFT},
		{`//article[. ftcontains "a" ftor "b"]`, ast.AccessFT},
		{`//article[. ftcontains ftnot "a"]`, ast.AccessIndexName},
		// Dynamic sources must wait for evaluation.
		{`//article[. ftcontains { string(@q) }]`, ast.AccessIndexName},
		// A non-context search context is an ordinary predicate.
		{`//article[p ftcontains "a"]`, ast.AccessIndexName},
	}
	for _, c := range cases {
		steps := ftPlanned(t, c.src)
		if len(steps) != 1 {
			t.Fatalf("%q merged to %d steps, want 1", c.src, len(steps))
		}
		if steps[0].Access != c.want {
			t.Errorf("%q planned %v, want %v", c.src, steps[0].Access, c.want)
		}
	}
}

func TestPlanStepFTProbeKindTests(t *testing.T) {
	// text() and element() tests may probe; node() and comment() match
	// kinds the index never ranges and must scan.
	for src, want := range map[string]ast.AccessMethod{
		`//text()[. ftcontains "a"]`:    ast.AccessFT,
		`//node()[. ftcontains "a"]`:    ast.AccessScan,
		`//comment()[. ftcontains "a"]`: ast.AccessScan,
	} {
		steps := ftPlanned(t, src)
		if steps[0].Access != want {
			t.Errorf("%q planned %v, want %v", src, steps[0].Access, want)
		}
	}
}

func TestFTProbeSelectionRoundTrip(t *testing.T) {
	steps := ftPlanned(t, `//article[. ftcontains { ("b", "c") } ftand "a"]`)
	if steps[0].Access != ast.AccessFT {
		t.Fatalf("planned %v, want AccessFT", steps[0].Access)
	}
	sel, ok := FTProbeSelection(steps[0].Preds[0])
	if !ok {
		t.Fatal("FTProbeSelection rejected the planned predicate")
	}
	and, ok := sel.(ast.FTAnd)
	if !ok {
		t.Fatalf("selection is %T, want FTAnd", sel)
	}
	if ph, _ := FTStaticPhrases(and.L.(ast.FTWords).Source); len(ph) != 2 {
		t.Errorf("left phrases = %v, want [b c]", ph)
	}
	if ph, _ := FTStaticPhrases(and.R.(ast.FTWords).Source); len(ph) != 1 || ph[0] != "a" {
		t.Errorf("right phrases = %v, want [a]", ph)
	}
}
