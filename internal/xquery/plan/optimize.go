package plan

import (
	"repro/internal/dom"
	"repro/internal/xquery/ast"
)

// Optimize is the algebraic rewrite stage between path planning and
// closure compilation: it rebuilds an expression tree with
//
//   - constant subtrees folded to literals (sharing plan.Fold with the
//     static analyzer, so the two passes agree on what is constant);
//   - nested FLWORs flattened into one clause list, which is what
//     exposes joins written as `for ... return for ...`;
//   - leading where conjuncts pushed down into the last for clause's
//     path as ordinary predicates — the shape the path planner then
//     turns into index probes;
//   - loop-invariant let bindings and where conjuncts wrapped in
//     ast.Hoisted, which the compiled backend memoises per FLWOR entry;
//   - equality predicates between the last for clause and an earlier
//     one annotated as ast.JoinPlan for hash-join execution.
//
// Every rewrite copies: Optimize never mutates its input, because the
// input is the shared, cache-resident parsed module (the `planpure`
// vet pass in tools/analyzers enforces the discipline syntactically).
// Rewrites are conservative about effects, per FLUX: a subexpression
// is only moved or memoised when pureExpr proves it free of updates,
// scripting state, browser effects and node construction, so no
// rewrite reorders across an updating expression and PUL snapshot
// semantics survive unchanged.
type Stats struct {
	Folds     int // subtrees replaced by literals
	Pushdowns int // where conjuncts moved into path predicates
	Hoists    int // loop-invariant lets/conjuncts marked Hoisted
	Joins     int // FLWORs annotated with a JoinPlan
}

// Optimize rewrites e bottom-up, accumulating rewrite counts into st
// (which may be nil).
func Optimize(e ast.Expr, st *Stats) ast.Expr {
	if st == nil {
		st = &Stats{}
	}
	o := &optimizer{st: st}
	return o.expr(e)
}

type optimizer struct {
	st *Stats
}

// expr rewrites children first, then tries node-local rewrites.
func (o *optimizer) expr(e ast.Expr) ast.Expr {
	e = o.children(e)
	if lit, ok := o.foldToLiteral(e); ok {
		o.st.Folds++
		return lit
	}
	switch x := e.(type) {
	case ast.If:
		// Dead-branch elimination: a constant condition selects one
		// branch at compile time. FoldBool never succeeds on an
		// expression whose evaluation could error, so the eliminated
		// EBV computation was observationally pure.
		if b, ok := FoldBool(x.Cond); ok {
			o.st.Folds++
			if b {
				return x.Then
			}
			return x.Else
		}
		return x
	case ast.FLWOR:
		return o.flwor(x)
	}
	return e
}

// foldToLiteral replaces a foldable subtree with its literal form. It
// refuses trees that are already literal-shaped (nothing to gain) and
// and/or operators with only one foldable side (the walker would still
// evaluate the other side's EBV, which can error — folding it away
// would change error behaviour).
func (o *optimizer) foldToLiteral(e ast.Expr) (ast.Expr, bool) {
	switch x := e.(type) {
	case ast.IntLit, ast.DoubleLit, ast.StringLit, ast.DecimalLit,
		ast.VarRef, ast.ContextItem:
		return nil, false
	case ast.SeqExpr:
		if len(x.Items) == 0 {
			return nil, false
		}
	case ast.FuncCall:
		if x.Name.Space == fnSpace && len(x.Args) == 0 &&
			(x.Name.Local == "true" || x.Name.Local == "false") {
			return nil, false
		}
	case ast.Binary:
		if x.Op == "and" || x.Op == "or" {
			if _, lok := FoldBool(x.L); !lok {
				return nil, false
			}
			if _, rok := FoldBool(x.R); !rok {
				return nil, false
			}
		}
	}
	v, ok := Fold(e)
	if !ok {
		return nil, false
	}
	switch v.Kind {
	case ConstInt:
		return ast.IntLit{Val: v.I}, true
	case ConstFloat:
		return ast.DoubleLit{Val: v.F}, true
	case ConstString:
		return ast.StringLit{Val: v.S}, true
	case ConstBool:
		name := "false"
		if v.B {
			name = "true"
		}
		return ast.FuncCall{Name: dom.QName{Space: fnSpace, Local: name}}, true
	case ConstEmpty:
		return ast.SeqExpr{}, true
	}
	return nil, false
}

// --- FLWOR rewrites ----------------------------------------------------------

func (o *optimizer) flwor(f ast.FLWOR) ast.FLWOR {
	f = o.flatten(f)
	conj := andConjuncts(f.Where)
	conj, f.Join = o.detectJoin(f, conj)
	if f.Join != nil {
		o.st.Joins++
	} else {
		conj, f.Clauses = o.pushdown(f.Clauses, conj)
	}
	f.Clauses = o.hoistLets(f.Clauses)
	conj = o.hoistConjuncts(f.Clauses, conj)
	f.Where = andChain(conj)
	return f
}

// flatten merges `for $a in E return for $b in F return R` into one
// clause list. Binding order, evaluation order and shadowing are
// identical between the nested and the flat form, so the rewrite is
// unconditional as long as neither level sorts (order by changes when
// tuples are collected) and the outer level has no filter of its own.
func (o *optimizer) flatten(f ast.FLWOR) ast.FLWOR {
	for f.Where == nil && len(f.OrderBy) == 0 && f.Join == nil {
		inner, ok := f.Return.(ast.FLWOR)
		if !ok || len(inner.OrderBy) != 0 || inner.Join != nil {
			break
		}
		clauses := make([]ast.Clause, 0, len(f.Clauses)+len(inner.Clauses))
		clauses = append(clauses, f.Clauses...)
		clauses = append(clauses, inner.Clauses...)
		f = ast.FLWOR{Clauses: clauses, Where: inner.Where, Return: inner.Return}
	}
	return f
}

// andConjuncts splits a where expression on top-level `and` into its
// conjuncts, in evaluation order.
func andConjuncts(e ast.Expr) []ast.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(ast.Binary); ok && b.Op == "and" {
		return append(andConjuncts(b.L), andConjuncts(b.R)...)
	}
	return []ast.Expr{e}
}

// andChain rebuilds a left-associated and-chain (the evaluation order
// of the conjunct list).
func andChain(conj []ast.Expr) ast.Expr {
	if len(conj) == 0 {
		return nil
	}
	e := conj[0]
	for _, c := range conj[1:] {
		e = ast.Binary{Op: "and", L: e, R: c}
	}
	return e
}

// detectJoin looks for a hash-joinable leading conjunct: the last
// clause is a plain for (no position variable, no type), its binding
// sequence is pure and independent of every earlier clause, and the
// first where conjunct equates a key over that clause's variable with
// a key over earlier scope only. Restricting to the leading conjunct
// and the last clause keeps evaluation order — and therefore error
// and effect order — identical to the nested loop it replaces.
func (o *optimizer) detectJoin(f ast.FLWOR, conj []ast.Expr) ([]ast.Expr, *ast.JoinPlan) {
	j := len(f.Clauses) - 1
	if len(conj) == 0 || j < 1 {
		return conj, nil
	}
	cl := f.Clauses[j]
	if !cl.For || !cl.PosVar.IsZero() || cl.Type != nil {
		return conj, nil
	}
	hasForBefore := false
	for _, pc := range f.Clauses[:j] {
		if pc.For {
			hasForBefore = true
			break
		}
	}
	if !hasForBefore {
		return conj, nil
	}
	earlier := boundVarSet(f.Clauses[:j])
	if !pureExpr(cl.In) || mentionsVars(cl.In, earlier) {
		return conj, nil
	}
	cmp, ok := conj[0].(ast.Compare)
	if !ok {
		return conj, nil
	}
	inner := map[string]bool{vkey(cl.Var): true}
	var plan *ast.JoinPlan
	switch {
	case cmp.Kind == ast.ValueComp && cmp.Op == "eq":
		// eq: the inner side must be a bare key path over the clause
		// variable; the outer side may be any pure expression over
		// earlier scope.
		outerOK := func(e ast.Expr) bool { return pureExpr(e) && !mentionsVars(e, inner) }
		if isVarKey(cmp.L, cl.Var) && outerOK(cmp.R) {
			plan = &ast.JoinPlan{Clause: j, OuterKey: cmp.R, InnerKey: cmp.L, ValueEq: true, Pred: cmp}
		} else if isVarKey(cmp.R, cl.Var) && outerOK(cmp.L) {
			plan = &ast.JoinPlan{Clause: j, OuterKey: cmp.L, InnerKey: cmp.R, ValueEq: true, OuterLeft: true, Pred: cmp}
		}
	case cmp.Kind == ast.GeneralComp && cmp.Op == "=":
		// =: existential; both sides must be bare key paths so the
		// key atoms are nodes' untyped values (string-comparable).
		lroot, lok := varKeyRoot(cmp.L)
		rroot, rok := varKeyRoot(cmp.R)
		if lok && rok {
			if lroot.Matches(cl.Var) && !rroot.Matches(cl.Var) {
				plan = &ast.JoinPlan{Clause: j, OuterKey: cmp.R, InnerKey: cmp.L, Pred: cmp}
			} else if rroot.Matches(cl.Var) && !lroot.Matches(cl.Var) {
				plan = &ast.JoinPlan{Clause: j, OuterKey: cmp.L, InnerKey: cmp.R, OuterLeft: true, Pred: cmp}
			}
		}
	}
	if plan == nil {
		return conj, nil
	}
	return conj[1:], plan
}

// isVarKey reports whether e is $v or a predicate-free axis path
// rooted at $v — the shapes whose evaluation depends on nothing but
// the one variable.
func isVarKey(e ast.Expr, v dom.QName) bool {
	root, ok := varKeyRoot(e)
	return ok && root.Matches(v)
}

// varKeyRoot matches $x or $x/axis-step/... (predicate-free, no mid-
// path primaries) and returns the root variable.
func varKeyRoot(e ast.Expr) (dom.QName, bool) {
	if vr, ok := e.(ast.VarRef); ok {
		return vr.Name, true
	}
	p, ok := e.(ast.Path)
	if !ok || p.Absolute || len(p.Steps) == 0 {
		return dom.QName{}, false
	}
	vr, ok := p.Steps[0].Primary.(ast.VarRef)
	if !ok || len(p.Steps[0].Preds) != 0 {
		return dom.QName{}, false
	}
	for _, s := range p.Steps[1:] {
		if s.Primary != nil || len(s.Preds) != 0 {
			return dom.QName{}, false
		}
	}
	return vr.Name, true
}

// pushdown moves leading where conjuncts into the last clause's path
// as trailing predicates, repeating while the new leading conjunct
// qualifies. Only the leading conjunct may move: where conjuncts
// short-circuit left to right, so a later conjunct must not run (or
// error) for a tuple an earlier one rejected. The last clause must be
// a plain for over an axis-ended path, and the rewritten conjunct must
// stay boolean-valued (a numeric predicate would turn positional).
func (o *optimizer) pushdown(clauses []ast.Clause, conj []ast.Expr) ([]ast.Expr, []ast.Clause) {
	if len(clauses) == 0 {
		return conj, clauses
	}
	last := len(clauses) - 1
	cl := clauses[last]
	if !cl.For || !cl.PosVar.IsZero() || cl.Type != nil {
		return conj, clauses
	}
	p, ok := cl.In.(ast.Path)
	if !ok || len(p.Steps) == 0 || p.Steps[len(p.Steps)-1].Primary != nil {
		return conj, clauses
	}
	var pushed []ast.Expr
	for len(conj) > 0 {
		pred, ok := rewriteForPushdown(conj[0], cl.Var)
		if !ok || !BooleanValuedPred(pred) {
			break
		}
		pushed = append(pushed, pred)
		conj = conj[1:]
		o.st.Pushdowns++
	}
	if len(pushed) == 0 {
		return conj, clauses
	}
	// Copy the spine: fresh steps slice, fresh last step with the new
	// predicates appended, re-planned (an [@id = ...] predicate can
	// upgrade the step to an id probe).
	steps := make([]ast.Step, len(p.Steps))
	copy(steps, p.Steps)
	lastStep := steps[len(steps)-1]
	preds := make([]ast.Expr, 0, len(lastStep.Preds)+len(pushed))
	preds = append(preds, lastStep.Preds...)
	preds = append(preds, pushed...)
	lastStep.Preds = preds
	PlanStep(&lastStep)
	steps[len(steps)-1] = lastStep
	out := make([]ast.Clause, len(clauses))
	copy(out, clauses)
	out[last].In = ast.Path{Absolute: p.Absolute, Steps: steps}
	return conj, out
}

// rewriteForPushdown rewrites a where conjunct over $v into a path
// predicate over the candidate node: $v becomes `.` (a context-item
// path root). ok is false when the conjunct cannot move — it mentions
// the surrounding focus (., position(), last(), or a builtin call that
// defaults an omitted argument to the context item), contains a
// relative or absolute path not rooted at a variable, binds variables
// of its own, or has a shape the rewriter does not understand.
func rewriteForPushdown(e ast.Expr, v dom.QName) (ast.Expr, bool) {
	switch x := e.(type) {
	case nil:
		return nil, true
	case ast.StringLit, ast.IntLit, ast.DecimalLit, ast.DoubleLit:
		return e, true
	case ast.VarRef:
		if x.Name.Matches(v) {
			return ast.ContextItem{}, true
		}
		return e, true
	case ast.ContextItem:
		return nil, false // outer-focus reference: cannot move
	case ast.SeqExpr:
		items := make([]ast.Expr, len(x.Items))
		for i, it := range x.Items {
			r, ok := rewriteForPushdown(it, v)
			if !ok {
				return nil, false
			}
			items[i] = r
		}
		return ast.SeqExpr{Items: items}, true
	case ast.FuncCall:
		if x.Name.Local == "position" || x.Name.Local == "last" {
			return nil, false
		}
		if n, defaults := contextFnMinArgs[x.Name.Local]; defaults && len(x.Args) < n {
			return nil, false // implicit context item: outer-focus reference
		}
		args := make([]ast.Expr, len(x.Args))
		for i, a := range x.Args {
			r, ok := rewriteForPushdown(a, v)
			if !ok {
				return nil, false
			}
			args[i] = r
		}
		return ast.FuncCall{Name: x.Name, Args: args, At: x.At}, true
	case ast.If:
		c, ok1 := rewriteForPushdown(x.Cond, v)
		t, ok2 := rewriteForPushdown(x.Then, v)
		el, ok3 := rewriteForPushdown(x.Else, v)
		if !ok1 || !ok2 || !ok3 {
			return nil, false
		}
		return ast.If{Cond: c, Then: t, Else: el, At: x.At}, true
	case ast.Binary:
		l, ok1 := rewriteForPushdown(x.L, v)
		r, ok2 := rewriteForPushdown(x.R, v)
		if !ok1 || !ok2 {
			return nil, false
		}
		return ast.Binary{Op: x.Op, L: l, R: r}, true
	case ast.Compare:
		l, ok1 := rewriteForPushdown(x.L, v)
		r, ok2 := rewriteForPushdown(x.R, v)
		if !ok1 || !ok2 {
			return nil, false
		}
		return ast.Compare{Op: x.Op, Kind: x.Kind, L: l, R: r}, true
	case ast.Unary:
		r, ok := rewriteForPushdown(x.X, v)
		if !ok {
			return nil, false
		}
		return ast.Unary{Neg: x.Neg, X: r}, true
	case ast.Range:
		l, ok1 := rewriteForPushdown(x.L, v)
		r, ok2 := rewriteForPushdown(x.R, v)
		if !ok1 || !ok2 {
			return nil, false
		}
		return ast.Range{L: l, R: r}, true
	case ast.InstanceOf:
		r, ok := rewriteForPushdown(x.X, v)
		if !ok {
			return nil, false
		}
		return ast.InstanceOf{X: r, Type: x.Type}, true
	case ast.TreatAs:
		r, ok := rewriteForPushdown(x.X, v)
		if !ok {
			return nil, false
		}
		return ast.TreatAs{X: r, Type: x.Type}, true
	case ast.CastAs:
		r, ok := rewriteForPushdown(x.X, v)
		if !ok {
			return nil, false
		}
		return ast.CastAs{X: r, Type: x.Type, Optional: x.Optional, Castable: x.Castable}, true
	case ast.Path:
		if x.Absolute {
			return nil, false // rooted at the focus node's tree
		}
		if len(x.Steps) == 0 {
			return nil, false
		}
		first := x.Steps[0]
		if first.Primary == nil {
			return nil, false // relative to the outer focus
		}
		steps := make([]ast.Step, len(x.Steps))
		copy(steps, x.Steps)
		switch prim := first.Primary.(type) {
		case ast.VarRef:
			if prim.Name.Matches(v) {
				if len(first.Preds) == 0 && len(steps) > 1 {
					// `$v/rest` over the candidate node is just `rest`:
					// dropping the root step (rather than rewriting it
					// to `.`) keeps the predicate a plain axis path —
					// the shape the id-index planner recognises, so
					// [@id = "v"] pushdowns upgrade to id probes.
					steps = steps[1:]
				} else {
					steps[0].Primary = ast.ContextItem{}
				}
			}
		default:
			return nil, false
		}
		// Step predicates have their own focus, so `.`, position() and
		// last() inside them are local — but a mention of $v inside a
		// predicate would need the outer binding we are eliminating.
		vset := map[string]bool{vkey(v): true}
		for _, s := range x.Steps {
			for _, pr := range s.Preds {
				if mentionsVars(pr, vset) {
					return nil, false
				}
			}
			if s.Primary != nil && s.Primary != first.Primary {
				return nil, false
			}
		}
		for i := 1; i < len(steps); i++ {
			if steps[i].Primary != nil {
				return nil, false
			}
		}
		return ast.Path{Absolute: false, Steps: steps}, true
	case ast.FTContains:
		// `$v ftcontains S` becomes `. ftcontains S` over the candidate
		// node. Rewriting matters beyond generality: the planned
		// predicate is exactly the shape PlanStep upgrades to an
		// AccessFT posting-list probe when the sources are literals.
		cx, ok := rewriteForPushdown(x.X, v)
		if !ok {
			return nil, false
		}
		sel, ok := rewriteFTForPushdown(x.Sel, v)
		if !ok {
			return nil, false
		}
		return ast.FTContains{X: cx, Sel: sel}, true
	}
	return nil, false
}

// rewriteFTForPushdown rewrites the word sources of a full-text
// selection for predicate pushdown (see rewriteForPushdown).
func rewriteFTForPushdown(sel ast.FTSelection, v dom.QName) (ast.FTSelection, bool) {
	switch s := sel.(type) {
	case ast.FTWords:
		src, ok := rewriteForPushdown(s.Source, v)
		if !ok {
			return nil, false
		}
		return ast.FTWords{Source: src, AnyAll: s.AnyAll, Opts: s.Opts}, true
	case ast.FTAnd:
		l, ok1 := rewriteFTForPushdown(s.L, v)
		r, ok2 := rewriteFTForPushdown(s.R, v)
		if !ok1 || !ok2 {
			return nil, false
		}
		return ast.FTAnd{L: l, R: r}, true
	case ast.FTOr:
		l, ok1 := rewriteFTForPushdown(s.L, v)
		r, ok2 := rewriteFTForPushdown(s.R, v)
		if !ok1 || !ok2 {
			return nil, false
		}
		return ast.FTOr{L: l, R: r}, true
	case ast.FTNot:
		x, ok := rewriteFTForPushdown(s.X, v)
		if !ok {
			return nil, false
		}
		return ast.FTNot{X: x}, true
	default:
		return nil, false
	}
}

// hoistLets wraps loop-invariant let bindings (pure, independent of
// every iteration-variant variable bound earlier, with at least one
// for clause in front) in ast.Hoisted.
func (o *optimizer) hoistLets(clauses []ast.Clause) []ast.Clause {
	variant := map[string]bool{}
	sawFor := false
	var out []ast.Clause
	for i, cl := range clauses {
		if cl.For {
			sawFor = true
			variant[vkey(cl.Var)] = true
			if !cl.PosVar.IsZero() {
				variant[vkey(cl.PosVar)] = true
			}
			continue
		}
		invariant := sawFor && pureExpr(cl.In) && !mentionsVars(cl.In, variant)
		if invariant {
			if out == nil {
				out = make([]ast.Clause, len(clauses))
				copy(out, clauses)
			}
			out[i].In = ast.Hoisted{X: cl.In}
			o.st.Hoists++
			continue
		}
		if !pureExpr(cl.In) || mentionsVars(cl.In, variant) {
			variant[vkey(cl.Var)] = true
		}
	}
	if out == nil {
		return clauses
	}
	return out
}

// hoistConjuncts wraps loop-invariant where conjuncts in ast.Hoisted;
// the compiled backend memoises their EBV at first use, so a
// zero-iteration loop still never evaluates them.
func (o *optimizer) hoistConjuncts(clauses []ast.Clause, conj []ast.Expr) []ast.Expr {
	hasFor := false
	for _, cl := range clauses {
		if cl.For {
			hasFor = true
			break
		}
	}
	if !hasFor || len(conj) == 0 {
		return conj
	}
	bound := boundVarSet(clauses)
	var out []ast.Expr
	for i, c := range conj {
		if pureExpr(c) && !mentionsVars(c, bound) {
			if out == nil {
				out = make([]ast.Expr, len(conj))
				copy(out, conj)
			}
			out[i] = ast.Hoisted{X: c}
			o.st.Hoists++
		}
	}
	if out == nil {
		return conj
	}
	return out
}

func boundVarSet(clauses []ast.Clause) map[string]bool {
	s := map[string]bool{}
	for _, cl := range clauses {
		s[vkey(cl.Var)] = true
		if !cl.PosVar.IsZero() {
			s[vkey(cl.PosVar)] = true
		}
	}
	return s
}

func vkey(n dom.QName) string { return n.Space + "#" + n.Local }

// --- conservative predicates -------------------------------------------------

// contextFnMinArgs maps builtins whose funclib implementation defaults
// an omitted argument to the context item (argOrContext / ctx.Item) to
// the argument count that makes the context explicit. A shorter call
// reads the focus implicitly, so rewriteForPushdown must reject it:
// pushdown re-focuses the conjunct from the outer FLWOR tuple onto
// each candidate node, which would silently rebind the implicit
// context (`where local-name() = "book"` must keep seeing the outer
// focus, not each candidate). Standard context-defaulting builtins the
// library does not register yet are listed too, so registering one
// later cannot re-open the hole. Matched by local name regardless of
// namespace, like the position()/last() check above: a false positive
// only skips a rewrite.
var contextFnMinArgs = map[string]int{
	"string": 1, "string-length": 1, "length": 1, "normalize-space": 1,
	"number": 1, "data": 1, "name": 1, "local-name": 1,
	"namespace-uri": 1, "node-name": 1, "root": 1, "base-uri": 1,
	"document-uri": 1, "generate-id": 1, "path": 1, "has-children": 1,
	"lang": 2, "id": 2, "idref": 2, "element-with-id": 2,
}

// pureFn is the allowlist of fn:-namespace builtins the optimizer may
// move, memoise or join-build: side-effect free and stable under
// re-evaluation within one FLWOR entry. Context-defaulting builtins
// qualify — pureExpr rewrites never change the focus, and the focus is
// invariant across the iterations of the FLWOR they move within (only
// pushdown re-focuses, and it has its own guard above). Anything
// absent answers impure, the conservative default-false style used
// elsewhere in this file, so a future or host-registered builtin is
// never silently hoisted: notably fn:doc / fn:doc-available /
// fn:collection (resolver-backed, observe external state), fn:put
// (updates), fn:trace (side channel), fn:error (raising must stay
// where the author put it), fn:current-* (read the clock), and
// fn:position / fn:last (focus-dependent beyond the item).
var pureFn = map[string]bool{}

func init() {
	for _, n := range []string{
		// strings
		"string", "concat", "string-join", "substring", "string-length",
		"length", "normalize-space", "upper-case", "lower-case",
		"translate", "contains", "starts-with", "ends-with",
		"substring-before", "substring-after", "compare",
		"encode-for-uri", "codepoints-to-string", "string-to-codepoints",
		// regex
		"matches", "replace", "tokenize",
		// numeric
		"number", "abs", "floor", "ceiling", "round", "round-half-to-even",
		// boolean
		"true", "false", "not", "boolean",
		// sequences
		"empty", "exists", "head", "tail", "count", "reverse",
		"insert-before", "remove", "subsequence", "index-of",
		"distinct-values", "deep-equal", "data",
		"zero-or-one", "one-or-more", "exactly-one",
		// aggregates
		"sum", "avg", "min", "max",
		// nodes (reads, not constructors; fresh-identity makers are
		// handled by the expression cases, not this list)
		"name", "local-name", "namespace-uri", "node-name", "root",
		"base-uri", "id",
		// date/time component accessors (current-* excluded above)
		"year-from-dateTime", "month-from-dateTime", "day-from-dateTime",
		"hours-from-dateTime", "minutes-from-dateTime", "seconds-from-dateTime",
		"year-from-date", "month-from-date", "day-from-date",
		"hours-from-time", "minutes-from-time", "seconds-from-time",
		"years-from-duration", "months-from-duration", "days-from-duration",
		"hours-from-duration", "minutes-from-duration", "seconds-from-duration",
	} {
		pureFn[n] = true
	}
}

// pureExpr reports whether evaluating e is free of side effects and
// yields the same value however often it runs in one FLWOR entry.
// Node constructors are impure here: each evaluation creates a fresh
// node identity. Conservative: unknown shapes answer false.
func pureExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case ast.StringLit, ast.IntLit, ast.DecimalLit, ast.DoubleLit,
		ast.VarRef, ast.ContextItem:
		return true
	case ast.SeqExpr:
		for _, it := range x.Items {
			if !pureExpr(it) {
				return false
			}
		}
		return true
	case ast.Ordered:
		return pureExpr(x.X)
	case ast.Hoisted:
		return pureExpr(x.X)
	case ast.FuncCall:
		if x.Name.Space != fnSpace || !pureFn[x.Name.Local] {
			return false
		}
		for _, a := range x.Args {
			if !pureExpr(a) {
				return false
			}
		}
		return true
	case ast.If:
		return pureExpr(x.Cond) && pureExpr(x.Then) && pureExpr(x.Else)
	case ast.FLWOR:
		if x.Join != nil {
			// Join annotations carry their own evaluation schedule;
			// treat as opaque.
			return false
		}
		for _, cl := range x.Clauses {
			if !pureExpr(cl.In) {
				return false
			}
		}
		for _, os := range x.OrderBy {
			if !pureExpr(os.Key) {
				return false
			}
		}
		return pureExpr(x.Where) && pureExpr(x.Return)
	case ast.Quantified:
		for _, cl := range x.Vars {
			if !pureExpr(cl.In) {
				return false
			}
		}
		return pureExpr(x.Satisfies)
	case ast.Binary:
		return pureExpr(x.L) && pureExpr(x.R)
	case ast.Compare:
		return pureExpr(x.L) && pureExpr(x.R)
	case ast.Unary:
		return pureExpr(x.X)
	case ast.Range:
		return pureExpr(x.L) && pureExpr(x.R)
	case ast.InstanceOf:
		return pureExpr(x.X)
	case ast.TreatAs:
		return pureExpr(x.X)
	case ast.CastAs:
		return pureExpr(x.X)
	case ast.Path:
		for _, s := range x.Steps {
			if s.Primary != nil && !pureExpr(s.Primary) {
				return false
			}
			for _, pr := range s.Preds {
				if !pureExpr(pr) {
					return false
				}
			}
		}
		return true
	default:
		return false
	}
}

// mentionsVars reports whether e references any variable in vars.
// Shadowing is ignored (a shadowed mention still answers true) and
// unknown shapes answer true: both errors are on the safe side — the
// optimizer merely skips a rewrite.
func mentionsVars(e ast.Expr, vars map[string]bool) bool {
	if len(vars) == 0 {
		return false
	}
	switch x := e.(type) {
	case nil:
		return false
	case ast.StringLit, ast.IntLit, ast.DecimalLit, ast.DoubleLit, ast.ContextItem:
		return false
	case ast.VarRef:
		return vars[vkey(x.Name)]
	case ast.SeqExpr:
		for _, it := range x.Items {
			if mentionsVars(it, vars) {
				return true
			}
		}
		return false
	case ast.Ordered:
		return mentionsVars(x.X, vars)
	case ast.Hoisted:
		return mentionsVars(x.X, vars)
	case ast.FuncCall:
		for _, a := range x.Args {
			if mentionsVars(a, vars) {
				return true
			}
		}
		return false
	case ast.If:
		return mentionsVars(x.Cond, vars) || mentionsVars(x.Then, vars) || mentionsVars(x.Else, vars)
	case ast.FLWOR:
		for _, cl := range x.Clauses {
			if mentionsVars(cl.In, vars) {
				return true
			}
		}
		if x.Join != nil &&
			(mentionsVars(x.Join.OuterKey, vars) || mentionsVars(x.Join.InnerKey, vars)) {
			return true
		}
		for _, os := range x.OrderBy {
			if mentionsVars(os.Key, vars) {
				return true
			}
		}
		return mentionsVars(x.Where, vars) || mentionsVars(x.Return, vars)
	case ast.Quantified:
		for _, cl := range x.Vars {
			if mentionsVars(cl.In, vars) {
				return true
			}
		}
		return mentionsVars(x.Satisfies, vars)
	case ast.Typeswitch:
		if mentionsVars(x.Operand, vars) || mentionsVars(x.Default, vars) {
			return true
		}
		for _, c := range x.Cases {
			if mentionsVars(c.Body, vars) {
				return true
			}
		}
		return false
	case ast.Binary:
		return mentionsVars(x.L, vars) || mentionsVars(x.R, vars)
	case ast.Compare:
		return mentionsVars(x.L, vars) || mentionsVars(x.R, vars)
	case ast.Unary:
		return mentionsVars(x.X, vars)
	case ast.Range:
		return mentionsVars(x.L, vars) || mentionsVars(x.R, vars)
	case ast.InstanceOf:
		return mentionsVars(x.X, vars)
	case ast.TreatAs:
		return mentionsVars(x.X, vars)
	case ast.CastAs:
		return mentionsVars(x.X, vars)
	case ast.Path:
		for _, s := range x.Steps {
			if s.Primary != nil && mentionsVars(s.Primary, vars) {
				return true
			}
			for _, pr := range s.Preds {
				if mentionsVars(pr, vars) {
					return true
				}
			}
		}
		return false
	default:
		return true
	}
}

// --- copy-based child rewriting ---------------------------------------------

// children rebuilds e with optimized children. Node kinds the
// optimizer does not rewrite inside (constructors, updates, scripting,
// events, full text) are still descended into, because a FLWOR worth
// optimizing can hide anywhere; each case constructs a fresh node.
func (o *optimizer) children(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case ast.SeqExpr:
		items := make([]ast.Expr, len(x.Items))
		for i, it := range x.Items {
			items[i] = o.expr(it)
		}
		return ast.SeqExpr{Items: items}
	case ast.Ordered:
		return ast.Ordered{X: o.expr(x.X)}
	case ast.FuncCall:
		args := make([]ast.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = o.expr(a)
		}
		return ast.FuncCall{Name: x.Name, Args: args, At: x.At}
	case ast.If:
		return ast.If{Cond: o.expr(x.Cond), Then: o.expr(x.Then), Else: o.expr(x.Else), At: x.At}
	case ast.FLWOR:
		clauses := make([]ast.Clause, len(x.Clauses))
		copy(clauses, x.Clauses)
		for i := range clauses {
			clauses[i].In = o.expr(clauses[i].In)
		}
		orderBy := make([]ast.OrderSpec, len(x.OrderBy))
		copy(orderBy, x.OrderBy)
		for i := range orderBy {
			orderBy[i].Key = o.expr(orderBy[i].Key)
		}
		out := ast.FLWOR{Clauses: clauses, OrderBy: orderBy, Return: o.expr(x.Return)}
		if x.Where != nil {
			out.Where = o.expr(x.Where)
		}
		if len(out.OrderBy) == 0 {
			out.OrderBy = nil
		}
		return out
	case ast.Quantified:
		vars := make([]ast.Clause, len(x.Vars))
		copy(vars, x.Vars)
		for i := range vars {
			vars[i].In = o.expr(vars[i].In)
		}
		return ast.Quantified{Every: x.Every, Vars: vars, Satisfies: o.expr(x.Satisfies)}
	case ast.Typeswitch:
		cases := make([]ast.TypeswitchCase, len(x.Cases))
		copy(cases, x.Cases)
		for i := range cases {
			cases[i].Body = o.expr(cases[i].Body)
		}
		return ast.Typeswitch{Operand: o.expr(x.Operand), Cases: cases,
			DefaultVar: x.DefaultVar, Default: o.expr(x.Default), At: x.At}
	case ast.Binary:
		return ast.Binary{Op: x.Op, L: o.expr(x.L), R: o.expr(x.R)}
	case ast.Compare:
		return ast.Compare{Op: x.Op, Kind: x.Kind, L: o.expr(x.L), R: o.expr(x.R)}
	case ast.Unary:
		return ast.Unary{Neg: x.Neg, X: o.expr(x.X)}
	case ast.Range:
		return ast.Range{L: o.expr(x.L), R: o.expr(x.R)}
	case ast.InstanceOf:
		return ast.InstanceOf{X: o.expr(x.X), Type: x.Type}
	case ast.TreatAs:
		return ast.TreatAs{X: o.expr(x.X), Type: x.Type}
	case ast.CastAs:
		return ast.CastAs{X: o.expr(x.X), Type: x.Type, Optional: x.Optional, Castable: x.Castable}
	case ast.Path:
		steps := make([]ast.Step, len(x.Steps))
		copy(steps, x.Steps)
		for i := range steps {
			if steps[i].Primary != nil {
				steps[i].Primary = o.expr(steps[i].Primary)
			}
			if len(steps[i].Preds) > 0 {
				preds := make([]ast.Expr, len(steps[i].Preds))
				for k, pr := range steps[i].Preds {
					preds[k] = o.expr(pr)
				}
				steps[i].Preds = preds
			}
		}
		return ast.Path{Absolute: x.Absolute, Steps: steps}
	case ast.DirElem:
		attrs := make([]ast.DirAttr, len(x.Attrs))
		copy(attrs, x.Attrs)
		for i := range attrs {
			pieces := make([]ast.Expr, len(attrs[i].Pieces))
			for k, p := range attrs[i].Pieces {
				pieces[k] = o.expr(p)
			}
			attrs[i].Pieces = pieces
		}
		content := make([]ast.Expr, len(x.Content))
		for i, c := range x.Content {
			content[i] = o.expr(c)
		}
		return ast.DirElem{Name: x.Name, Attrs: attrs, Content: content}
	case ast.CompConstructor:
		return ast.CompConstructor{Kind: x.Kind, Name: x.Name,
			NameExpr: o.expr(x.NameExpr), Content: o.expr(x.Content)}
	case ast.Insert:
		return ast.Insert{Source: o.expr(x.Source), Target: o.expr(x.Target), Pos: x.Pos, At: x.At}
	case ast.Delete:
		return ast.Delete{Target: o.expr(x.Target), At: x.At}
	case ast.Replace:
		return ast.Replace{ValueOf: x.ValueOf, Target: o.expr(x.Target), With: o.expr(x.With), At: x.At}
	case ast.Rename:
		return ast.Rename{Target: o.expr(x.Target), NewName: o.expr(x.NewName), At: x.At}
	case ast.Transform:
		bindings := make([]ast.Clause, len(x.Bindings))
		copy(bindings, x.Bindings)
		for i := range bindings {
			bindings[i].In = o.expr(bindings[i].In)
		}
		return ast.Transform{Bindings: bindings, Modify: o.expr(x.Modify), Return: o.expr(x.Return), At: x.At}
	case ast.Block:
		stmts := make([]ast.Expr, len(x.Stmts))
		for i, s := range x.Stmts {
			stmts[i] = o.expr(s)
		}
		return ast.Block{Stmts: stmts}
	case ast.BlockDecl:
		return ast.BlockDecl{Var: x.Var, Type: x.Type, Init: o.expr(x.Init), At: x.At}
	case ast.Assign:
		return ast.Assign{Var: x.Var, Val: o.expr(x.Val), At: x.At}
	case ast.While:
		return ast.While{Cond: o.expr(x.Cond), Body: o.expr(x.Body), At: x.At}
	case ast.Exit:
		return ast.Exit{With: o.expr(x.With), At: x.At}
	case ast.EventAttach:
		return ast.EventAttach{Event: o.expr(x.Event), Target: o.expr(x.Target),
			Behind: x.Behind, Listener: x.Listener, At: x.At}
	case ast.EventDetach:
		return ast.EventDetach{Event: o.expr(x.Event), Target: o.expr(x.Target),
			Listener: x.Listener, At: x.At}
	case ast.EventTrigger:
		return ast.EventTrigger{Event: o.expr(x.Event), Target: o.expr(x.Target), At: x.At}
	case ast.SetStyle:
		return ast.SetStyle{Prop: o.expr(x.Prop), Target: o.expr(x.Target), Value: o.expr(x.Value), At: x.At}
	case ast.GetStyle:
		return ast.GetStyle{Prop: o.expr(x.Prop), Target: o.expr(x.Target), At: x.At}
	case ast.FTContains:
		return ast.FTContains{X: o.expr(x.X), Sel: x.Sel}
	default:
		// Literals, VarRef, ContextItem, Break, Continue, Hoisted (not
		// produced by parsers) and anything future: leave untouched.
		return e
	}
}
