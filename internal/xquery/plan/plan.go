// Package plan is the compile-time path planner: the pass between
// parsing and evaluation that decides, per axis step, how the runtime
// should produce the step's candidates. It annotates ast.Step.Access
// in place:
//
//   - descendant::x / descendant-or-self::x with a concrete element
//     name → AccessIndexName (probe the per-document element-name
//     index, see internal/dom/index);
//   - the same axes whose first predicate pins @id to a non-empty
//     string literal → AccessIndexID (probe the id index);
//   - everything else → AccessScan (walk the axis as before).
//
// The annotation is advisory: the evaluator re-applies the node test
// and every predicate to the probed candidates, and falls back to
// scanning whenever an index cannot answer, so a wrong plan can cost
// time but never correctness. Both evaluators consult it — the eager
// per-step machinery and the streaming iterators — and the static
// analyzer's cost model reads it to price indexed steps at O(matches)
// instead of O(tree).
//
// Planning mutates the shared AST, which the program cache hands to
// many engines concurrently; Module.EnsurePlanned guards the pass with
// a sync.Once so it runs exactly once, before any reader.
//
// The package also owns the //-rewrite and the conservative static
// predicates (ExprMentions, BooleanValuedPred) the rewrite and the
// streaming runtime share; it sits below runtime and analysis and
// imports only the AST.
package plan

import (
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
)

// fnSpace is the XPath functions namespace (unprefixed calls resolve
// to it).
const fnSpace = "http://www.w3.org/2005/xpath-functions"

// Annotate plans every path step in the module: the prolog's global
// initialisers, every function body, and the module body. Call it
// through Module.EnsurePlanned.
func Annotate(m *ast.Module) {
	for i := range m.Prolog.Vars {
		annotateExpr(m.Prolog.Vars[i].Init)
	}
	for i := range m.Prolog.Functions {
		annotateExpr(m.Prolog.Functions[i].Body)
	}
	annotateExpr(m.Body)
}

// PlanStep chooses the access method for one step and writes the
// annotation. Exported so the //-rewrite can plan the merged steps it
// synthesises at evaluation time (they never pass through Annotate).
func PlanStep(s *ast.Step) {
	s.Access, s.AccessID = ast.AccessScan, ""
	if s.Primary != nil {
		return
	}
	if s.Axis != ast.AxisDescendant && s.Axis != ast.AxisDescendantOrSelf {
		return
	}
	if len(s.Preds) > 0 {
		if id, ok := idPredLiteral(s.Preds[0]); ok {
			s.Access, s.AccessID = ast.AccessIndexID, id
			return
		}
		if sel, ok := ftProbePred(s.Preds[0]); ok && ftSelAnswerable(sel) && ftProbeTestOK(s.Test) {
			s.Access = ast.AccessFT
			return
		}
	}
	if _, _, ok := ProbeName(s.Test); ok {
		s.Access = ast.AccessIndexName
	}
}

// ProbeName extracts the concrete expanded element name an index probe
// would look up: a non-wildcard name test, or an element(N) kind test.
// ok is false for wildcards, node() and non-element kind tests.
func ProbeName(t ast.NodeTest) (space, local string, ok bool) {
	switch {
	case t.AnyNode:
		return "", "", false
	case t.IsName:
		if t.AnySpace || t.Name.Local == "*" {
			return "", "", false
		}
		return t.Name.Space, t.Name.Local, true
	default:
		// Kind tests: only element(N) with a concrete name is a
		// name-index probe; element(), element(*) and the other kinds
		// scan (the name index holds elements only, so probing it for
		// another kind would wrongly answer empty).
		if t.Kind != xdm.TElementNode || !t.HasName || t.KindName.Local == "*" {
			return "", "", false
		}
		return t.KindName.Space, t.KindName.Local, true
	}
}

// idPredLiteral recognises the id-pinning predicate shapes
// [@id = "v"] and [@id eq "v"] (either operand order) with a non-empty
// string literal. Only these are safe to turn into an id probe: the
// comparison is string-vs-untypedAtomic in both comparison families,
// the predicate can never be positional, and the id index does not
// record empty id attributes.
func idPredLiteral(p ast.Expr) (string, bool) {
	c, ok := p.(ast.Compare)
	if !ok {
		return "", false
	}
	switch {
	case c.Kind == ast.GeneralComp && c.Op == "=":
	case c.Kind == ast.ValueComp && c.Op == "eq":
	default:
		return "", false
	}
	if lit, ok := c.R.(ast.StringLit); ok && isIDAttrPath(c.L) && lit.Val != "" {
		return lit.Val, true
	}
	if lit, ok := c.L.(ast.StringLit); ok && isIDAttrPath(c.R) && lit.Val != "" {
		return lit.Val, true
	}
	return "", false
}

// isIDAttrPath matches the expression @id: a relative single-step path
// on the attribute axis naming the no-namespace "id" attribute, with
// no predicates.
func isIDAttrPath(e ast.Expr) bool {
	p, ok := e.(ast.Path)
	if !ok || p.Absolute || len(p.Steps) != 1 {
		return false
	}
	s := p.Steps[0]
	return s.Primary == nil && s.Axis == ast.AxisAttribute &&
		s.Test.IsName && !s.Test.AnySpace && len(s.Preds) == 0 &&
		s.Test.Name.Space == "" && s.Test.Name.Local == "id"
}

// annotatePath plans a path's steps in place. Path values are copied
// freely through Expr interfaces, but Steps is a slice, so writing
// through the element pointer reaches the one shared backing array.
func annotatePath(p ast.Path) {
	for i := range p.Steps {
		PlanStep(&p.Steps[i])
		annotateExpr(p.Steps[i].Primary)
		for _, pr := range p.Steps[i].Preds {
			annotateExpr(pr)
		}
	}
}

// annotateExpr walks an expression tree planning every path it
// contains. Unknown node kinds are simply not descended into — their
// paths stay AccessScan, which is always correct.
func annotateExpr(e ast.Expr) {
	switch x := e.(type) {
	case nil:
		return
	case ast.Path:
		annotatePath(x)
	case ast.SeqExpr:
		for _, it := range x.Items {
			annotateExpr(it)
		}
	case ast.FuncCall:
		for _, a := range x.Args {
			annotateExpr(a)
		}
	case ast.Ordered:
		annotateExpr(x.X)
	case ast.Hoisted:
		annotateExpr(x.X)
	case ast.If:
		annotateExpr(x.Cond)
		annotateExpr(x.Then)
		annotateExpr(x.Else)
	case ast.FLWOR:
		for _, c := range x.Clauses {
			annotateExpr(c.In)
		}
		annotateExpr(x.Where)
		for _, o := range x.OrderBy {
			annotateExpr(o.Key)
		}
		annotateExpr(x.Return)
	case ast.Quantified:
		for _, c := range x.Vars {
			annotateExpr(c.In)
		}
		annotateExpr(x.Satisfies)
	case ast.Typeswitch:
		annotateExpr(x.Operand)
		for _, c := range x.Cases {
			annotateExpr(c.Body)
		}
		annotateExpr(x.Default)
	case ast.Binary:
		annotateExpr(x.L)
		annotateExpr(x.R)
	case ast.Compare:
		annotateExpr(x.L)
		annotateExpr(x.R)
	case ast.Unary:
		annotateExpr(x.X)
	case ast.Range:
		annotateExpr(x.L)
		annotateExpr(x.R)
	case ast.InstanceOf:
		annotateExpr(x.X)
	case ast.TreatAs:
		annotateExpr(x.X)
	case ast.CastAs:
		annotateExpr(x.X)
	case ast.DirElem:
		for _, a := range x.Attrs {
			for _, p := range a.Pieces {
				annotateExpr(p)
			}
		}
		for _, c := range x.Content {
			annotateExpr(c)
		}
	case ast.CompConstructor:
		annotateExpr(x.NameExpr)
		annotateExpr(x.Content)
	case ast.Insert:
		annotateExpr(x.Source)
		annotateExpr(x.Target)
	case ast.Delete:
		annotateExpr(x.Target)
	case ast.Replace:
		annotateExpr(x.Target)
		annotateExpr(x.With)
	case ast.Rename:
		annotateExpr(x.Target)
		annotateExpr(x.NewName)
	case ast.Transform:
		for _, b := range x.Bindings {
			annotateExpr(b.In)
		}
		annotateExpr(x.Modify)
		annotateExpr(x.Return)
	case ast.Block:
		for _, s := range x.Stmts {
			annotateExpr(s)
		}
	case ast.BlockDecl:
		annotateExpr(x.Init)
	case ast.Assign:
		annotateExpr(x.Val)
	case ast.While:
		annotateExpr(x.Cond)
		annotateExpr(x.Body)
	case ast.Exit:
		annotateExpr(x.With)
	case ast.EventAttach:
		annotateExpr(x.Event)
		annotateExpr(x.Target)
	case ast.EventDetach:
		annotateExpr(x.Event)
		annotateExpr(x.Target)
	case ast.EventTrigger:
		annotateExpr(x.Event)
		annotateExpr(x.Target)
	case ast.SetStyle:
		annotateExpr(x.Prop)
		annotateExpr(x.Target)
		annotateExpr(x.Value)
	case ast.GetStyle:
		annotateExpr(x.Prop)
		annotateExpr(x.Target)
	case ast.FTContains:
		annotateExpr(x.X)
		annotateFT(x.Sel)
	}
}

func annotateFT(sel ast.FTSelection) {
	switch s := sel.(type) {
	case ast.FTWords:
		annotateExpr(s.Source)
	case ast.FTAnd:
		annotateFT(s.L)
		annotateFT(s.R)
	case ast.FTOr:
		annotateFT(s.L)
		annotateFT(s.R)
	case ast.FTNot:
		annotateFT(s.X)
	}
}
