package plan

import "repro/internal/xquery/ast"

// RewriteDescendantSteps merges the parser's expansion of "//" —
// descendant-or-self::node()/child::X — into a single descendant::X
// step. The rewrite regroups candidates from per-parent child lists
// into one global walk, which changes predicate positions, so it only
// applies when X's predicates are statically position-free
// (//div[1] keeps the two-step form; //div[@id] merges). Merged steps
// are planned on the spot: they are synthesised after Annotate ran
// over the module, and descendant::X is exactly the shape the
// name/id indexes serve, which is how //x becomes an index probe in
// both evaluators.
func RewriteDescendantSteps(steps []ast.Step) []ast.Step {
	rewritten := false
	for i := 0; i+1 < len(steps); i++ {
		if isAnyDescOrSelf(steps[i]) && isPositionFreeChildStep(steps[i+1]) {
			rewritten = true
			break
		}
	}
	if !rewritten {
		return steps
	}
	out := make([]ast.Step, 0, len(steps))
	for i := 0; i < len(steps); i++ {
		if i+1 < len(steps) && isAnyDescOrSelf(steps[i]) && isPositionFreeChildStep(steps[i+1]) {
			next := steps[i+1]
			merged := ast.Step{Axis: ast.AxisDescendant, Test: next.Test, Preds: next.Preds}
			PlanStep(&merged)
			out = append(out, merged)
			i++
			continue
		}
		out = append(out, steps[i])
	}
	return out
}

func isAnyDescOrSelf(s ast.Step) bool {
	return s.Primary == nil && s.Axis == ast.AxisDescendantOrSelf &&
		s.Test.AnyNode && len(s.Preds) == 0
}

func isPositionFreeChildStep(s ast.Step) bool {
	if s.Primary != nil || s.Axis != ast.AxisChild {
		return false
	}
	for _, p := range s.Preds {
		if !BooleanValuedPred(p) || ExprMentions(p, "position") || ExprMentions(p, "last") {
			return false
		}
	}
	return true
}

// BooleanValuedPred reports whether a predicate can statically never
// produce a numeric singleton (which would make it a positional test).
// Conservative: unknown shapes answer false.
func BooleanValuedPred(e ast.Expr) bool {
	switch x := e.(type) {
	case ast.Compare, ast.Quantified, ast.InstanceOf, ast.FTContains, ast.StringLit:
		return true
	case ast.CastAs:
		return x.Castable
	case ast.Binary:
		return x.Op == "and" || x.Op == "or"
	case ast.Path:
		// A path ending in an axis step yields nodes: EBV-by-existence.
		n := len(x.Steps)
		return n > 0 && x.Steps[n-1].Primary == nil
	default:
		return false
	}
}

// AnyExprMentions reports whether any expression in the list mentions
// a call to the given function (see ExprMentions).
func AnyExprMentions(es []ast.Expr, local string) bool {
	for _, e := range es {
		if ExprMentions(e, local) {
			return true
		}
	}
	return false
}

// ExprMentions reports whether an expression tree contains a function
// call with the given local name. It is deliberately conservative:
// unknown expression kinds answer true, so a caller relying on a false
// answer (to stream, to rewrite) can never be wrong.
func ExprMentions(e ast.Expr, local string) bool {
	switch x := e.(type) {
	case nil:
		return false
	case ast.StringLit, ast.IntLit, ast.DecimalLit, ast.DoubleLit,
		ast.VarRef, ast.ContextItem:
		return false
	case ast.SeqExpr:
		return AnyExprMentions(x.Items, local)
	case ast.Ordered:
		return ExprMentions(x.X, local)
	case ast.FuncCall:
		if x.Name.Local == local {
			return true
		}
		return AnyExprMentions(x.Args, local)
	case ast.If:
		return ExprMentions(x.Cond, local) || ExprMentions(x.Then, local) ||
			ExprMentions(x.Else, local)
	case ast.FLWOR:
		for _, c := range x.Clauses {
			if ExprMentions(c.In, local) {
				return true
			}
		}
		for _, o := range x.OrderBy {
			if ExprMentions(o.Key, local) {
				return true
			}
		}
		return ExprMentions(x.Where, local) || ExprMentions(x.Return, local)
	case ast.Quantified:
		for _, c := range x.Vars {
			if ExprMentions(c.In, local) {
				return true
			}
		}
		return ExprMentions(x.Satisfies, local)
	case ast.Typeswitch:
		if ExprMentions(x.Operand, local) || ExprMentions(x.Default, local) {
			return true
		}
		for _, c := range x.Cases {
			if ExprMentions(c.Body, local) {
				return true
			}
		}
		return false
	case ast.Binary:
		return ExprMentions(x.L, local) || ExprMentions(x.R, local)
	case ast.Compare:
		return ExprMentions(x.L, local) || ExprMentions(x.R, local)
	case ast.Range:
		return ExprMentions(x.L, local) || ExprMentions(x.R, local)
	case ast.Unary:
		return ExprMentions(x.X, local)
	case ast.InstanceOf:
		return ExprMentions(x.X, local)
	case ast.TreatAs:
		return ExprMentions(x.X, local)
	case ast.CastAs:
		return ExprMentions(x.X, local)
	case ast.Path:
		for _, s := range x.Steps {
			if ExprMentions(s.Primary, local) || AnyExprMentions(s.Preds, local) {
				return true
			}
		}
		return false
	case ast.DirElem:
		for _, a := range x.Attrs {
			if AnyExprMentions(a.Pieces, local) {
				return true
			}
		}
		return AnyExprMentions(x.Content, local)
	case ast.CompConstructor:
		return ExprMentions(x.NameExpr, local) || ExprMentions(x.Content, local)
	case ast.FTContains:
		return ExprMentions(x.X, local) || ftMentions(x.Sel, local)
	default:
		return true
	}
}

func ftMentions(sel ast.FTSelection, local string) bool {
	switch s := sel.(type) {
	case ast.FTWords:
		return ExprMentions(s.Source, local)
	case ast.FTAnd:
		return ftMentions(s.L, local) || ftMentions(s.R, local)
	case ast.FTOr:
		return ftMentions(s.L, local) || ftMentions(s.R, local)
	case ast.FTNot:
		return ftMentions(s.X, local)
	default:
		return true
	}
}
