package xquery

import (
	"strings"
	"testing"

	"repro/internal/xdm"
	"repro/internal/xquery/runtime"
)

func TestProfilerCollectsStatistics(t *testing.T) {
	e := New()
	prog := e.MustCompile(`sum(for $i in 1 to 50 return $i * 2)`)
	prof := runtime.NewProfiler()
	if _, err := prog.Run(RunConfig{Profiler: prof}); err != nil {
		t.Fatal(err)
	}
	if prof.Total() == 0 {
		t.Fatal("no statistics collected")
	}
	kinds := map[string]bool{}
	for _, entry := range prof.Entries() {
		kinds[entry.Kind] = true
		// A kind evaluated only through the streaming path (e.g. Range
		// as a for-clause domain) records items pulled instead of
		// eager evaluation counts; either way the entry is nonzero.
		if entry.Count <= 0 && entry.Items <= 0 {
			t.Errorf("entry %s has count %d and items %d", entry.Kind, entry.Count, entry.Items)
		}
	}
	for _, want := range []string{"FLWOR", "Binary", "VarRef", "FuncCall"} {
		if !kinds[want] {
			t.Errorf("missing profile entry %s (have %v)", want, kinds)
		}
	}
	out := prof.Format()
	if !strings.Contains(out, "FLWOR") || !strings.Contains(out, "count") {
		t.Errorf("Format output: %s", out)
	}
	// The binary multiplications inside the loop ran 50 times (at
	// least; plus the range).
	for _, entry := range prof.Entries() {
		if entry.Kind == "VarRef" && entry.Count < 50 {
			t.Errorf("VarRef count = %d", entry.Count)
		}
	}
}

func TestProfilerOffByDefault(t *testing.T) {
	e := New()
	prog := e.MustCompile(`1 + 1`)
	res, err := prog.Run(RunConfig{})
	if err != nil || res.Value[0].String() != "2" {
		t.Fatalf("run without profiler: %v %v", res, err)
	}
}

func TestFnID(t *testing.T) {
	doc := libraryDoc(t)
	tests := []struct {
		q    string
		want string
	}{
		{`string(id("b2")/title)`, "Design Patterns"},
		{`count(id(("b1", "b3")))`, "2"},
		{`count(id("missing"))`, "0"},
		{`count(id("b1 b2"))`, "2"}, // space-separated idrefs
		{`string(id("b3", //book[1])/title)`, "Real World Haskell"},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.q, doc)
		if err != nil {
			t.Errorf("query %q: %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("query %q = %q, want %q", tt.q, got, tt.want)
		}
	}
}

// TestProfilerUpdatePartitionCounters drives an updating run with a
// profiler attached and checks the engine wires the partitioner's
// statistics through: group counts accumulate and Format renders the
// update: lines.
func TestProfilerUpdatePartitionCounters(t *testing.T) {
	e := New()
	prog := e.MustCompile(`insert node <x/> into (//library)[1],
		rename node (//book)[1] as "tome"`)
	prof := runtime.NewProfiler()
	if _, err := prog.Run(RunConfig{ContextItem: xdm.NewNode(libraryDoc(t)), Profiler: prof}); err != nil {
		t.Fatal(err)
	}
	if got := prof.UpdatesFor("groups"); got < 1 {
		t.Errorf("UpdatesFor(groups) = %d, want >= 1", got)
	}
	out := prof.Format()
	if !strings.Contains(out, "update:groups") {
		t.Errorf("Format output missing update:groups lines:\n%s", out)
	}
	// The serial escape hatch bypasses the partitioner, so its counters
	// must stay untouched.
	serial := runtime.NewProfiler()
	if _, err := prog.Run(RunConfig{ContextItem: xdm.NewNode(libraryDoc(t)), Profiler: serial, SerialUpdates: true}); err != nil {
		t.Fatal(err)
	}
	if got := serial.UpdatesFor("groups"); got != 0 {
		t.Errorf("serial UpdatesFor(groups) = %d, want 0", got)
	}
}
