package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrBudgetExceeded is returned (wrapped) when a query exhausts its
// per-query execution budget. Hosts match it with errors.Is.
var ErrBudgetExceeded = errors.New("xquery: execution budget exceeded")

// Budget bounds one query evaluation: a step ceiling (expression
// evaluations plus items pulled through streaming iterators), an
// optional wall-clock deadline, and an optional context.Context whose
// cancellation aborts the run cooperatively. It is safe for concurrent
// use — a context may be shared with asynchronous behind-call
// goroutines.
//
// The browser host attaches a fresh Budget to every listener
// invocation, so a runaway listener query fails with ErrBudgetExceeded
// instead of freezing the page (the robustness knob the paper's "as
// fast as the hardware allows" goal implies for untrusted pages).
type Budget struct {
	steps    atomic.Int64
	maxSteps int64
	deadline time.Time
	done     <-chan struct{}
	ctxErr   func() error
	tripped  atomic.Bool
}

// deadlineCheckMask throttles time.Now and context polls: the deadline
// and the context's done channel are checked once every 256 steps.
const deadlineCheckMask = 0xff

// NewBudget builds a budget. maxSteps <= 0 means unlimited steps;
// timeout <= 0 means no deadline. Returns nil when both are unlimited,
// so a nil *Budget is the zero-cost "no limits" configuration.
func NewBudget(maxSteps int64, timeout time.Duration) *Budget {
	return NewBudgetContext(nil, maxSteps, timeout)
}

// NewBudgetContext builds a budget that additionally honors ctx:
// cancelling the context (or its deadline passing) aborts the run at
// the next poll with an error matching ctx.Err() via errors.Is. A nil
// ctx — or one that can never be cancelled — adds no overhead; when no
// limit is active at all the result is nil.
func NewBudgetContext(ctx context.Context, maxSteps int64, timeout time.Duration) *Budget {
	var done <-chan struct{}
	var ctxErr func() error
	if ctx != nil {
		if done = ctx.Done(); done != nil {
			ctxErr = ctx.Err
		}
	}
	if maxSteps <= 0 && timeout <= 0 && done == nil {
		return nil
	}
	b := &Budget{maxSteps: maxSteps, done: done, ctxErr: ctxErr}
	if timeout > 0 {
		b.deadline = time.Now().Add(timeout)
	}
	return b
}

// Step consumes one unit of budget and reports whether the budget is
// exhausted or the run's context has been cancelled. A nil budget never
// trips.
func (b *Budget) Step() error {
	if b == nil {
		return nil
	}
	n := b.steps.Add(1)
	if b.maxSteps > 0 && n > b.maxSteps {
		b.tripped.Store(true)
		return fmt.Errorf("%w: %d steps (limit %d)", ErrBudgetExceeded, n, b.maxSteps)
	}
	if n&deadlineCheckMask != 0 {
		return nil
	}
	if b.done != nil {
		select {
		case <-b.done:
			b.tripped.Store(true)
			return fmt.Errorf("xquery: run aborted after %d steps: %w", n, b.ctxErr())
		default:
		}
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		b.tripped.Store(true)
		return fmt.Errorf("%w: deadline passed after %d steps", ErrBudgetExceeded, n)
	}
	return nil
}

// Steps returns the number of steps consumed so far.
func (b *Budget) Steps() int64 {
	if b == nil {
		return 0
	}
	return b.steps.Load()
}

// Exceeded reports whether the budget has tripped.
func (b *Budget) Exceeded() bool { return b != nil && b.tripped.Load() }
