package runtime

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrBudgetExceeded is returned (wrapped) when a query exhausts its
// per-query execution budget. Hosts match it with errors.Is.
var ErrBudgetExceeded = errors.New("xquery: execution budget exceeded")

// Budget bounds one query evaluation: a step ceiling (expression
// evaluations plus items pulled through streaming iterators) and an
// optional wall-clock deadline. It is safe for concurrent use — a
// context may be shared with asynchronous behind-call goroutines.
//
// The browser host attaches a fresh Budget to every listener
// invocation, so a runaway listener query fails with ErrBudgetExceeded
// instead of freezing the page (the robustness knob the paper's "as
// fast as the hardware allows" goal implies for untrusted pages).
type Budget struct {
	steps    atomic.Int64
	maxSteps int64
	deadline time.Time
	tripped  atomic.Bool
}

// deadlineCheckMask throttles time.Now calls: the deadline is checked
// once every 256 steps.
const deadlineCheckMask = 0xff

// NewBudget builds a budget. maxSteps <= 0 means unlimited steps;
// timeout <= 0 means no deadline. Returns nil when both are unlimited,
// so a nil *Budget is the zero-cost "no limits" configuration.
func NewBudget(maxSteps int64, timeout time.Duration) *Budget {
	if maxSteps <= 0 && timeout <= 0 {
		return nil
	}
	b := &Budget{maxSteps: maxSteps}
	if timeout > 0 {
		b.deadline = time.Now().Add(timeout)
	}
	return b
}

// Step consumes one unit of budget and reports whether the budget is
// exhausted. A nil budget never trips.
func (b *Budget) Step() error {
	if b == nil {
		return nil
	}
	n := b.steps.Add(1)
	if b.maxSteps > 0 && n > b.maxSteps {
		b.tripped.Store(true)
		return fmt.Errorf("%w: %d steps (limit %d)", ErrBudgetExceeded, n, b.maxSteps)
	}
	if !b.deadline.IsZero() && n&deadlineCheckMask == 0 && time.Now().After(b.deadline) {
		b.tripped.Store(true)
		return fmt.Errorf("%w: deadline passed after %d steps", ErrBudgetExceeded, n)
	}
	return nil
}

// Steps returns the number of steps consumed so far.
func (b *Budget) Steps() int64 {
	if b == nil {
		return 0
	}
	return b.steps.Load()
}

// Exceeded reports whether the budget has tripped.
func (b *Budget) Exceeded() bool { return b != nil && b.tripped.Load() }
