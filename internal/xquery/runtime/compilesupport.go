package runtime

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
)

// This file is the walker's interface to the closure-compiled backend
// (internal/xquery/compile). The compiled backend keeps variables in
// flat frames indexed by slot, but bridges any expression shape it does
// not compile natively back into this package's tree walker; these
// helpers let it do that without reaching into unexported state, and
// with exactly the walker's semantics (same error strings, same depth
// accounting, same environment discipline).

// VarBinding is one variable visible to a bridged subexpression.
type VarBinding struct {
	Name dom.QName
	Val  xdm.Sequence
}

// WithBindings returns a context copy whose environment extends the
// receiver's with the given bindings, bound in order — so to reproduce
// lexical scoping, pass outermost first and the innermost binding wins
// lookup, exactly as nested withBinding calls would.
func (ctx *Context) WithBindings(bs []VarBinding) *Context {
	c := *ctx
	for _, b := range bs {
		c.env = c.env.bind(b.Name, b.Val)
	}
	return &c
}

// EBV computes the effective boolean value of e with the walker's
// streaming discipline (a lazy iterator unless NoStream), which the
// compiled backend must match for error-visibility parity.
func (ctx *Context) EBV(e ast.Expr) (bool, error) {
	return ctx.evalEBV(e)
}

// AtomizedOne evaluates e and atomizes to at most one item, exactly as
// the walker does for value comparisons and order keys.
func (ctx *Context) AtomizedOne(e ast.Expr) (xdm.Item, error) {
	return ctx.evalAtomizedOne(e)
}

// ExitValue unwraps the scripting "exit with" non-local return: ok
// reports whether err was an exit, and val is the exit value.
func (ctx *Context) ExitValue(err error) (val xdm.Sequence, ok bool) {
	if ex, isExit := err.(*exitError); isExit {
		return ex.val, true
	}
	return nil, false
}

// IsLoopControl reports whether err is the break/continue sentinel,
// which must not escape a function body.
func IsLoopControl(err error) bool {
	return err == errBreak || err == errContinue
}

// CalleeContext builds the evaluation context for a user-function body:
// a fresh frame rooted at the globals with the ambient focus installed,
// after checking the recursion limit. It mirrors the walker's
// compileUserFunction preamble exactly (the compiled backend shares the
// walker's depth counter, so mixed compiled/bridged recursion still
// hits one limit).
func (ctx *Context) CalleeContext(fname dom.QName) (*Context, error) {
	if ctx.depth >= maxCallDepth {
		return nil, fmt.Errorf("xquery: call depth limit exceeded in %s", fname)
	}
	callee := *ctx
	callee.depth = ctx.depth + 1
	callee.env = ctx.globals
	callee.Item = ctx.Ambient
	callee.Pos, callee.Size = 0, 0
	if callee.Item != nil {
		callee.Pos, callee.Size = 1, 1
	}
	return &callee, nil
}

// LoopControlInFunction wraps a break/continue sentinel escaping the
// named function, with the walker's message.
func LoopControlInFunction(err error, fname dom.QName) error {
	return fmt.Errorf("%w (in function %s)", err, fname)
}

// CompareOrderKeys compares two order-by keys under one order spec:
// -1, 0 or 1, with the walker's empty/NaN ordering and its error for
// incomparable keys.
func CompareOrderKeys(a, b xdm.Item, spec ast.OrderSpec) (int, error) {
	return compareOrderKeys(a, b, spec)
}
