package runtime

import (
	"fmt"
	"strings"

	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
)

// Node construction. Constructed elements copy their content (XQuery
// copy semantics): a node inserted into a constructor never aliases the
// source document.

func (ctx *Context) constructElement(e ast.DirElem) (*dom.Node, error) {
	el := dom.NewElement(e.Name)
	for _, a := range e.Attrs {
		val, err := ctx.attrValue(a.Pieces)
		if err != nil {
			return nil, err
		}
		if el.AttrNode(a.Name) != nil {
			return nil, fmt.Errorf("xquery: duplicate attribute %s", a.Name)
		}
		el.SetAttr(a.Name, val)
	}
	for _, c := range e.Content {
		if lit, ok := c.(ast.StringLit); ok {
			if err := el.AppendChild(dom.NewText(lit.Val)); err != nil {
				return nil, err
			}
			continue
		}
		s, err := ctx.Eval(c)
		if err != nil {
			return nil, err
		}
		if err := appendContent(el, s); err != nil {
			return nil, err
		}
	}
	el.NormalizeText()
	return el, nil
}

// attrValue concatenates the pieces of an attribute value template:
// literal runs verbatim, enclosed expressions atomized and
// space-joined.
func (ctx *Context) attrValue(pieces []ast.Expr) (string, error) {
	var b strings.Builder
	for _, piece := range pieces {
		if lit, ok := piece.(ast.StringLit); ok {
			b.WriteString(lit.Val)
			continue
		}
		s, err := ctx.Eval(piece)
		if err != nil {
			return "", err
		}
		for i, it := range xdm.AtomizeSequence(s) {
			if i > 0 {
				b.WriteString(" ")
			}
			b.WriteString(it.String())
		}
	}
	return b.String(), nil
}

// appendContent adds an evaluated sequence to an element being
// constructed: nodes are deep-copied, adjacent atomics become a single
// space-separated text node, attribute nodes become attributes (only
// legal before any other content).
func appendContent(el *dom.Node, s xdm.Sequence) error {
	var pendingText []string
	flush := func() error {
		if len(pendingText) == 0 {
			return nil
		}
		t := strings.Join(pendingText, " ")
		pendingText = nil
		return el.AppendChild(dom.NewText(t))
	}
	for _, it := range s {
		n, ok := xdm.IsNode(it)
		if !ok {
			pendingText = append(pendingText, it.String())
			continue
		}
		if err := flush(); err != nil {
			return err
		}
		switch n.Type {
		case dom.AttributeNode:
			if len(el.Children()) > 0 {
				return fmt.Errorf("xquery: attribute %s constructed after element content", n.Name)
			}
			if el.AttrNode(n.Name) != nil {
				return fmt.Errorf("xquery: duplicate attribute %s", n.Name)
			}
			el.SetAttr(n.Name, n.Data)
		case dom.DocumentNode:
			for _, c := range n.Children() {
				if err := el.AppendChild(c.Clone()); err != nil {
					return err
				}
			}
		default:
			if err := el.AppendChild(n.Clone()); err != nil {
				return err
			}
		}
	}
	return flush()
}

func (ctx *Context) evalCompConstructor(x ast.CompConstructor) (xdm.Sequence, error) {
	content := xdm.Sequence(nil)
	if x.Content != nil {
		var err error
		content, err = ctx.Eval(x.Content)
		if err != nil {
			return nil, err
		}
	}
	switch x.Kind {
	case xdm.TElementNode:
		name, err := ctx.constructorName(x)
		if err != nil {
			return nil, err
		}
		el := dom.NewElement(name)
		if err := appendContent(el, content); err != nil {
			return nil, err
		}
		el.NormalizeText()
		return xdm.Singleton(xdm.NewNode(el)), nil
	case xdm.TAttributeNode:
		name, err := ctx.constructorName(x)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.NewNode(dom.NewAttr(name, joinAtomized(content)))), nil
	case xdm.TTextNode:
		if len(content) == 0 {
			return nil, nil // text {()} is the empty sequence
		}
		return xdm.Singleton(xdm.NewNode(dom.NewText(joinAtomized(content)))), nil
	case xdm.TCommentNode:
		return xdm.Singleton(xdm.NewNode(dom.NewComment(joinAtomized(content)))), nil
	case xdm.TPINode:
		name, err := ctx.constructorName(x)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.NewNode(dom.NewPI(name.Local, joinAtomized(content)))), nil
	case xdm.TDocumentNode:
		doc := dom.NewDocument()
		// Reuse element content rules via a scratch element.
		scratch := dom.NewElement(dom.Name("x"))
		if err := appendContent(scratch, content); err != nil {
			return nil, err
		}
		scratch.NormalizeText()
		for _, c := range append([]*dom.Node(nil), scratch.Children()...) {
			if err := doc.AppendChild(c); err != nil {
				return nil, err
			}
		}
		return xdm.Singleton(xdm.NewNode(doc)), nil
	default:
		return nil, fmt.Errorf("xquery: unknown computed constructor kind %v", x.Kind)
	}
}

func (ctx *Context) constructorName(x ast.CompConstructor) (dom.QName, error) {
	if x.NameExpr == nil {
		return x.Name, nil
	}
	it, err := ctx.evalAtomizedOne(x.NameExpr)
	if err != nil {
		return dom.QName{}, err
	}
	if it == nil {
		return dom.QName{}, fmt.Errorf("xquery: computed constructor name is the empty sequence")
	}
	return lexicalQName(it)
}

// lexicalQName turns an atomic item into a QName: QName values pass
// through, strings are split on ":" (the prefix is kept lexical — our
// documents are predominantly in no namespace).
func lexicalQName(it xdm.Item) (dom.QName, error) {
	if q, ok := it.(xdm.QNameValue); ok {
		return q.Name, nil
	}
	s := strings.TrimSpace(it.String())
	if s == "" {
		return dom.QName{}, fmt.Errorf("xquery: empty name in constructor")
	}
	if i := strings.IndexByte(s, ':'); i > 0 {
		return dom.QName{Prefix: s[:i], Local: s[i+1:]}, nil
	}
	return dom.Name(s), nil
}

func joinAtomized(s xdm.Sequence) string {
	parts := make([]string, len(s))
	for i, it := range xdm.AtomizeSequence(s) {
		parts[i] = it.String()
	}
	return strings.Join(parts, " ")
}
