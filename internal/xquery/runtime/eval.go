package runtime

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
)

// Eval evaluates an expression in this context.
func (ctx *Context) Eval(e ast.Expr) (xdm.Sequence, error) {
	if err := ctx.Budget.Step(); err != nil {
		return nil, err
	}
	if ctx.Profiler != nil {
		start := time.Now()
		defer func() { ctx.Profiler.record(exprKind(e), time.Since(start)) }()
	}
	switch x := e.(type) {
	case ast.StringLit:
		return xdm.Singleton(xdm.String(x.Val)), nil
	case ast.IntLit:
		return xdm.Singleton(xdm.Integer(x.Val)), nil
	case ast.DecimalLit:
		d, err := xdm.DecimalFromString(x.Val)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(d), nil
	case ast.DoubleLit:
		return xdm.Singleton(xdm.Double(x.Val)), nil
	case ast.VarRef:
		if b := ctx.env.lookup(x.Name); b != nil {
			return b.Val, nil
		}
		return nil, fmt.Errorf("xquery: undefined variable $%s", x.Name)
	case ast.ContextItem:
		if ctx.Item == nil {
			return nil, fmt.Errorf("xquery: context item is undefined")
		}
		return xdm.Singleton(ctx.Item), nil
	case ast.SeqExpr:
		var out xdm.Sequence
		for _, it := range x.Items {
			s, err := ctx.Eval(it)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	case ast.Ordered:
		return ctx.Eval(x.X)
	case ast.Hoisted:
		// The walker does not memoise hoisted subexpressions; it only
		// has to evaluate them transparently (the compiled backend is
		// where hoisting pays off).
		return ctx.Eval(x.X)
	case ast.FuncCall:
		return ctx.evalCall(x)
	case ast.If:
		c, err := ctx.evalEBV(x.Cond)
		if err != nil {
			return nil, err
		}
		if c {
			return ctx.Eval(x.Then)
		}
		return ctx.Eval(x.Else)
	case ast.FLWOR:
		return ctx.evalFLWOR(x)
	case ast.Quantified:
		return ctx.evalQuantified(x)
	case ast.Typeswitch:
		return ctx.evalTypeswitch(x)
	case ast.Binary:
		return ctx.evalBinary(x)
	case ast.Compare:
		return ctx.evalCompare(x)
	case ast.Unary:
		return ctx.evalUnary(x)
	case ast.Range:
		return ctx.evalRange(x)
	case ast.InstanceOf:
		s, err := ctx.Eval(x.X)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Boolean(x.Type.Matches(s))), nil
	case ast.TreatAs:
		s, err := ctx.Eval(x.X)
		if err != nil {
			return nil, err
		}
		if !x.Type.Matches(s) {
			return nil, fmt.Errorf("xquery: value does not match type %s in treat as", x.Type)
		}
		return s, nil
	case ast.CastAs:
		return ctx.evalCast(x)
	case ast.Path:
		return ctx.evalPath(x)
	case ast.DirElem:
		n, err := ctx.constructElement(x)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.NewNode(n)), nil
	case ast.CompConstructor:
		return ctx.evalCompConstructor(x)
	case ast.Insert:
		return ctx.evalInsert(x)
	case ast.Delete:
		return ctx.evalDelete(x)
	case ast.Replace:
		return ctx.evalReplace(x)
	case ast.Rename:
		return ctx.evalRename(x)
	case ast.Transform:
		return ctx.evalTransform(x)
	case ast.Block:
		return ctx.evalBlock(x)
	case ast.BlockDecl:
		// A declaration outside a block body (e.g. a bare statement):
		// bind in place via the block machinery.
		return nil, fmt.Errorf("xquery: variable declaration outside a block")
	case ast.Assign:
		return ctx.evalAssign(x)
	case ast.While:
		return ctx.evalWhile(x)
	case ast.Exit:
		v, err := ctx.Eval(x.With)
		if err != nil {
			return nil, err
		}
		return nil, &exitError{val: v}
	case ast.Break:
		return nil, errBreak
	case ast.Continue:
		return nil, errContinue
	case ast.EventAttach:
		return ctx.evalEventAttach(x)
	case ast.EventDetach:
		return ctx.evalEventDetach(x)
	case ast.EventTrigger:
		return ctx.evalEventTrigger(x)
	case ast.SetStyle:
		return ctx.evalSetStyle(x)
	case ast.GetStyle:
		return ctx.evalGetStyle(x)
	case ast.FTContains:
		return ctx.evalFTContains(x)
	default:
		return nil, fmt.Errorf("xquery: unimplemented expression %T", e)
	}
}

// evalEBV computes the effective boolean value of an expression. The
// streaming form pulls at most two items: `if (//div) then ...` over a
// huge page inspects a single node.
func (ctx *Context) evalEBV(e ast.Expr) (bool, error) {
	if ctx.NoStream {
		s, err := ctx.Eval(e)
		if err != nil {
			return false, err
		}
		return xdm.EffectiveBooleanValue(s)
	}
	return xdm.EffectiveBooleanValueIter(ctx.EvalIter(e))
}

// evalAtomizedOne atomizes the value of e to zero-or-one atomic item.
func (ctx *Context) evalAtomizedOne(e ast.Expr) (xdm.Item, error) {
	s, err := ctx.Eval(e)
	if err != nil {
		return nil, err
	}
	return xdm.AtomizeSequence(s).AtMostOne()
}

// evalString atomizes the value of e to a required string.
func (ctx *Context) evalString(e ast.Expr) (string, error) {
	it, err := ctx.evalAtomizedOne(e)
	if err != nil {
		return "", err
	}
	if it == nil {
		return "", fmt.Errorf("xquery: expected a string, got the empty sequence")
	}
	return it.String(), nil
}

func (ctx *Context) evalCall(x ast.FuncCall) (xdm.Sequence, error) {
	f := ctx.Prog.Reg.Lookup(x.Name, len(x.Args))
	if f == nil {
		return nil, fmt.Errorf("%w %s/%d", ErrUnknownFunction, x.Name, len(x.Args))
	}
	if f.Stream != nil && !ctx.NoStream {
		iters := make([]xdm.Iter, len(x.Args))
		for i, a := range x.Args {
			iters[i] = ctx.EvalIter(a)
		}
		it, err := f.Stream(ctx, iters)
		if err != nil {
			return nil, err
		}
		return xdm.Materialize(it)
	}
	args := make([]xdm.Sequence, len(x.Args))
	for i, a := range x.Args {
		v, err := ctx.Eval(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return f.Invoke(ctx, args)
}

func (ctx *Context) evalFLWOR(f ast.FLWOR) (xdm.Sequence, error) {
	var out xdm.Sequence
	type tuple struct {
		c    *Context
		keys []xdm.Item // nil marks an empty key
	}
	var tuples []tuple
	ordered := len(f.OrderBy) > 0

	var rec func(c *Context, i int) error
	rec = func(c *Context, i int) error {
		if i == len(f.Clauses) {
			if f.Join != nil {
				// The optimizer moved this predicate out of Where into
				// the join annotation; the walker evaluates it in its
				// original place (leading conjunct) instead of hashing.
				keep, err := c.evalEBV(f.Join.Pred)
				if err != nil {
					return err
				}
				if !keep {
					return nil
				}
			}
			if f.Where != nil {
				keep, err := c.evalEBV(f.Where)
				if err != nil {
					return err
				}
				if !keep {
					return nil
				}
			}
			if ordered {
				t := tuple{c: c}
				for _, spec := range f.OrderBy {
					k, err := c.evalAtomizedOne(spec.Key)
					if err != nil {
						return err
					}
					t.keys = append(t.keys, k)
				}
				tuples = append(tuples, t)
				return nil
			}
			res, err := c.Eval(f.Return)
			if err != nil {
				return err
			}
			out = append(out, res...)
			return nil
		}
		cl := f.Clauses[i]
		if !cl.For {
			val, err := c.Eval(cl.In)
			if err != nil {
				return err
			}
			if cl.Type != nil {
				if val, err = ConvertValue(val, *cl.Type); err != nil {
					return fmt.Errorf("xquery: let $%s: %w", cl.Var.Local, err)
				}
			}
			return rec(c.withBinding(cl.Var, val), i+1)
		}
		// The binding sequence of a for clause streams: the return
		// clause runs as items arrive, so a consumer that stops early
		// (EBV, a positional filter on the FLWOR) stops the walk too.
		// Sequential (scripting) mode keeps the eager snapshot: the
		// body may apply updates between iterations, and the domain
		// must be fixed before the first one.
		var domain xdm.Iter
		if c.SnapshotApply != nil {
			val, err := c.Eval(cl.In)
			if err != nil {
				return err
			}
			domain = xdm.FromSlice(val)
		} else {
			domain = c.EvalIter(cl.In)
		}
		pos := 0
		for {
			item, ok, err := domain.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			pos++
			one := xdm.Singleton(item)
			if cl.Type != nil {
				if one, err = ConvertValue(one, *cl.Type); err != nil {
					return fmt.Errorf("xquery: for $%s: %w", cl.Var.Local, err)
				}
			}
			c2 := c.withBinding(cl.Var, one)
			if !cl.PosVar.IsZero() {
				c2 = c2.withBinding(cl.PosVar, xdm.Singleton(xdm.Integer(pos)))
			}
			if err := rec(c2, i+1); err != nil {
				return err
			}
		}
	}
	if err := rec(ctx, 0); err != nil {
		return nil, err
	}
	if !ordered {
		return out, nil
	}

	// Stable sort on the collected keys. Default empty order: least.
	var sortErr error
	sort.SliceStable(tuples, func(a, b int) bool {
		if sortErr != nil {
			return false
		}
		for k, spec := range f.OrderBy {
			ka, kb := tuples[a].keys[k], tuples[b].keys[k]
			c, err := compareOrderKeys(ka, kb, spec)
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	for _, t := range tuples {
		res, err := t.c.Eval(f.Return)
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
	}
	return out, nil
}

func compareOrderKeys(a, b xdm.Item, spec ast.OrderSpec) (int, error) {
	emptyLeast := true
	if spec.EmptySet {
		emptyLeast = spec.EmptyLeast
	}
	flip := func(c int) int {
		if spec.Descending {
			return -c
		}
		return c
	}
	switch {
	case a == nil && b == nil:
		return 0, nil
	case a == nil:
		if emptyLeast {
			return flip(-1), nil
		}
		return flip(1), nil
	case b == nil:
		if emptyLeast {
			return flip(1), nil
		}
		return flip(-1), nil
	}
	// Untyped order keys compare as strings.
	if a.Type() == xdm.TUntypedAtomic {
		a = xdm.String(a.String())
	}
	if b.Type() == xdm.TUntypedAtomic {
		b = xdm.String(b.String())
	}
	c, err := xdm.CompareForSort(a, b)
	if err != nil {
		return 0, fmt.Errorf("xquery: order by keys are not comparable: %w", err)
	}
	return flip(c), nil
}

// evalQuantified evaluates some/every. Binding sequences stream, so
// `some $d in //div satisfies ...` stops walking the page at the first
// witness (and `every` at the first counterexample).
func (ctx *Context) evalQuantified(q ast.Quantified) (xdm.Sequence, error) {
	var rec func(c *Context, i int) (bool, error)
	rec = func(c *Context, i int) (bool, error) {
		if i == len(q.Vars) {
			return c.evalEBV(q.Satisfies)
		}
		cl := q.Vars[i]
		var domain xdm.Iter
		if c.SnapshotApply != nil {
			val, err := c.Eval(cl.In)
			if err != nil {
				return false, err
			}
			domain = xdm.FromSlice(val)
		} else {
			domain = c.EvalIter(cl.In)
		}
		for {
			item, more, err := domain.Next()
			if err != nil {
				return false, err
			}
			if !more {
				return q.Every, nil
			}
			ok, err := rec(c.withBinding(cl.Var, xdm.Singleton(item)), i+1)
			if err != nil {
				return false, err
			}
			if ok && !q.Every {
				return true, nil
			}
			if !ok && q.Every {
				return false, nil
			}
		}
	}
	ok, err := rec(ctx, 0)
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(xdm.Boolean(ok)), nil
}

func (ctx *Context) evalTypeswitch(ts ast.Typeswitch) (xdm.Sequence, error) {
	op, err := ctx.Eval(ts.Operand)
	if err != nil {
		return nil, err
	}
	for _, c := range ts.Cases {
		if c.Type.Matches(op) {
			cc := ctx
			if !c.Var.IsZero() {
				cc = ctx.withBinding(c.Var, op)
			}
			return cc.Eval(c.Body)
		}
	}
	cc := ctx
	if !ts.DefaultVar.IsZero() {
		cc = ctx.withBinding(ts.DefaultVar, op)
	}
	return cc.Eval(ts.Default)
}

func (ctx *Context) evalBinary(x ast.Binary) (xdm.Sequence, error) {
	switch x.Op {
	case "or", "and":
		l, err := ctx.evalEBV(x.L)
		if err != nil {
			return nil, err
		}
		if x.Op == "or" && l {
			return xdm.Singleton(xdm.Boolean(true)), nil
		}
		if x.Op == "and" && !l {
			return xdm.Singleton(xdm.Boolean(false)), nil
		}
		r, err := ctx.evalEBV(x.R)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Boolean(r)), nil
	case "union", "intersect", "except":
		return ctx.evalNodeSetOp(x)
	default: // arithmetic
		l, err := ctx.evalAtomizedOne(x.L)
		if err != nil {
			return nil, err
		}
		r, err := ctx.evalAtomizedOne(x.R)
		if err != nil {
			return nil, err
		}
		if l == nil || r == nil {
			return nil, nil
		}
		res, err := xdm.Arithmetic(x.Op, l, r)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(res), nil
	}
}

func (ctx *Context) evalNodeSetOp(x ast.Binary) (xdm.Sequence, error) {
	l, err := ctx.evalNodeSeq(x.L, x.Op)
	if err != nil {
		return nil, err
	}
	r, err := ctx.evalNodeSeq(x.R, x.Op)
	if err != nil {
		return nil, err
	}
	inR := map[*dom.Node]bool{}
	for _, n := range r {
		inR[n] = true
	}
	var nodes []*dom.Node
	switch x.Op {
	case "union":
		nodes = append(nodes, l...)
		nodes = append(nodes, r...)
	case "intersect":
		for _, n := range l {
			if inR[n] {
				nodes = append(nodes, n)
			}
		}
	case "except":
		for _, n := range l {
			if !inR[n] {
				nodes = append(nodes, n)
			}
		}
	}
	return ctx.sortedNodeSequence(nodes), nil
}

func (ctx *Context) evalNodeSeq(e ast.Expr, op string) ([]*dom.Node, error) {
	s, err := ctx.Eval(e)
	if err != nil {
		return nil, err
	}
	nodes := make([]*dom.Node, 0, len(s))
	for _, it := range s {
		n, ok := xdm.IsNode(it)
		if !ok {
			return nil, fmt.Errorf("xquery: operand of %q contains a non-node item", op)
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}

// stampSortedNodeSequence deduplicates and document-orders a node list
// by comparison sort over the lazily re-stamped tree — the fallback
// when no fresh index is available (see Context.sortedNodeSequence in
// index.go, which is the entry point everything routes through).
func stampSortedNodeSequence(nodes []*dom.Node) xdm.Sequence {
	seen := make(map[*dom.Node]bool, len(nodes))
	uniq := nodes[:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.SliceStable(uniq, func(i, j int) bool {
		return dom.CompareOrder(uniq[i], uniq[j]) < 0
	})
	out := make(xdm.Sequence, len(uniq))
	for i, n := range uniq {
		out[i] = xdm.NewNode(n)
	}
	return out
}

func (ctx *Context) evalCompare(x ast.Compare) (xdm.Sequence, error) {
	switch x.Kind {
	case ast.GeneralComp:
		// General comparisons are existential: materialize the right
		// side once, stream the left, and stop at the first pair that
		// compares true.
		if ctx.NoStream {
			l, err := ctx.Eval(x.L)
			if err != nil {
				return nil, err
			}
			r, err := ctx.Eval(x.R)
			if err != nil {
				return nil, err
			}
			ok, err := xdm.GeneralCompare(x.Op, l, r)
			if err != nil {
				return nil, err
			}
			return xdm.Singleton(xdm.Boolean(ok)), nil
		}
		r, err := ctx.Eval(x.R)
		if err != nil {
			return nil, err
		}
		ok, err := xdm.GeneralCompareStream(x.Op, ctx.EvalIter(x.L), r)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Boolean(ok)), nil
	case ast.ValueComp:
		l, err := ctx.evalAtomizedOne(x.L)
		if err != nil {
			return nil, err
		}
		r, err := ctx.evalAtomizedOne(x.R)
		if err != nil {
			return nil, err
		}
		if l == nil || r == nil {
			return nil, nil
		}
		ok, err := xdm.CompareValues(x.Op, l, r)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Boolean(ok)), nil
	default: // node comparison
		l, err := ctx.evalSingleNodeOrEmpty(x.L)
		if err != nil {
			return nil, err
		}
		r, err := ctx.evalSingleNodeOrEmpty(x.R)
		if err != nil {
			return nil, err
		}
		if l == nil || r == nil {
			return nil, nil
		}
		var ok bool
		switch x.Op {
		case "is":
			ok = l == r
		case "<<":
			ok = dom.CompareOrder(l, r) < 0
		case ">>":
			ok = dom.CompareOrder(l, r) > 0
		}
		return xdm.Singleton(xdm.Boolean(ok)), nil
	}
}

func (ctx *Context) evalSingleNodeOrEmpty(e ast.Expr) (*dom.Node, error) {
	s, err := ctx.Eval(e)
	if err != nil {
		return nil, err
	}
	it, err := s.AtMostOne()
	if err != nil || it == nil {
		return nil, err
	}
	n, ok := xdm.IsNode(it)
	if !ok {
		return nil, fmt.Errorf("xquery: node comparison operand is not a node")
	}
	return n, nil
}

func (ctx *Context) evalUnary(x ast.Unary) (xdm.Sequence, error) {
	v, err := ctx.evalAtomizedOne(x.X)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	if x.Neg {
		r, err := xdm.Negate(v)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(r), nil
	}
	// Unary plus still requires a numeric operand.
	if v.Type() == xdm.TUntypedAtomic {
		c, err := xdm.Cast(v, xdm.TDouble)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(c), nil
	}
	if !v.Type().IsNumeric() {
		return nil, fmt.Errorf("xquery: unary + applied to %s", v.Type())
	}
	return xdm.Singleton(v), nil
}

func (ctx *Context) evalRange(x ast.Range) (xdm.Sequence, error) {
	l, err := ctx.evalAtomizedOne(x.L)
	if err != nil {
		return nil, err
	}
	r, err := ctx.evalAtomizedOne(x.R)
	if err != nil {
		return nil, err
	}
	if l == nil || r == nil {
		return nil, nil
	}
	li, err := xdm.Cast(l, xdm.TInteger)
	if err != nil {
		return nil, fmt.Errorf("xquery: range start: %w", err)
	}
	ri, err := xdm.Cast(r, xdm.TInteger)
	if err != nil {
		return nil, fmt.Errorf("xquery: range end: %w", err)
	}
	lo, hi := int64(li.(xdm.Integer)), int64(ri.(xdm.Integer))
	if lo > hi {
		return nil, nil
	}
	if hi-lo >= 10_000_000 {
		return nil, fmt.Errorf("xquery: range %d to %d is too large", lo, hi)
	}
	out := make(xdm.Sequence, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, xdm.Integer(v))
	}
	return out, nil
}

func (ctx *Context) evalCast(x ast.CastAs) (xdm.Sequence, error) {
	v, err := ctx.evalAtomizedOne(x.X)
	if err != nil {
		if x.Castable {
			return xdm.Singleton(xdm.Boolean(false)), nil
		}
		return nil, err
	}
	if v == nil {
		if x.Castable {
			return xdm.Singleton(xdm.Boolean(x.Optional)), nil
		}
		if x.Optional {
			return nil, nil
		}
		return nil, fmt.Errorf("xquery: cannot cast the empty sequence to %s", x.Type)
	}
	if x.Castable {
		return xdm.Singleton(xdm.Boolean(xdm.Castable(v, x.Type))), nil
	}
	c, err := xdm.Cast(v, x.Type)
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(c), nil
}

func (ctx *Context) evalFTContains(x ast.FTContains) (xdm.Sequence, error) {
	s, err := ctx.Eval(x.X)
	if err != nil {
		return nil, err
	}
	// Word sources resolve once, eagerly — before any item is matched
	// and identically on the index and scan paths, so indexed and
	// scan-only runs surface the same errors in the same order.
	sel, err := ctx.resolveFTSelection(x.Sel)
	if err != nil {
		return nil, err
	}
	for _, it := range s {
		if ctx.ftMatchItem(it, sel) {
			return xdm.Singleton(xdm.Boolean(true)), nil
		}
	}
	return xdm.Singleton(xdm.Boolean(false)), nil
}
