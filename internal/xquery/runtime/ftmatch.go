package runtime

import (
	"fmt"
	"sync"

	"repro/internal/dom"
	"repro/internal/fulltext"
	ftindex "repro/internal/fulltext/index"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
)

// This file is the runtime's full-text evaluation path: ftcontains
// resolved once per evaluation into an ftindex.Sel (word sources are
// ordinary expressions), then matched per item either through the
// per-document full-text index (internal/fulltext/index) or by
// tokenizing the item and scanning — with Context.NoIndex forcing the
// scan, which is the differential oracle's baseline. Matches record a
// TF-IDF score per node so ft:score can order results; the score is
// computed from the same quantities on both paths, which keeps indexed
// and scan-only runs byte-identical.

// ftState is the per-query full-text state shared by every context
// copy: the scores ftcontains recorded for matched nodes, and the scan
// side's memoized per-document token statistics (the index answers the
// same statistics from its postings).
type ftState struct {
	mu     sync.Mutex
	scores map[*dom.Node]float64
	stats  map[*dom.Node]*ftDocStats
}

func newFTState() *ftState { return &ftState{} }

func (s *ftState) setScore(n *dom.Node, v float64) {
	s.mu.Lock()
	if s.scores == nil {
		s.scores = map[*dom.Node]float64{}
	}
	s.scores[n] = v
	s.mu.Unlock()
}

// FTScoreFor returns the TF-IDF score the most recent matching
// ftcontains evaluation recorded for n, or 0 — the value of
// ft:score($n).
func (ctx *Context) FTScoreFor(n *dom.Node) float64 {
	s := ctx.ft
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scores[n]
}

// ftDocStats caches one document's scan-side scoring statistics: the
// full token stream and per-term occurrence counts, valid for one tree
// version.
type ftDocStats struct {
	version uint64
	mu      sync.Mutex
	tokens  []string
	counts  map[string]int
}

// docStats returns the scan-side statistics for root's tree,
// tokenizing the document once per version.
func (s *ftState) docStats(root *dom.Node) *ftDocStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stats == nil {
		s.stats = map[*dom.Node]*ftDocStats{}
	}
	st := s.stats[root]
	if v := root.Version(); st == nil || st.version != v {
		st = &ftDocStats{
			version: v,
			tokens:  fulltext.Tokenize(root.StringValue()),
			counts:  map[string]int{},
		}
		s.stats[root] = st
	}
	return st
}

// count answers a term's document-wide occurrence count, memoized.
func (st *ftDocStats) count(t ftindex.Term) int {
	key := termKey(t)
	st.mu.Lock()
	defer st.mu.Unlock()
	if c, ok := st.counts[key]; ok {
		return c
	}
	m := fulltext.WordMatcher(t.Word, t.Opts)
	c := 0
	for _, tok := range st.tokens {
		if m(tok) {
			c++
		}
	}
	st.counts[key] = c
	return c
}

// termKey folds a term's options into its memoization key.
func termKey(t ftindex.Term) string {
	b := byte('0')
	if t.Opts.Stemming {
		b |= 1
	}
	if t.Opts.CaseSensitive {
		b |= 2
	}
	if t.Opts.Wildcards {
		b |= 4
	}
	return string(b) + "\x00" + t.Word
}

// resolveFTSelection evaluates a selection's word sources into the
// AST-free form the index and the scan matcher share. Sources are
// evaluated eagerly — before any matching, on both paths — so indexed
// and scan-only runs surface exactly the same errors.
func (ctx *Context) resolveFTSelection(sel ast.FTSelection) (ftindex.Sel, error) {
	switch s := sel.(type) {
	case ast.FTWords:
		seq, err := ctx.Eval(s.Source)
		if err != nil {
			return nil, err
		}
		phrases := make([]string, len(seq))
		for i, it := range seq {
			phrases[i] = xdm.Atomize(it).String()
		}
		return ftindex.Words{
			Phrases: phrases,
			All:     s.AnyAll == "all",
			Opts: fulltext.Options{
				Stemming:      s.Opts.Stemming,
				CaseSensitive: s.Opts.CaseSensitive,
				Wildcards:     s.Opts.Wildcards,
			},
		}, nil
	case ast.FTAnd:
		l, err := ctx.resolveFTSelection(s.L)
		if err != nil {
			return nil, err
		}
		r, err := ctx.resolveFTSelection(s.R)
		if err != nil {
			return nil, err
		}
		return ftindex.And{L: l, R: r}, nil
	case ast.FTOr:
		l, err := ctx.resolveFTSelection(s.L)
		if err != nil {
			return nil, err
		}
		r, err := ctx.resolveFTSelection(s.R)
		if err != nil {
			return nil, err
		}
		return ftindex.Or{L: l, R: r}, nil
	case ast.FTNot:
		x, err := ctx.resolveFTSelection(s.X)
		if err != nil {
			return nil, err
		}
		return ftindex.Not{X: x}, nil
	default:
		return nil, fmt.Errorf("xquery: unknown full-text selection %T", sel)
	}
}

// ftMatchItem matches one item against a resolved selection: through
// the full-text index when the item is a node the index can answer
// for, otherwise by tokenizing and scanning. Matching nodes get their
// TF-IDF score recorded for ft:score.
func (ctx *Context) ftMatchItem(it xdm.Item, sel ftindex.Sel) bool {
	n, isNode := xdm.IsNode(it)
	if isNode && !ctx.NoIndex {
		if idx, built := ftindex.Probe(n); idx != nil {
			if built && ctx.Profiler != nil {
				ctx.Profiler.AddFT("builds", 1)
			}
			if m, ok := idx.Match(n, sel); ok {
				if ctx.Profiler != nil {
					ctx.Profiler.AddFT("probes", 1)
				}
				if m {
					ctx.recordScoreIndexed(idx, n, sel)
				}
				return m
			}
		}
	}
	tokens := fulltext.Tokenize(xdm.Atomize(it).String())
	m := ftindex.MatchTokens(tokens, sel)
	if m && isNode {
		ctx.recordScoreScan(n, tokens, sel)
	}
	return m
}

// recordScoreIndexed scores a matched node from the index, falling
// back to the scan computation if the index went stale between the
// match and the score.
func (ctx *Context) recordScoreIndexed(idx *ftindex.Doc, n *dom.Node, sel ftindex.Sel) {
	if ctx.ft == nil {
		return
	}
	if sc, ok := idx.Score(n, ftindex.ScoreTerms(sel)); ok {
		ctx.ft.setScore(n, sc)
		return
	}
	ctx.recordScoreScan(n, fulltext.Tokenize(n.StringValue()), sel)
}

// recordScoreScan scores a matched node from its own token list and
// the memoized document statistics — the identical formula, in the
// identical term order, as the index's Score.
func (ctx *Context) recordScoreScan(n *dom.Node, nodeTokens []string, sel ftindex.Sel) {
	if ctx.ft == nil {
		return
	}
	st := ctx.ft.docStats(n.Root())
	sc := ftindex.ScoreTokens(nodeTokens, len(st.tokens), ftindex.ScoreTerms(sel), st.count)
	ctx.ft.setScore(n, sc)
}
