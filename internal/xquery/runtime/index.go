package runtime

import (
	"repro/internal/dom"
	"repro/internal/dom/index"
	ftindex "repro/internal/fulltext/index"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/plan"
)

// This file is the runtime's side of the index/plan split: it turns
// the planner's Step.Access annotations into probes of the
// version-stamped per-document indexes (internal/dom/index), and uses
// a fresh index's pre numbering for merge-based document-order
// sorting. Context.NoIndex turns all of it off, which is both the
// benchmark baseline and the differential-test oracle.

// probeIndex answers an indexed step's candidate list from the
// per-document index: the name-list slice of the focus node's subtree
// for AccessIndexName, the id-pinned elements inside the subtree for
// AccessIndexID. ok is false when the step is unplanned, indexes are
// disabled, index.Probe's amortised-rebuild heuristic declines to
// build, or the index cannot answer (the caller then scans). The
// candidates are in document order — the same set and order the scan's
// walk-plus-node-test would produce for a name probe, and a subset the
// re-applied node test and predicates reduce to the same result for an
// id probe.
func (ctx *Context) probeIndex(n *dom.Node, step *ast.Step) ([]*dom.Node, bool) {
	if ctx.NoIndex || step.Primary != nil || step.Access == ast.AccessScan {
		return nil, false
	}
	orSelf := step.Axis == ast.AxisDescendantOrSelf
	if step.Access == ast.AccessFT {
		return ctx.probeFTIndex(n, step, orSelf)
	}
	idx := index.Probe(n)
	if idx == nil {
		return nil, false
	}
	var cand []*dom.Node
	var ok bool
	switch step.Access {
	case ast.AccessIndexName:
		space, local, okName := plan.ProbeName(step.Test)
		if !okName {
			return nil, false
		}
		cand, ok = idx.DescendantsByName(n, space, local, orSelf)
	case ast.AccessIndexID:
		cand, ok = idx.DescendantsByID(n, step.AccessID, orSelf)
	default:
		return nil, false
	}
	if !ok {
		return nil, false
	}
	if ctx.Profiler != nil {
		ctx.Profiler.recordIndexHits("Path", 1)
	}
	return cand, true
}

// probeFTIndex answers an AccessFT step's candidates from the
// full-text index: the planner guaranteed the first predicate is
// ". ftcontains <literal selection>", so the posting lists bound the
// nodes that can match it — intersected for ftand, unioned for ftor —
// and the evaluator re-applies the node test and every predicate (the
// ftcontains included) to each candidate, exactly as for the other
// probes. ok is false whenever the index cannot answer; the caller
// then scans the axis.
func (ctx *Context) probeFTIndex(n *dom.Node, step *ast.Step, orSelf bool) ([]*dom.Node, bool) {
	if len(step.Preds) == 0 {
		return nil, false
	}
	selAST, okSel := plan.FTProbeSelection(step.Preds[0])
	if !okSel {
		return nil, false
	}
	sel, err := ctx.resolveFTSelection(selAST)
	if err != nil {
		// Literal sources cannot fail to evaluate; treat a failure as
		// "cannot answer" and let the scan surface it.
		return nil, false
	}
	idx, built := ftindex.Probe(n)
	if built && ctx.Profiler != nil {
		ctx.Profiler.AddFT("builds", 1)
	}
	if idx == nil {
		return nil, false
	}
	cand, okC := idx.Candidates(n, sel, orSelf)
	if !okC {
		return nil, false
	}
	if ctx.Profiler != nil {
		ctx.Profiler.AddFT("probes", 1)
		ctx.Profiler.recordIndexHits("Path", 1)
	}
	return cand, true
}

// sortedNodeSequence deduplicates and document-orders a node list.
// When the nodes' tree already carries a fresh index, the sort is
// merge-based over the index's pre numbers: O(k) verification for
// already-ordered input (the common case for step results, which
// arrive ordered per focus node) and an integer sort otherwise —
// never the O(tree) re-stamp of the comparison path. It deliberately
// never builds an index (index.Fresh, not index.For): workloads that
// never probe one — mutation-heavy event dispatch, constructed
// content — keep the cheap stamp-and-sort.
func (ctx *Context) sortedNodeSequence(nodes []*dom.Node) xdm.Sequence {
	if !ctx.NoIndex && len(nodes) > 1 {
		if idx := index.Fresh(nodes[0]); idx != nil {
			if uniq, ok := idx.SortDedup(nodes); ok {
				out := make(xdm.Sequence, len(uniq))
				for i, n := range uniq {
					out[i] = xdm.NewNode(n)
				}
				return out
			}
		}
	}
	return stampSortedNodeSequence(nodes)
}

// SortedNodeSequence exposes the index-aware document-order sort to
// the function library: fn:id collects per-value id lists and merges
// them back to document order through it.
func (ctx *Context) SortedNodeSequence(nodes []*dom.Node) xdm.Sequence {
	return ctx.sortedNodeSequence(nodes)
}
