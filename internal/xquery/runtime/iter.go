package runtime

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/plan"
)

// This file is the lazy half of the evaluator: EvalIter produces a
// pull-based xdm.Iter for an expression, so consumers that only need a
// prefix of the result — fn:exists, positional predicates, quantifiers,
// general comparisons — stop pulling as soon as the answer is decided.
// Eval remains the materializing entry point; expressions with no
// streaming benefit fall back to a deferred Eval. Setting
// Context.NoStream forces the deferred-Eval fallback everywhere, which
// is the eager baseline the benchmarks compare against.

// fnSpace is the XPath functions namespace; the parser resolves
// unprefixed function names to it unless the prolog overrides the
// default function namespace.
const fnSpace = "http://www.w3.org/2005/xpath-functions"

// EvalIter evaluates an expression lazily. Errors are deferred to the
// first Next call, so building an iterator never fails. The result is
// wrapped in an ordered marker when it is statically known to be a
// document-ordered, duplicate-free node stream.
func (ctx *Context) EvalIter(e ast.Expr) xdm.Iter {
	it, ord := ctx.evalIter(e)
	if ctx.Profiler != nil {
		it = countItems(ctx.Profiler, exprKind(e), it)
	}
	if ord {
		return orderedIter{it}
	}
	return it
}

func (ctx *Context) evalIter(e ast.Expr) (xdm.Iter, bool) {
	if ctx.NoStream {
		return ctx.lazyEval(e), false
	}
	switch x := e.(type) {
	case ast.StringLit:
		return xdm.SingletonIter(xdm.String(x.Val)), false
	case ast.IntLit:
		return xdm.SingletonIter(xdm.Integer(x.Val)), false
	case ast.DoubleLit:
		return xdm.SingletonIter(xdm.Double(x.Val)), false
	case ast.VarRef:
		if b := ctx.env.lookup(x.Name); b != nil {
			return xdm.FromSlice(b.Val), false
		}
		return xdm.ErrIter(fmt.Errorf("xquery: undefined variable $%s", x.Name)), false
	case ast.ContextItem:
		if ctx.Item == nil {
			return xdm.ErrIter(fmt.Errorf("xquery: context item is undefined")), false
		}
		return xdm.SingletonIter(ctx.Item), false
	case ast.SeqExpr:
		return ctx.seqIter(x), false
	case ast.Ordered:
		return ctx.evalIter(x.X)
	case ast.Hoisted:
		return ctx.evalIter(x.X)
	case ast.If:
		return deferredIter(func() (xdm.Iter, error) {
			c, err := ctx.evalEBV(x.Cond)
			if err != nil {
				return nil, err
			}
			if c {
				return ctx.EvalIter(x.Then), nil
			}
			return ctx.EvalIter(x.Else), nil
		}), false
	case ast.Range:
		return ctx.rangeIter(x), false
	case ast.Path:
		return ctx.pathIter(x)
	case ast.FuncCall:
		f := ctx.Prog.Reg.Lookup(x.Name, len(x.Args))
		if f == nil || f.Stream == nil {
			return ctx.lazyEval(e), false
		}
		return deferredIter(func() (xdm.Iter, error) {
			iters := make([]xdm.Iter, len(x.Args))
			for i, a := range x.Args {
				iters[i] = ctx.EvalIter(a)
			}
			return f.Stream(ctx, iters)
		}), false
	default:
		return ctx.lazyEval(e), false
	}
}

// lazyEval defers a materializing Eval to the first pull.
func (ctx *Context) lazyEval(e ast.Expr) xdm.Iter {
	return deferredIter(func() (xdm.Iter, error) {
		s, err := ctx.Eval(e)
		if err != nil {
			return nil, err
		}
		return xdm.FromSlice(s), nil
	})
}

// deferredIter opens the underlying iterator on the first pull. An open
// error is sticky: every subsequent pull reports it again.
func deferredIter(open func() (xdm.Iter, error)) xdm.Iter {
	var it xdm.Iter
	return xdm.IterFunc(func() (xdm.Item, bool, error) {
		if it == nil {
			i, err := open()
			if err != nil {
				it = xdm.ErrIter(err)
				return nil, false, err
			}
			it = i
		}
		return it.Next()
	})
}

// orderedIter marks a stream as document-ordered, duplicate-free nodes.
// The path machinery streams a filter step's predicates only over
// ordered primaries (anything else is sorted eagerly first).
type orderedIter struct{ xdm.Iter }

func isOrdered(it xdm.Iter) bool { _, ok := it.(orderedIter); return ok }

// countItems feeds per-kind items-pulled counts to the profiler, which
// is how a profile proves early exit (items ≪ count × sequence size).
func countItems(p *Profiler, kind string, it xdm.Iter) xdm.Iter {
	return xdm.IterFunc(func() (xdm.Item, bool, error) {
		item, ok, err := it.Next()
		if ok {
			p.recordItems(kind, 1)
		}
		return item, ok, err
	})
}

func (ctx *Context) seqIter(x ast.SeqExpr) xdm.Iter {
	var cur xdm.Iter
	i := 0
	return xdm.IterFunc(func() (xdm.Item, bool, error) {
		for {
			if cur == nil {
				if i >= len(x.Items) {
					return nil, false, nil
				}
				cur = ctx.EvalIter(x.Items[i])
				i++
			}
			item, ok, err := cur.Next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				return item, true, nil
			}
			cur = nil
		}
	})
}

// rangeIter yields a range one integer at a time: (1 to 1000000)[2]
// allocates nothing beyond the two pulled items. The size cap matches
// the eager evalRange so behaviour is mode-independent.
func (ctx *Context) rangeIter(x ast.Range) xdm.Iter {
	var v, hi int64
	opened, done := false, false
	return xdm.IterFunc(func() (xdm.Item, bool, error) {
		if done {
			return nil, false, nil
		}
		if !opened {
			opened = true
			l, err := ctx.evalAtomizedOne(x.L)
			if err != nil {
				done = true
				return nil, false, err
			}
			r, err := ctx.evalAtomizedOne(x.R)
			if err != nil {
				done = true
				return nil, false, err
			}
			if l == nil || r == nil {
				done = true
				return nil, false, nil
			}
			li, err := xdm.Cast(l, xdm.TInteger)
			if err != nil {
				done = true
				return nil, false, fmt.Errorf("xquery: range start: %w", err)
			}
			ri, err := xdm.Cast(r, xdm.TInteger)
			if err != nil {
				done = true
				return nil, false, fmt.Errorf("xquery: range end: %w", err)
			}
			v, hi = int64(li.(xdm.Integer)), int64(ri.(xdm.Integer))
			if v <= hi && hi-v >= 10_000_000 {
				done = true
				return nil, false, fmt.Errorf("xquery: range %d to %d is too large", v, hi)
			}
		}
		if v > hi {
			done = true
			return nil, false, nil
		}
		if err := ctx.Budget.Step(); err != nil {
			done = true
			return nil, false, err
		}
		item := xdm.Integer(v)
		v++
		return item, true, nil
	})
}

// --- streaming paths ---------------------------------------------------------

// pathIter evaluates a path lazily. Steps stream as long as two
// invariants can be maintained without a sort: the focus stream is in
// document order without duplicates ("ordered"), and — where the axis
// needs it — no focus node is an ancestor of another ("disjoint"):
//
//   - self and attribute steps preserve order from any ordered input;
//   - child, descendant and descendant-or-self preserve order only from
//     disjoint input (overlapping subtrees would interleave);
//   - child and attribute outputs are disjoint again; descendant
//     outputs are ordered but overlapping.
//
// The first step that cannot stream becomes a barrier: everything
// before it is materialized and the remaining steps run through the
// eager per-step machinery (evalStep + finishStep), which sorts and
// deduplicates. Correctness therefore never depends on streamability.
//
// The second return value reports whether the result is statically
// known to be an ordered node stream.
func (ctx *Context) pathIter(p ast.Path) (xdm.Iter, bool) {
	steps := plan.RewriteDescendantSteps(p.Steps)
	var cur xdm.Iter
	ord, disjoint := true, true
	start := 0
	if p.Absolute {
		n, ok := xdm.IsNode(ctx.Item)
		if !ok {
			return xdm.ErrIter(fmt.Errorf("xquery: absolute path requires a node context item")), false
		}
		cur = xdm.SingletonIter(xdm.NewNode(n.Root()))
		if len(steps) == 0 {
			return cur, true
		}
	} else {
		if len(steps) == 0 {
			return xdm.ErrIter(fmt.Errorf("xquery: empty path")), false
		}
		if first := steps[0]; first.Primary != nil {
			last := len(steps) == 1
			cur, ord = ctx.filterStepIter(first, last)
			disjoint = false
			start = 1
		} else {
			if ctx.Item == nil {
				return xdm.ErrIter(fmt.Errorf("xquery: context item is undefined in a path step")), false
			}
			cur = xdm.SingletonIter(ctx.Item)
		}
	}
	for si := start; si < len(steps); si++ {
		step := steps[si]
		if step.Primary != nil || !ord || !axisStreamable(step.Axis, disjoint) {
			// Barrier: materialize the focus so far, then run the rest
			// of the path eagerly (sorted and deduplicated per step).
			rest := steps[si:]
			prev := cur
			lastIsAxis := steps[len(steps)-1].Primary == nil
			return deferredIter(func() (xdm.Iter, error) {
				in, err := xdm.Materialize(prev)
				if err != nil {
					return nil, err
				}
				out, err := ctx.continueSteps(in, rest)
				if err != nil {
					return nil, err
				}
				return xdm.FromSlice(out), nil
			}), lastIsAxis
		}
		cur = &stepStream{ctx: ctx, step: step, input: cur}
		ord, disjoint = true, axisOutDisjoint(step.Axis, disjoint)
	}
	return cur, ord
}

// axisStreamable reports whether an axis step preserves document order
// over an ordered input stream with the given disjointness.
func axisStreamable(a ast.Axis, disjoint bool) bool {
	switch a {
	case ast.AxisSelf, ast.AxisAttribute:
		return true
	case ast.AxisChild, ast.AxisDescendant, ast.AxisDescendantOrSelf:
		return disjoint
	default:
		return false
	}
}

// axisOutDisjoint reports whether the output of a streamed axis step is
// disjoint (no node an ancestor of another).
func axisOutDisjoint(a ast.Axis, inDisjoint bool) bool {
	switch a {
	case ast.AxisChild, ast.AxisAttribute:
		return true
	case ast.AxisSelf:
		return inDisjoint
	default: // descendant, descendant-or-self: subtrees overlap
		return false
	}
}

// filterStepIter evaluates a path-initial filter step (a primary
// expression plus predicates). Filter-step predicates apply in the
// primary's own order — the document-order sort happens after — so the
// predicate stages always stream over the primary: (1, err())[1] and
// (//div)[1] both pull exactly one item. An ordered primary needs no
// sort at all; anything else materializes only the (post-predicate)
// survivors for finishStep's sort/dedup/mixing rules. Predicates that
// mention last() need the primary's size and take the eager route.
func (ctx *Context) filterStepIter(step ast.Step, last bool) (xdm.Iter, bool) {
	prim := ctx.EvalIter(step.Primary)
	if !plan.AnyExprMentions(step.Preds, "last") {
		cur := xdm.Iter(prim)
		for _, pred := range step.Preds {
			cur = ctx.predStage(cur, pred)
		}
		if isOrdered(prim) {
			return cur, true
		}
		return deferredIter(func() (xdm.Iter, error) {
			res, err := xdm.Materialize(cur)
			if err != nil {
				return nil, err
			}
			out, err := ctx.finishStep(res, last)
			if err != nil {
				return nil, err
			}
			return xdm.FromSlice(out), nil
		}), false
	}
	return deferredIter(func() (xdm.Iter, error) {
		res, err := ctx.evalStep(step, ctx.Item, ctx.Pos, ctx.Size)
		if err != nil {
			return nil, err
		}
		out, err := ctx.finishStep(res, last)
		if err != nil {
			return nil, err
		}
		return xdm.FromSlice(out), nil
	}), false
}

// stepStream maps an ordered focus stream through one axis step,
// yielding each focus node's candidates lazily.
type stepStream struct {
	ctx   *Context
	step  ast.Step
	input xdm.Iter
	cur   xdm.Iter
}

func (s *stepStream) Next() (xdm.Item, bool, error) {
	for {
		if s.cur != nil {
			item, ok, err := s.cur.Next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				return item, true, nil
			}
			s.cur = nil
		}
		focus, ok, err := s.input.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		n, isNode := xdm.IsNode(focus)
		if !isNode {
			return nil, false, fmt.Errorf("xquery: axis step applied to an atomic value")
		}
		s.cur = s.ctx.stepCandidates(n, s.step)
	}
}

// stepCandidates returns one focus node's lazily filtered candidates:
// axis walk → node test → predicate stages. Every candidate pulled
// consumes one budget step, which is what bounds pure tree walks that
// never re-enter Eval. Both evaluators route every axis step through
// here, which makes it the single place the planner's access-method
// annotation is consulted: an indexed step replaces the axis walk with
// the (much smaller) probed candidate list, and the node test plus all
// predicates still re-apply, so a probe can never change a result —
// only skip the nodes a scan would have visited and rejected.
func (ctx *Context) stepCandidates(n *dom.Node, step ast.Step) xdm.Iter {
	var it xdm.Iter
	if cand, ok := ctx.probeIndex(n, &step); ok {
		i := 0
		it = xdm.IterFunc(func() (xdm.Item, bool, error) {
			for i < len(cand) {
				c := cand[i]
				i++
				if err := ctx.Budget.Step(); err != nil {
					return nil, false, err
				}
				if matchNodeTest(c, step.Test, step.Axis) {
					return xdm.NewNode(c), true, nil
				}
			}
			return nil, false, nil
		})
	} else {
		walk := newAxisWalker(n, step.Axis)
		it = xdm.IterFunc(func() (xdm.Item, bool, error) {
			for {
				c, ok := walk.next()
				if !ok {
					return nil, false, nil
				}
				if err := ctx.Budget.Step(); err != nil {
					return nil, false, err
				}
				if matchNodeTest(c, step.Test, step.Axis) {
					return xdm.NewNode(c), true, nil
				}
			}
		})
	}
	for _, pred := range step.Preds {
		it = ctx.predStage(it, pred)
	}
	return it
}

// predStage filters a stream through one predicate. Predicates that
// mention last() need the input size, so that stage materializes its
// input; everything else streams, and statically bounded positional
// predicates ([1], [position() le 3]) stop pulling input at the bound.
func (ctx *Context) predStage(in xdm.Iter, pred ast.Expr) xdm.Iter {
	if plan.ExprMentions(pred, "last") {
		return deferredIter(func() (xdm.Iter, error) {
			items, err := xdm.Materialize(in)
			if err != nil {
				return nil, err
			}
			kept, err := ctx.applyPredicates(items, []ast.Expr{pred}, false)
			if err != nil {
				return nil, err
			}
			return xdm.FromSlice(kept), nil
		})
	}
	bound, bounded := positionalBound(pred)
	return &predIter{ctx: ctx, in: in, pred: pred, bound: bound, bounded: bounded}
}

type predIter struct {
	ctx     *Context
	in      xdm.Iter
	pred    ast.Expr
	pos     int
	bound   int64
	bounded bool
	done    bool
}

func (p *predIter) Next() (xdm.Item, bool, error) {
	if p.done {
		return nil, false, nil
	}
	for {
		if p.bounded && int64(p.pos) >= p.bound {
			p.done = true
			return nil, false, nil
		}
		item, ok, err := p.in.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			p.done = true
			return nil, false, nil
		}
		p.pos++
		// Size 0: predicates that mention last() never reach this stage.
		c := p.ctx.withFocus(item, p.pos, 0)
		res, err := c.Eval(p.pred)
		if err != nil {
			return nil, false, err
		}
		keep, err := predicateTruth(res, p.pos)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return item, true, nil
		}
	}
}

// --- lazy axis walkers -------------------------------------------------------

type axisWalker interface{ next() (*dom.Node, bool) }

// newAxisWalker walks an axis lazily where the axis allows it (child,
// attribute, self, descendant, descendant-or-self, following) and
// falls back to the materialized axisNodes list — which is still in
// axis order — everywhere else.
func newAxisWalker(n *dom.Node, axis ast.Axis) axisWalker {
	switch axis {
	case ast.AxisChild:
		return &sliceWalker{nodes: n.Children()}
	case ast.AxisAttribute:
		return &sliceWalker{nodes: n.Attrs()}
	case ast.AxisSelf:
		return &sliceWalker{nodes: []*dom.Node{n}}
	case ast.AxisDescendant:
		w := &treeWalker{}
		w.pushChildren(n)
		return w
	case ast.AxisDescendantOrSelf:
		return &treeWalker{stack: []*dom.Node{n}}
	case ast.AxisFollowing:
		return newFollowingWalker(n)
	default:
		return &sliceWalker{nodes: axisNodes(n, axis)}
	}
}

type sliceWalker struct {
	nodes []*dom.Node
	i     int
}

func (w *sliceWalker) next() (*dom.Node, bool) {
	if w.i >= len(w.nodes) {
		return nil, false
	}
	n := w.nodes[w.i]
	w.i++
	return n, true
}

// treeWalker streams a subtree in document order with an explicit
// stack, visiting each node exactly once without materializing the
// descendant list.
type treeWalker struct {
	stack []*dom.Node
}

func (w *treeWalker) pushChildren(n *dom.Node) {
	ch := n.Children()
	for i := len(ch) - 1; i >= 0; i-- {
		w.stack = append(w.stack, ch[i])
	}
}

func (w *treeWalker) next() (*dom.Node, bool) {
	if len(w.stack) == 0 {
		return nil, false
	}
	n := w.stack[len(w.stack)-1]
	w.stack = w.stack[:len(w.stack)-1]
	w.pushChildren(n)
	return n, true
}

// followingWalker streams the following axis lazily: for every
// ancestor-or-self of the origin (inner to outer), the subtrees of its
// following siblings, left to right — which is exactly document order
// past the origin's subtree. Emitting through the walker replaced the
// old collectDescendants materialization, which allocated the full
// descendant list per sibling even when the step's node test was about
// to reject almost all of it.
type followingWalker struct {
	anc *dom.Node // ancestor-or-self chain cursor
	sib *dom.Node // next following sibling of anc to expand
	tw  treeWalker
}

func newFollowingWalker(n *dom.Node) *followingWalker {
	return &followingWalker{anc: n, sib: n.NextSibling()}
}

func (w *followingWalker) next() (*dom.Node, bool) {
	for {
		if x, ok := w.tw.next(); ok {
			return x, true
		}
		if w.sib == nil {
			if w.anc == nil {
				return nil, false
			}
			w.anc = w.anc.Parent()
			if w.anc == nil {
				return nil, false
			}
			w.sib = w.anc.NextSibling()
			continue
		}
		w.tw.stack = append(w.tw.stack, w.sib)
		w.sib = w.sib.NextSibling()
	}
}

// --- static analysis ---------------------------------------------------------
//
// The //-rewrite and the conservative expression predicates
// (ExprMentions, BooleanValuedPred) moved to internal/xquery/plan,
// where the path planner and the analyzer's cost model share them.
// What remains here is streaming-specific: the positional-bound
// detection that lets predicate stages stop pulling input.

// positionalBound statically bounds the input positions a predicate can
// accept: [N] and [position() < N] shapes never accept an item past the
// bound, letting predicate stages stop pulling. ok=false is unbounded.
func positionalBound(pred ast.Expr) (int64, bool) {
	switch x := pred.(type) {
	case ast.IntLit:
		if x.Val < 1 {
			return 0, true // [0]: no position matches
		}
		return x.Val, true
	case ast.Compare:
		if n, ok := intLitVal(x.R); ok && isPositionCall(x.L) {
			switch x.Op {
			case "<", "lt":
				return clampBound(n - 1), true
			case "<=", "le", "=", "eq":
				return clampBound(n), true
			}
		}
		if n, ok := intLitVal(x.L); ok && isPositionCall(x.R) {
			switch x.Op {
			case ">", "gt":
				return clampBound(n - 1), true
			case ">=", "ge", "=", "eq":
				return clampBound(n), true
			}
		}
	}
	return 0, false
}

func clampBound(n int64) int64 {
	if n < 0 {
		return 0
	}
	return n
}

func isPositionCall(e ast.Expr) bool {
	f, ok := e.(ast.FuncCall)
	return ok && len(f.Args) == 0 && f.Name.Local == "position" &&
		(f.Name.Space == fnSpace || f.Name.Space == "")
}

func intLitVal(e ast.Expr) (int64, bool) {
	l, ok := e.(ast.IntLit)
	return l.Val, ok
}
