package runtime

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/plan"
)

// evalPath evaluates a path expression. Each step maps every item of the
// previous step's result through an axis or filter expression; node
// results are deduplicated and returned in document order, atomic
// results are only allowed from the final step.
//
// The default route is the streaming pipeline in iter.go (materialized
// at the end); steps that cannot stream fall back to the eager per-step
// machinery below, which is also the whole story under NoStream.
func (ctx *Context) evalPath(p ast.Path) (xdm.Sequence, error) {
	if !ctx.NoStream {
		it, _ := ctx.pathIter(p)
		return xdm.Materialize(it)
	}
	return ctx.evalPathEager(p)
}

func (ctx *Context) evalPathEager(p ast.Path) (xdm.Sequence, error) {
	// The //-rewrite applies here too: the merged descendant::X step is
	// position-safe by construction and is the shape the planner's
	// name/id indexes serve, so //x is an index probe in both
	// evaluators (and one step instead of two even when scanning).
	steps := plan.RewriteDescendantSteps(p.Steps)
	var current xdm.Sequence
	if p.Absolute {
		n, ok := xdm.IsNode(ctx.Item)
		if !ok {
			return nil, fmt.Errorf("xquery: absolute path requires a node context item")
		}
		current = xdm.Singleton(xdm.NewNode(n.Root()))
		if len(steps) == 0 {
			return current, nil
		}
	} else {
		if len(steps) == 0 {
			return nil, fmt.Errorf("xquery: empty path")
		}
		// The first step evaluates against the current focus directly.
		first, err := ctx.evalStep(steps[0], ctx.Item, ctx.Pos, ctx.Size)
		if err != nil {
			return nil, err
		}
		res, err := ctx.finishStep(first, len(steps) == 1)
		if err != nil {
			return nil, err
		}
		return ctx.continueSteps(res, steps[1:])
	}
	return ctx.continueSteps(current, steps)
}

func (ctx *Context) continueSteps(current xdm.Sequence, steps []ast.Step) (xdm.Sequence, error) {
	for si, step := range steps {
		var results xdm.Sequence
		size := len(current)
		for i, item := range current {
			r, err := ctx.evalStep(step, item, i+1, size)
			if err != nil {
				return nil, err
			}
			results = append(results, r...)
		}
		res, err := ctx.finishStep(results, si == len(steps)-1)
		if err != nil {
			return nil, err
		}
		current = res
	}
	return current, nil
}

// finishStep enforces the node/atomic mixing rules and orders node
// results. It is a Context method so the document-order sort can use
// the index's pre numbers (and honour NoIndex).
func (ctx *Context) finishStep(results xdm.Sequence, last bool) (xdm.Sequence, error) {
	nodes := make([]*dom.Node, 0, len(results))
	atomics := 0
	for _, it := range results {
		if n, ok := xdm.IsNode(it); ok {
			nodes = append(nodes, n)
		} else {
			atomics++
		}
	}
	switch {
	case atomics == 0:
		return ctx.sortedNodeSequence(nodes), nil
	case len(nodes) > 0:
		return nil, fmt.Errorf("xquery: path step mixes nodes and atomic values")
	case !last:
		return nil, fmt.Errorf("xquery: intermediate path step returned atomic values")
	default:
		return results, nil
	}
}

// evalStep evaluates one step for one focus item.
func (ctx *Context) evalStep(step ast.Step, item xdm.Item, pos, size int) (xdm.Sequence, error) {
	if step.Primary != nil {
		c := ctx.withFocus(item, pos, size)
		res, err := c.Eval(step.Primary)
		if err != nil {
			return nil, err
		}
		return c.applyPredicates(res, step.Preds, false)
	}
	if item == nil {
		return nil, fmt.Errorf("xquery: context item is undefined in a path step")
	}
	n, ok := xdm.IsNode(item)
	if !ok {
		return nil, fmt.Errorf("xquery: axis step applied to an atomic value")
	}
	// stepCandidates walks the axis lazily — in axis order, which is
	// proximity order for reverse axes, so predicate positions are
	// simply 1..n (the XPath "reverse axes count backwards" rule is
	// encoded in the iteration order) and positional predicates stop
	// the walk at their bound; predicates that mention last() are
	// materialized inside their stage. Document order is restored by
	// finishStep.
	return xdm.Materialize(ctx.stepCandidates(n, step))
}

// applyPredicates filters a sequence through predicates.
func (ctx *Context) applyPredicates(items xdm.Sequence, preds []ast.Expr, reverse bool) (xdm.Sequence, error) {
	for _, pred := range preds {
		var kept xdm.Sequence
		size := len(items)
		for i, item := range items {
			pos := i + 1
			if reverse {
				pos = size - i
			}
			c := ctx.withFocus(item, pos, size)
			res, err := c.Eval(pred)
			if err != nil {
				return nil, err
			}
			keep, err := predicateTruth(res, pos)
			if err != nil {
				return nil, err
			}
			if keep {
				kept = append(kept, item)
			}
		}
		items = kept
	}
	return items, nil
}

// predicateTruth evaluates a predicate result: a singleton numeric is a
// position test, anything else takes its effective boolean value.
func predicateTruth(res xdm.Sequence, pos int) (bool, error) {
	if len(res) == 1 && res[0].Type().IsNumeric() {
		eq, err := xdm.CompareValues("eq", res[0], xdm.Integer(pos))
		if err != nil {
			return false, err
		}
		return eq, nil
	}
	return xdm.EffectiveBooleanValue(res)
}

// axisNodes returns the nodes on the axis from n, in axis order
// (document order for forward axes, reverse document order for reverse
// axes). The descendant, descendant-or-self and following axes are
// absent: newAxisWalker streams them through treeWalker and
// followingWalker instead of materializing descendant lists (the old
// collectDescendants allocated the full list per call even when the
// node test was about to discard it).
func axisNodes(n *dom.Node, axis ast.Axis) []*dom.Node {
	switch axis {
	case ast.AxisChild:
		return n.Children()
	case ast.AxisAttribute:
		return n.Attrs()
	case ast.AxisSelf:
		return []*dom.Node{n}
	case ast.AxisParent:
		if p := n.Parent(); p != nil {
			return []*dom.Node{p}
		}
		return nil
	case ast.AxisAncestor:
		var out []*dom.Node
		for a := n.Parent(); a != nil; a = a.Parent() {
			out = append(out, a)
		}
		return out
	case ast.AxisAncestorOrSelf:
		out := []*dom.Node{n}
		for a := n.Parent(); a != nil; a = a.Parent() {
			out = append(out, a)
		}
		return out
	case ast.AxisFollowingSibling:
		var out []*dom.Node
		for s := n.NextSibling(); s != nil; s = s.NextSibling() {
			out = append(out, s)
		}
		return out
	case ast.AxisPrecedingSibling:
		var out []*dom.Node
		for s := n.PrevSibling(); s != nil; s = s.PrevSibling() {
			out = append(out, s)
		}
		return out
	case ast.AxisPreceding:
		// Nodes before n excluding ancestors and attributes, in reverse
		// document order.
		var fwd []*dom.Node
		var anc []*dom.Node
		for a := n; a != nil; a = a.Parent() {
			anc = append(anc, a)
		}
		isAnc := func(x *dom.Node) bool {
			for _, a := range anc {
				if a == x {
					return true
				}
			}
			return false
		}
		// Walk the whole tree in document order and keep what precedes n
		// and is not an ancestor.
		root := n.Root()
		root.Walk(func(x *dom.Node) bool {
			if x == n {
				return false
			}
			if !isAnc(x) {
				fwd = append(fwd, x)
			}
			return true
		})
		out := make([]*dom.Node, 0, len(fwd))
		for i := len(fwd) - 1; i >= 0; i-- {
			out = append(out, fwd[i])
		}
		return out
	default:
		return nil
	}
}

// matchNodeTest applies a node test. The principal node kind is
// attribute for the attribute axis and element otherwise.
func matchNodeTest(n *dom.Node, t ast.NodeTest, axis ast.Axis) bool {
	if t.AnyNode {
		return true
	}
	if t.IsName {
		principal := dom.ElementNode
		if axis == ast.AxisAttribute {
			principal = dom.AttributeNode
		}
		if n.Type != principal {
			return false
		}
		if !t.AnySpace && n.Name.Space != t.Name.Space {
			return false
		}
		return t.Name.Local == "*" || n.Name.Local == t.Name.Local
	}
	switch t.Kind {
	case xdm.TTextNode:
		return n.Type == dom.TextNode
	case xdm.TCommentNode:
		return n.Type == dom.CommentNode
	case xdm.TDocumentNode:
		return n.Type == dom.DocumentNode
	case xdm.TPINode:
		if n.Type != dom.ProcessingInstructionNode {
			return false
		}
		return t.PITarget == "" || n.Name.Local == t.PITarget
	case xdm.TElementNode, xdm.TAttributeNode:
		want := dom.ElementNode
		if t.Kind == xdm.TAttributeNode {
			want = dom.AttributeNode
		}
		if n.Type != want {
			return false
		}
		if t.HasName && t.KindName.Local != "*" {
			return n.Name.Matches(t.KindName)
		}
		return true
	default:
		return false
	}
}
