package runtime

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/xquery/ast"
)

// Profiler collects per-expression-kind evaluation counts and wall
// time — the "performance profiler" the paper's §7 lists as future
// tooling work. Attach one to a Context; collection is off (zero cost)
// when the pointer is nil.
type Profiler struct {
	mu       sync.Mutex
	entries  map[string]*ProfileEntry
	rewrites map[string]int64
	updates  map[string]int64
	ft       map[string]int64
}

// ProfileEntry accumulates one expression kind's statistics. Items
// counts items pulled through the kind's streaming iterators: when a
// query early-exits, Items stays far below the size of the sequences
// it ranged over, which is how a profile proves lazy evaluation paid
// off. IndexHits counts path steps answered from a per-document index
// instead of an axis walk (see internal/dom/index): a descendant-heavy
// query that planned well shows hits here and correspondingly few
// items pulled.
type ProfileEntry struct {
	Kind      string
	Count     int64
	Compiled  int64 // evaluations served by a compiled closure
	Items     int64
	IndexHits int64
	Time      time.Duration
}

// NewProfiler creates an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{entries: map[string]*ProfileEntry{}}
}

func (p *Profiler) record(kind string, d time.Duration) {
	p.mu.Lock()
	e := p.entries[kind]
	if e == nil {
		e = &ProfileEntry{Kind: kind}
		p.entries[kind] = e
	}
	e.Count++
	e.Time += d
	p.mu.Unlock()
}

// RecordCompiled counts one evaluation of an expression kind performed
// by a compiled closure (internal/xquery/compile): it contributes to
// Count like a walked evaluation and additionally to Compiled, so a
// profile shows how much of a query ran natively versus bridged to the
// walker. Compiled closures do not time themselves — per-node clock
// reads are most of what compilation removes.
func (p *Profiler) RecordCompiled(kind string) {
	p.mu.Lock()
	e := p.entries[kind]
	if e == nil {
		e = &ProfileEntry{Kind: kind}
		p.entries[kind] = e
	}
	e.Count++
	e.Compiled++
	p.mu.Unlock()
}

// CompiledFor returns the compiled-evaluation count for one expression
// kind.
func (p *Profiler) CompiledFor(kind string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.entries[kind]; e != nil {
		return e.Compiled
	}
	return 0
}

// AddRewrites adds to a named optimizer-rewrite counter. The engine
// credits the per-program rewrite statistics ("pushdown", "hoist",
// "join", "fold") here once per run, so a profile reports which
// algebraic rewrites shaped the plan it measured.
func (p *Profiler) AddRewrites(kind string, n int64) {
	if n == 0 {
		return
	}
	p.mu.Lock()
	if p.rewrites == nil {
		p.rewrites = map[string]int64{}
	}
	p.rewrites[kind] += n
	p.mu.Unlock()
}

// RewritesFor returns a named optimizer-rewrite counter (see
// AddRewrites).
func (p *Profiler) RewritesFor(kind string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rewrites[kind]
}

// AddUpdates adds to a named update-partition counter. The engine
// credits each run's PUL partition outcome ("groups", "eliminated",
// "parallel") here, so a profile reports how the update-independence
// analysis split and pruned the run's pending updates.
func (p *Profiler) AddUpdates(kind string, n int64) {
	if n == 0 {
		return
	}
	p.mu.Lock()
	if p.updates == nil {
		p.updates = map[string]int64{}
	}
	p.updates[kind] += n
	p.mu.Unlock()
}

// UpdatesFor returns a named update-partition counter (see AddUpdates).
func (p *Profiler) UpdatesFor(kind string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.updates[kind]
}

// AddFT adds to a named full-text counter. The evaluator credits
// "probes" for ftcontains selections answered from a full-text index
// and "builds" for index constructions its probes triggered, so a
// profile shows whether a full-text workload ran indexed or kept
// falling back to scans.
func (p *Profiler) AddFT(kind string, n int64) {
	if n == 0 {
		return
	}
	p.mu.Lock()
	if p.ft == nil {
		p.ft = map[string]int64{}
	}
	p.ft[kind] += n
	p.mu.Unlock()
}

// FTFor returns a named full-text counter (see AddFT).
func (p *Profiler) FTFor(kind string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ft[kind]
}

// recordItems adds to the items-pulled counter of an expression kind.
func (p *Profiler) recordItems(kind string, n int64) {
	p.mu.Lock()
	e := p.entries[kind]
	if e == nil {
		e = &ProfileEntry{Kind: kind}
		p.entries[kind] = e
	}
	e.Items += n
	p.mu.Unlock()
}

// recordIndexHits adds to the index-hit counter of an expression kind.
func (p *Profiler) recordIndexHits(kind string, n int64) {
	p.mu.Lock()
	e := p.entries[kind]
	if e == nil {
		e = &ProfileEntry{Kind: kind}
		p.entries[kind] = e
	}
	e.IndexHits += n
	p.mu.Unlock()
}

// IndexHitsFor returns the index hits recorded for one expression
// kind.
func (p *Profiler) IndexHitsFor(kind string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.entries[kind]; e != nil {
		return e.IndexHits
	}
	return 0
}

// Items returns the items pulled for one expression kind.
func (p *Profiler) ItemsFor(kind string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.entries[kind]; e != nil {
		return e.Items
	}
	return 0
}

// Entries returns the collected statistics sorted by total time,
// descending.
func (p *Profiler) Entries() []ProfileEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ProfileEntry, 0, len(p.entries))
	for _, e := range p.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time > out[j].Time })
	return out
}

// Total returns the aggregate evaluation count.
func (p *Profiler) Total() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, e := range p.entries {
		n += e.Count
	}
	return n
}

// Format renders a report (cmd/xq -profile). Column legend: count is
// evaluations (walked or compiled), compiled is the subset served by a
// compiled closure, items is items pulled through streaming iterators,
// idxhits is path steps answered from a per-document index instead of
// an axis walk. Optimizer rewrite counters follow when any is nonzero.
func (p *Profiler) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %10s %10s %10s %10s %14s\n",
		"expression", "count", "compiled", "items", "idxhits", "time")
	for _, e := range p.Entries() {
		fmt.Fprintf(&b, "%-20s %10d %10d %10d %10d %14s\n",
			e.Kind, e.Count, e.Compiled, e.Items, e.IndexHits, e.Time)
	}
	p.mu.Lock()
	kinds := make([]string, 0, len(p.rewrites))
	for k := range p.rewrites {
		kinds = append(kinds, k)
	}
	p.mu.Unlock()
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "rewrite:%-12s %10d\n", k, p.RewritesFor(k))
	}
	p.mu.Lock()
	ukinds := make([]string, 0, len(p.updates))
	for k := range p.updates {
		ukinds = append(ukinds, k)
	}
	p.mu.Unlock()
	sort.Strings(ukinds)
	for _, k := range ukinds {
		fmt.Fprintf(&b, "update:%-13s %10d\n", k, p.UpdatesFor(k))
	}
	p.mu.Lock()
	fkinds := make([]string, 0, len(p.ft))
	for k := range p.ft {
		fkinds = append(fkinds, k)
	}
	p.mu.Unlock()
	sort.Strings(fkinds)
	for _, k := range fkinds {
		fmt.Fprintf(&b, "ft:%-17s %10d\n", k, p.FTFor(k))
	}
	return b.String()
}

// exprKind names an AST node for profiling.
func exprKind(e ast.Expr) string {
	s := fmt.Sprintf("%T", e)
	if i := strings.IndexByte(s, '.'); i >= 0 {
		s = s[i+1:]
	}
	return s
}
