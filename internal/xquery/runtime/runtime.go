// Package runtime evaluates compiled XQuery modules: the dynamic
// context, variable environments, the function registry, and a
// tree-walking evaluator for the full extended dialect (XQuery 1.0 +
// Update Facility + Scripting + full-text + the paper's browser
// extensions). The runtime is host-agnostic: browser behaviour enters
// through the Hooks interface and the DocResolver, which is how the
// same engine runs in the browser plug-in, on the server (internal/rest)
// and on the command line (cmd/xq) — the "XQuery on all tiers" property
// the paper argues for.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/dom"
	"repro/internal/faultpoint"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/plan"
	"repro/internal/xquery/update"
)

// Sentinel errors for the resolver machinery; applications match them
// with errors.Is (the facade re-exports them).
var (
	// ErrNoResolver reports a module import with no resolver installed.
	ErrNoResolver = errors.New("xquery: no module resolver installed")
	// ErrUnknownFunction reports a call to an undeclared function.
	ErrUnknownFunction = errors.New("xquery: unknown function")
)

// maxCallDepth bounds recursion so runaway user functions produce an
// error instead of a stack overflow.
const maxCallDepth = 4096

// DocResolver resolves fn:doc URIs to document nodes.
type DocResolver func(uri string) (*dom.Node, error)

// CollectionResolver resolves fn:collection URIs to document lists
// ("" is the default collection).
type CollectionResolver func(uri string) ([]*dom.Node, error)

// CollectionIterResolver is the streaming form of CollectionResolver:
// it resolves fn:collection URIs to lazy document iterators, so a
// store that scans shards incrementally can hand the merge to the
// engine one document at a time. When a Context carries both resolvers
// the streaming fn:collection prefers this one.
type CollectionIterResolver func(uri string) (xdm.Iter, error)

// Hooks are the browser extension points (paper §4). A nil Hooks makes
// the event/style expressions and browser: functions unavailable, which
// is the correct server-side behaviour.
type Hooks interface {
	// AttachListener registers listener for the event type on each
	// target node (paper §4.3.1).
	AttachListener(ctx *Context, event string, targets xdm.Sequence, listener dom.QName) error
	// AttachBehind binds the listener to the asynchronous evaluation of
	// call: the host starts the evaluation, fires readyState events, and
	// invokes the listener on each (paper §4.4).
	AttachBehind(ctx *Context, event string, call func() (xdm.Sequence, error), listener dom.QName) error
	// DetachListener removes a registration.
	DetachListener(ctx *Context, event string, targets xdm.Sequence, listener dom.QName) error
	// TriggerEvent synthesises an event at the targets.
	TriggerEvent(ctx *Context, event string, targets xdm.Sequence) error
	// SetStyle / GetStyle implement the CSS grammar (paper §4.5).
	SetStyle(ctx *Context, prop string, targets xdm.Sequence, value string) error
	GetStyle(ctx *Context, prop string, targets xdm.Sequence) (xdm.Sequence, error)
}

// Function is a callable: a built-in, an imported web-service proxy, or
// a compiled user function.
type Function struct {
	Name       dom.QName
	MinArgs    int
	MaxArgs    int // -1 for variadic
	Updating   bool
	Sequential bool
	Invoke     func(ctx *Context, args []xdm.Sequence) (xdm.Sequence, error)
	// Stream, when non-nil, is the lazy entry point: arguments arrive
	// as unevaluated iterators, so a function that only needs a prefix
	// (fn:exists, fn:head, fn:zero-or-one) decides without forcing the
	// rest. A function with a Stream must still provide Invoke, which
	// the evaluator uses when Context.NoStream is set.
	Stream func(ctx *Context, args []xdm.Iter) (xdm.Iter, error)
}

// Registry maps function names to implementations.
type Registry struct {
	funcs map[string][]*Function
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{funcs: map[string][]*Function{}} }

func fkey(n dom.QName) string { return n.Space + "#" + n.Local }

// Register adds a function. A function with an overlapping name and
// arity range replaces the earlier registration (imports may shadow).
func (r *Registry) Register(f *Function) {
	key := fkey(f.Name)
	list := r.funcs[key]
	for i, g := range list {
		if g.MinArgs == f.MinArgs && g.MaxArgs == f.MaxArgs {
			list[i] = f
			return
		}
	}
	r.funcs[key] = append(list, f)
}

// Lookup finds the function accepting the given arity, or nil.
func (r *Registry) Lookup(name dom.QName, arity int) *Function {
	for _, f := range r.funcs[fkey(name)] {
		if arity >= f.MinArgs && (f.MaxArgs < 0 || arity <= f.MaxArgs) {
			return f
		}
	}
	return nil
}

// Names returns the number of distinct registered function names.
func (r *Registry) Names() int { return len(r.funcs) }

// Overloads returns every function registered under name, regardless of
// arity (the static analyzer uses this to distinguish "unknown
// function" from "wrong number of arguments").
func (r *Registry) Overloads(name dom.QName) []*Function {
	return r.funcs[fkey(name)]
}

// All returns every registered function in unspecified order (the
// funclib signature table is derived from this).
func (r *Registry) All() []*Function {
	var out []*Function
	for _, list := range r.funcs {
		out = append(out, list...)
	}
	return out
}

// Clone copies the registry so a program's own declarations do not leak
// into the shared built-in table.
func (r *Registry) Clone() *Registry {
	c := NewRegistry()
	for k, v := range r.funcs {
		c.funcs[k] = append([]*Function(nil), v...)
	}
	return c
}

// ModuleResolver materialises a module import by registering its
// functions (and possibly global variables) into the registry. The REST
// substrate registers web-service proxies here (paper §3.4).
type ModuleResolver func(imp ast.ModuleImport, reg *Registry) error

// CompileConfig parameterises compilation.
type CompileConfig struct {
	// Registry provides the built-in functions; it is cloned.
	Registry *Registry
	// Resolver handles module imports; nil rejects imports.
	Resolver ModuleResolver
	// BlockDoc disables fn:doc and fn:put — the browser profile's
	// security rule (paper §4.2.1).
	BlockDoc bool
	// ResolverRetries is the number of additional resolver attempts
	// after a failed module load (0: fail on the first error, the
	// pre-retry behaviour). Module resolvers reach over process
	// boundaries — the REST substrate fetches service descriptions —
	// so transient failures deserve bounded retry before the compile
	// gives up.
	ResolverRetries int
	// ResolverBackoff is the wait before the first retry; each further
	// retry doubles it. 0 retries immediately.
	ResolverBackoff time.Duration
}

// Program is a compiled module ready for evaluation.
type Program struct {
	Module   *ast.Module
	Reg      *Registry
	BlockDoc bool
}

// resolverRetries counts module-resolver load attempts retried after a
// failure, process-wide (surfaced in serve.Metrics.Failures).
var resolverRetries atomic.Int64

// ResolverRetries returns the process-wide resolver-retry count.
func ResolverRetries() int64 { return resolverRetries.Load() }

// resolveWithRetry runs one module import through the resolver with
// the configured bounded retry-with-backoff. The resolver.load fault
// point fires inside each attempt, so injected faults are retried like
// real ones. Registry.Register replaces same-name/arity entries, so a
// half-registered failed attempt is safely overwritten by the retry.
func resolveWithRetry(cfg CompileConfig, imp ast.ModuleImport, reg *Registry) error {
	attempt := func() error {
		if err := faultpoint.Hit(faultpoint.PointResolverLoad); err != nil {
			return err
		}
		return cfg.Resolver(imp, reg)
	}
	err := attempt()
	backoff := cfg.ResolverBackoff
	for retry := 0; err != nil && retry < cfg.ResolverRetries; retry++ {
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		resolverRetries.Add(1)
		err = attempt()
	}
	return err
}

// Compile resolves imports and user function declarations of a parsed
// module against the given configuration. It also runs the path
// planner (once per module, however many engines compile it): step
// access-method annotations must be in place before any evaluation
// reads them.
func Compile(m *ast.Module, cfg CompileConfig) (*Program, error) {
	m.EnsurePlanned(func() { plan.Annotate(m) })
	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	reg = reg.Clone()
	p := &Program{Module: m, Reg: reg, BlockDoc: cfg.BlockDoc}
	for _, imp := range m.Prolog.Imports {
		if cfg.Resolver == nil {
			return nil, fmt.Errorf("%w for import of %q", ErrNoResolver, imp.URI)
		}
		if err := resolveWithRetry(cfg, imp, reg); err != nil {
			return nil, fmt.Errorf("xquery: importing %q: %w", imp.URI, err)
		}
	}
	for i := range m.Prolog.Functions {
		decl := &m.Prolog.Functions[i]
		if decl.External {
			if reg.Lookup(decl.Name, len(decl.Params)) == nil {
				return nil, fmt.Errorf("xquery: external function %s/%d has no implementation",
					decl.Name, len(decl.Params))
			}
			continue
		}
		f, err := p.compileUserFunction(decl)
		if err != nil {
			return nil, err
		}
		reg.Register(f)
	}
	return p, nil
}

func (p *Program) compileUserFunction(decl *ast.FuncDecl) (*Function, error) {
	d := decl
	return &Function{
		Name:       d.Name,
		MinArgs:    len(d.Params),
		MaxArgs:    len(d.Params),
		Updating:   d.Updating,
		Sequential: d.Sequential,
		Invoke: func(ctx *Context, args []xdm.Sequence) (xdm.Sequence, error) {
			if ctx.depth >= maxCallDepth {
				return nil, fmt.Errorf("xquery: call depth limit exceeded in %s", d.Name)
			}
			// A fresh frame rooted at the globals: user functions do not
			// see the caller's local variables or context item.
			callee := *ctx
			callee.depth = ctx.depth + 1
			callee.env = ctx.globals
			callee.Item = ctx.Ambient
			callee.Pos, callee.Size = 0, 0
			if callee.Item != nil {
				callee.Pos, callee.Size = 1, 1
			}
			for i, prm := range d.Params {
				v := args[i]
				if prm.Type != nil {
					cv, err := ConvertValue(v, *prm.Type)
					if err != nil {
						return nil, fmt.Errorf("xquery: argument $%s of %s: %w", prm.Name.Local, d.Name, err)
					}
					v = cv
				}
				callee.env = callee.env.bind(prm.Name, v)
			}
			res, err := callee.Eval(d.Body)
			if ex, ok := err.(*exitError); ok {
				res, err = ex.val, nil
			}
			if err == errBreak || err == errContinue {
				// Loop control must not cross a function boundary.
				return nil, fmt.Errorf("%w (in function %s)", err, d.Name)
			}
			if err != nil {
				return nil, err
			}
			if d.ReturnType != nil {
				res, err = ConvertValue(res, *d.ReturnType)
				if err != nil {
					return nil, fmt.Errorf("xquery: result of %s: %w", d.Name, err)
				}
			}
			return res, nil
		},
	}, nil
}

// --- environments ------------------------------------------------------------

// Box is a mutable variable cell (needed by the scripting extension's
// assignment statement).
type Box struct{ Val xdm.Sequence }

type env struct {
	parent *env
	name   dom.QName
	box    *Box
}

func (e *env) bind(name dom.QName, val xdm.Sequence) *env {
	return &env{parent: e, name: name, box: &Box{Val: val}}
}

func (e *env) lookup(name dom.QName) *Box {
	for f := e; f != nil; f = f.parent {
		if f.name.Matches(name) {
			return f.box
		}
	}
	return nil
}

// --- dynamic context ------------------------------------------------------------

// Context is the dynamic evaluation context. Copies are cheap; pointer
// fields (environment chain, PUL, hooks) are shared intentionally.
type Context struct {
	Prog *Program

	// Focus.
	Item xdm.Item
	Pos  int
	Size int

	// Ambient, when set, is installed as the context item inside user
	// function bodies (which per XQuery 1.0 have an undefined focus).
	// The browser host sets it to the page document so listeners can
	// write //div[@id=...] directly — §4.2.3: "accessing any node in
	// the document is easy and straightforward".
	Ambient xdm.Item

	// External interfaces. CollectionsIter, when set, is the streaming
	// source fn:collection pulls from; Collections stays the eager
	// fallback (and the form the NoStream evaluator uses).
	Docs            DocResolver
	Collections     CollectionResolver
	CollectionsIter CollectionIterResolver
	Hooks           Hooks
	Now             time.Time

	// PUL accumulates update primitives; nil forbids updating
	// expressions. SnapshotApply, when non-nil, is called after every
	// sequential statement to make side effects visible (scripting
	// semantics); when nil the PUL just accumulates (pure XQuery +
	// Update semantics: apply at end of query).
	PUL           *update.PUL
	SnapshotApply func(*update.PUL) error

	// Profiler, when non-nil, collects per-expression statistics (§7
	// future-work tooling); nil costs nothing.
	Profiler *Profiler

	// Budget, when non-nil, bounds this query's evaluation (steps and
	// wall clock). It is shared by design across context copies and
	// behind-call goroutines: one budget per query invocation.
	Budget *Budget

	// IO, when non-nil, is the run's cancellation context for outbound
	// I/O performed by host functions (REST calls, federation
	// sub-requests): cancelling the run stops those calls from burning
	// sockets, not just the evaluation loop. Program.NewContext sets it
	// from RunConfig.Context; hosts read it through IOContext.
	IO context.Context

	// NoStream forces the materializing evaluator everywhere: EvalIter
	// degrades to a deferred Eval and streaming built-ins use their
	// eager Invoke. Used as the baseline in benchmarks and as an
	// escape hatch.
	NoStream bool

	// NoIndex disables every use of the per-document indexes: planned
	// steps scan, fn:id walks, and document-order sorts take the
	// stamp-and-sort path. It is the scan baseline in benchmarks and
	// the oracle side of the index differential tests.
	NoIndex bool

	// ft carries full-text scoring state (the scores ftcontains
	// recorded, the scan side's per-document statistics cache). A
	// pointer so every context copy shares one state per query
	// invocation, like PUL and Budget.
	ft *ftState

	env     *env
	globals *env
	depth   int
}

// NewContext builds a root context for the program.
func NewContext(p *Program) *Context {
	ctx := &Context{Prog: p, Now: time.Now(), PUL: &update.PUL{}, ft: newFTState()}
	ctx.env = nil
	ctx.globals = nil
	return ctx
}

// IOContext returns the run's context for outbound I/O (never nil):
// the RunConfig.Context the evaluation was started under, or
// context.Background() when the run is unbounded. Host functions that
// issue network calls (rest:get, remote proxies, federation scatters)
// build their requests with it so a cancelled query stops burning
// sockets.
func (ctx *Context) IOContext() context.Context {
	if ctx == nil || ctx.IO == nil {
		return context.Background()
	}
	return ctx.IO
}

// Bind adds a variable binding (used by the host to inject external
// variables) and returns the box.
func (ctx *Context) Bind(name dom.QName, val xdm.Sequence) *Box {
	ctx.env = ctx.env.bind(name, val)
	if ctx.globals == nil {
		ctx.globals = ctx.env
	}
	return ctx.env.box
}

// Var returns the current value of a variable, if bound.
func (ctx *Context) Var(name dom.QName) (xdm.Sequence, bool) {
	if b := ctx.env.lookup(name); b != nil {
		return b.Val, true
	}
	return nil, false
}

// InitGlobals evaluates the prolog's global variable declarations in
// order and installs them in the context.
func (ctx *Context) InitGlobals() error {
	for i := range ctx.Prog.Module.Prolog.Vars {
		v := &ctx.Prog.Module.Prolog.Vars[i]
		if ctx.env.lookup(v.Name) != nil {
			continue // externally bound (or duplicate) — keep existing
		}
		var val xdm.Sequence
		if v.Init != nil {
			var err error
			val, err = ctx.Eval(v.Init)
			if err != nil {
				return fmt.Errorf("xquery: initialising $%s: %w", v.Name.Local, err)
			}
		} else if v.External {
			return fmt.Errorf("xquery: external variable $%s was not bound", v.Name.Local)
		}
		if v.Type != nil {
			cv, err := ConvertValue(val, *v.Type)
			if err != nil {
				return fmt.Errorf("xquery: variable $%s: %w", v.Name.Local, err)
			}
			val = cv
		}
		ctx.Bind(v.Name, val)
	}
	ctx.globals = ctx.env
	return nil
}

// Run initialises globals and evaluates the module body. Pending
// updates are left in ctx.PUL for the host to apply (unless
// SnapshotApply consumed them along the way).
func (ctx *Context) Run() (xdm.Sequence, error) {
	if err := ctx.InitGlobals(); err != nil {
		return nil, err
	}
	if ctx.Prog.Module.Body == nil {
		return nil, nil
	}
	res, err := ctx.Eval(ctx.Prog.Module.Body)
	if ex, ok := err.(*exitError); ok {
		return ex.val, nil
	}
	return res, err
}

// CallFunction invokes a named function with the given arguments — the
// plug-in host uses this to run event listeners (paper Figure 1: "Zorba
// is called with the XQuery prolog followed by the listener call").
func (ctx *Context) CallFunction(name dom.QName, args []xdm.Sequence) (xdm.Sequence, error) {
	f := ctx.Prog.Reg.Lookup(name, len(args))
	if f == nil {
		return nil, fmt.Errorf("%w: %s/%d", ErrUnknownFunction, name, len(args))
	}
	res, err := f.Invoke(ctx, args)
	if ex, ok := err.(*exitError); ok {
		return ex.val, nil
	}
	return res, err
}

// withFocus returns a copy of the context with a new focus.
func (ctx *Context) withFocus(item xdm.Item, pos, size int) *Context {
	c := *ctx
	c.Item = item
	c.Pos = pos
	c.Size = size
	return &c
}

// withEnv returns a copy of the context with a new variable frame.
func (ctx *Context) withBinding(name dom.QName, val xdm.Sequence) *Context {
	c := *ctx
	c.env = ctx.env.bind(name, val)
	return &c
}

// exitError implements the scripting "exit with" non-local return.
type exitError struct{ val xdm.Sequence }

func (e *exitError) Error() string { return "xquery: exit outside of a function" }

// ConvertValue applies the function conversion rules to a sequence for
// the given expected type: atomization for atomic expected types,
// untypedAtomic casting, numeric promotion, and a final instance check.
func ConvertValue(s xdm.Sequence, st xdm.SeqType) (xdm.Sequence, error) {
	if st.Empty {
		if len(s) != 0 {
			return nil, fmt.Errorf("expected empty-sequence(), got %d items", len(s))
		}
		return s, nil
	}
	if st.Item.Atomic != 0 {
		out := make(xdm.Sequence, 0, len(s))
		for _, it := range s {
			a := xdm.Atomize(it)
			a, err := promoteAtomic(a, st.Item.Atomic)
			if err != nil {
				return nil, err
			}
			out = append(out, a)
		}
		s = out
	}
	if !st.Matches(s) {
		return nil, fmt.Errorf("value does not match required type %s", st)
	}
	return s, nil
}

func promoteAtomic(a xdm.Item, target xdm.Type) (xdm.Item, error) {
	t := a.Type()
	if t == target {
		return a, nil
	}
	switch {
	case t == xdm.TUntypedAtomic:
		return xdm.Cast(a, target)
	case t == xdm.TInteger && (target == xdm.TDecimal || target == xdm.TDouble):
		return xdm.Cast(a, target)
	case t == xdm.TDecimal && target == xdm.TDouble:
		return xdm.Cast(a, target)
	case t == xdm.TAnyURI && target == xdm.TString:
		return xdm.String(a.String()), nil
	}
	return a, nil // leave as-is; the instance check decides
}
