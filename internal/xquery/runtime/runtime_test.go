package runtime

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/parser"
)

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	name := dom.QName{Space: "urn:t", Local: "f"}
	r.Register(&Function{Name: name, MinArgs: 1, MaxArgs: 2})
	if r.Lookup(name, 1) == nil || r.Lookup(name, 2) == nil {
		t.Error("arity range lookup failed")
	}
	if r.Lookup(name, 0) != nil || r.Lookup(name, 3) != nil {
		t.Error("out-of-range arity matched")
	}
	if r.Lookup(dom.QName{Space: "urn:x", Local: "f"}, 1) != nil {
		t.Error("namespace must distinguish")
	}
	// Variadic.
	vn := dom.QName{Space: "urn:t", Local: "v"}
	r.Register(&Function{Name: vn, MinArgs: 2, MaxArgs: -1})
	if r.Lookup(vn, 17) == nil {
		t.Error("variadic lookup failed")
	}
	// Re-registration with identical arity replaces.
	f2 := &Function{Name: name, MinArgs: 1, MaxArgs: 2}
	r.Register(f2)
	if r.Lookup(name, 1) != f2 {
		t.Error("replacement failed")
	}
}

func TestRegistryCloneIsolation(t *testing.T) {
	r := NewRegistry()
	n1 := dom.QName{Space: "u", Local: "a"}
	r.Register(&Function{Name: n1, MinArgs: 0, MaxArgs: 0})
	c := r.Clone()
	n2 := dom.QName{Space: "u", Local: "b"}
	c.Register(&Function{Name: n2, MinArgs: 0, MaxArgs: 0})
	if r.Lookup(n2, 0) != nil {
		t.Error("clone leaked into original")
	}
	if c.Lookup(n1, 0) == nil {
		t.Error("clone lost original entries")
	}
}

func mustSeqType(t *testing.T, src string) xdm.SeqType {
	t.Helper()
	e, err := parser.ParseExpr("$x instance of " + src)
	if err != nil {
		t.Fatal(err)
	}
	return e.(ast.InstanceOf).Type
}

func TestConvertValue(t *testing.T) {
	intPlus := mustSeqType(t, "xs:integer+")
	dbl := mustSeqType(t, "xs:double")
	str := mustSeqType(t, "xs:string")
	anyNode := mustSeqType(t, "node()")

	// Untyped content converts to the expected atomic type.
	el := dom.NewElement(dom.Name("n"))
	_ = el.AppendChild(dom.NewText("42"))
	out, err := ConvertValue(xdm.Sequence{xdm.NewNode(el)}, intPlus)
	if err != nil || out[0].Type() != xdm.TInteger {
		t.Errorf("untyped→integer: %v %v", out, err)
	}
	// Numeric promotion integer→double.
	out, err = ConvertValue(xdm.Sequence{xdm.Integer(3)}, dbl)
	if err != nil || out[0].Type() != xdm.TDouble {
		t.Errorf("integer→double: %v %v", out, err)
	}
	// anyURI→string promotion.
	out, err = ConvertValue(xdm.Sequence{xdm.AnyURI("u")}, str)
	if err != nil || out[0].Type() != xdm.TString {
		t.Errorf("anyURI→string: %v %v", out, err)
	}
	// Type mismatch errors.
	if _, err := ConvertValue(xdm.Sequence{xdm.String("x")}, dbl); err == nil {
		t.Error("string→double without cast should fail")
	}
	// Cardinality errors.
	if _, err := ConvertValue(nil, intPlus); err == nil {
		t.Error("empty for + should fail")
	}
	// Node types pass through unatomized.
	out, err = ConvertValue(xdm.Sequence{xdm.NewNode(el)}, anyNode)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := xdm.IsNode(out[0]); !ok {
		t.Error("node argument atomized for node() type")
	}
	// empty-sequence().
	est := xdm.SeqType{Empty: true}
	if _, err := ConvertValue(xdm.Sequence{xdm.Integer(1)}, est); err == nil {
		t.Error("non-empty for empty-sequence() should fail")
	}
}

func compileModule(t *testing.T, src string) *Program {
	t.Helper()
	m, err := parser.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, CompileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestContextBindAndVar(t *testing.T) {
	p := compileModule(t, `$ext + 1`)
	ctx := NewContext(p)
	ctx.Bind(dom.Name("ext"), xdm.Sequence{xdm.Integer(41)})
	res, err := ctx.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].String() != "42" {
		t.Errorf("res = %v", res)
	}
	if v, ok := ctx.Var(dom.Name("ext")); !ok || v[0].String() != "41" {
		t.Error("Var lookup failed")
	}
	if _, ok := ctx.Var(dom.Name("missing")); ok {
		t.Error("missing var reported bound")
	}
}

func TestExternalVariableRequired(t *testing.T) {
	p := compileModule(t, `declare variable $x external; $x`)
	ctx := NewContext(p)
	if _, err := ctx.Run(); err == nil {
		t.Error("unbound external variable must fail")
	}
	ctx2 := NewContext(p)
	ctx2.Bind(dom.Name("x"), xdm.Sequence{xdm.String("ok")})
	res, err := ctx2.Run()
	if err != nil || res[0].String() != "ok" {
		t.Errorf("bound external: %v %v", res, err)
	}
}

func TestExternalFunctionRequiresImpl(t *testing.T) {
	m, err := parser.ParseModule(`declare function local:ext() external; local:ext()`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(m, CompileConfig{}); err == nil {
		t.Error("external function without implementation must fail to compile")
	}
	// With an implementation pre-registered it compiles and runs.
	reg := NewRegistry()
	reg.Register(&Function{
		Name:    dom.QName{Space: parser.LocalNamespace, Local: "ext"},
		MinArgs: 0, MaxArgs: 0,
		Invoke: func(ctx *Context, args []xdm.Sequence) (xdm.Sequence, error) {
			return xdm.Sequence{xdm.String("native")}, nil
		},
	})
	p, err := Compile(m, CompileConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewContext(p).Run()
	if err != nil || res[0].String() != "native" {
		t.Errorf("external call: %v %v", res, err)
	}
}

func TestCallDepthLimit(t *testing.T) {
	p := compileModule(t, `declare function local:loop() { local:loop() }; local:loop()`)
	_, err := NewContext(p).Run()
	if err == nil {
		t.Fatal("infinite recursion must error, not crash")
	}
}

func TestModuleResolverInvoked(t *testing.T) {
	m, err := parser.ParseModule(`import module namespace x = "urn:x" at "hint"; 1`)
	if err != nil {
		t.Fatal(err)
	}
	called := false
	_, err = Compile(m, CompileConfig{
		Resolver: func(imp ast.ModuleImport, reg *Registry) error {
			called = true
			if imp.URI != "urn:x" || imp.Hints[0] != "hint" {
				t.Errorf("import = %+v", imp)
			}
			return nil
		},
	})
	if err != nil || !called {
		t.Errorf("resolver: called=%v err=%v", called, err)
	}
	// No resolver → import fails.
	if _, err := Compile(m, CompileConfig{}); err == nil {
		t.Error("import without resolver must fail")
	}
}

func TestAmbientFocusInFunctions(t *testing.T) {
	// Note: this package compiles without the fn: library, so the body
	// uses a bare path rather than count().
	p := compileModule(t, `declare function local:f() { //item }; local:f()`)
	doc := dom.NewDocument()
	root := dom.NewElement(dom.Name("r"))
	_ = doc.AppendChild(root)
	_ = root.AppendChild(dom.NewElement(dom.Name("item")))
	_ = root.AppendChild(dom.NewElement(dom.Name("item")))

	// Without ambient: functions have no focus.
	ctx := NewContext(p)
	ctx.Item = xdm.NewNode(doc)
	ctx.Pos, ctx.Size = 1, 1
	if _, err := ctx.Run(); err == nil {
		t.Error("function body without ambient focus should fail on //item")
	}
	// With ambient: the browser-host behaviour.
	ctx2 := NewContext(p)
	ctx2.Item = xdm.NewNode(doc)
	ctx2.Pos, ctx2.Size = 1, 1
	ctx2.Ambient = ctx2.Item
	res, err := ctx2.Run()
	if err != nil || len(res) != 2 {
		t.Errorf("ambient focus: %v %v", res, err)
	}
}

func TestHooksRequired(t *testing.T) {
	// Event/style expressions error without a browser host.
	for _, src := range []string{
		`on event "click" at <a/> attach listener local:f`,
		`trigger event "click" at <a/>`,
		`set style "c" of <a/> to "red"`,
		`get style "c" of <a/>`,
	} {
		p := compileModule(t, `declare updating function local:f($a,$b){()}; `+src)
		if _, err := NewContext(p).Run(); err == nil {
			t.Errorf("%q must require hooks", src)
		}
	}
}

func TestUpdatingWithoutPUL(t *testing.T) {
	p := compileModule(t, `delete node <a/>`)
	ctx := NewContext(p)
	ctx.PUL = nil
	if _, err := ctx.Run(); err == nil {
		t.Error("updating expression without a PUL must fail")
	}
}

func TestCallFunctionByName(t *testing.T) {
	p := compileModule(t, `declare function local:add($a, $b) { $a + $b }; ()`)
	ctx := NewContext(p)
	if err := ctx.InitGlobals(); err != nil {
		t.Fatal(err)
	}
	res, err := ctx.CallFunction(
		dom.QName{Space: parser.LocalNamespace, Local: "add"},
		[]xdm.Sequence{{xdm.Integer(20)}, {xdm.Integer(22)}})
	if err != nil || res[0].String() != "42" {
		t.Errorf("CallFunction: %v %v", res, err)
	}
	if _, err := ctx.CallFunction(dom.Name("nosuch"), nil); err == nil {
		t.Error("unknown function must fail")
	}
}
