package runtime

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/xdm"
	"repro/internal/xquery/ast"
	"repro/internal/xquery/update"
)

// Updating expressions (Update Facility) and sequential statements
// (Scripting Extension), plus the paper's browser grammar extensions.

func (ctx *Context) requirePUL() (*update.PUL, error) {
	if ctx.PUL == nil {
		return nil, fmt.Errorf("xquery: updating expression not allowed in this context")
	}
	return ctx.PUL, nil
}

// evalInsert implements "insert node(s) Source into/before/after Target".
func (ctx *Context) evalInsert(x ast.Insert) (xdm.Sequence, error) {
	pul, err := ctx.requirePUL()
	if err != nil {
		return nil, err
	}
	content, err := ctx.evalContentNodes(x.Source)
	if err != nil {
		return nil, err
	}
	target, err := ctx.evalSingleNode(x.Target, "insert target")
	if err != nil {
		return nil, err
	}
	var kind update.Kind
	switch x.Pos {
	case ast.Into:
		kind = update.InsertInto
	case ast.IntoFirst:
		kind = update.InsertIntoFirst
	case ast.IntoLast:
		kind = update.InsertIntoLast
	case ast.Before:
		kind = update.InsertBefore
	case ast.After:
		kind = update.InsertAfter
	}
	switch x.Pos {
	case ast.Into, ast.IntoFirst, ast.IntoLast:
		if target.Type != dom.ElementNode && target.Type != dom.DocumentNode {
			return nil, fmt.Errorf("xquery: insert into target must be an element or document")
		}
	default:
		if target.Parent() == nil {
			return nil, fmt.Errorf("xquery: insert before/after target has no parent")
		}
		for _, c := range content {
			if c.Type == dom.AttributeNode {
				return nil, fmt.Errorf("xquery: attributes cannot be inserted before/after a node")
			}
		}
	}
	return nil, pul.Add(update.Primitive{Kind: kind, Target: target, Content: content})
}

func (ctx *Context) evalDelete(x ast.Delete) (xdm.Sequence, error) {
	pul, err := ctx.requirePUL()
	if err != nil {
		return nil, err
	}
	s, err := ctx.Eval(x.Target)
	if err != nil {
		return nil, err
	}
	for _, it := range s {
		n, ok := xdm.IsNode(it)
		if !ok {
			return nil, fmt.Errorf("xquery: delete target must be nodes")
		}
		if err := pul.Add(update.Primitive{Kind: update.Delete, Target: n}); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

func (ctx *Context) evalReplace(x ast.Replace) (xdm.Sequence, error) {
	pul, err := ctx.requirePUL()
	if err != nil {
		return nil, err
	}
	target, err := ctx.evalSingleNode(x.Target, "replace target")
	if err != nil {
		return nil, err
	}
	if x.ValueOf {
		with, err := ctx.Eval(x.With)
		if err != nil {
			return nil, err
		}
		return nil, pul.Add(update.Primitive{
			Kind: update.ReplaceValue, Target: target, Value: joinAtomized(with)})
	}
	if target.Parent() == nil {
		return nil, fmt.Errorf("xquery: replace target has no parent")
	}
	content, err := ctx.evalContentNodes(x.With)
	if err != nil {
		return nil, err
	}
	if target.Type == dom.AttributeNode {
		for _, c := range content {
			if c.Type != dom.AttributeNode {
				return nil, fmt.Errorf("xquery: an attribute can only be replaced by attributes")
			}
		}
	} else {
		for _, c := range content {
			if c.Type == dom.AttributeNode {
				return nil, fmt.Errorf("xquery: a %s node cannot be replaced by an attribute", target.Type)
			}
		}
	}
	return nil, pul.Add(update.Primitive{Kind: update.ReplaceNode, Target: target, Content: content})
}

func (ctx *Context) evalRename(x ast.Rename) (xdm.Sequence, error) {
	pul, err := ctx.requirePUL()
	if err != nil {
		return nil, err
	}
	target, err := ctx.evalSingleNode(x.Target, "rename target")
	if err != nil {
		return nil, err
	}
	it, err := ctx.evalAtomizedOne(x.NewName)
	if err != nil {
		return nil, err
	}
	if it == nil {
		return nil, fmt.Errorf("xquery: rename requires a new name")
	}
	name, err := lexicalQName(it)
	if err != nil {
		return nil, err
	}
	return nil, pul.Add(update.Primitive{Kind: update.Rename, Target: target, Name: name})
}

// evalTransform implements copy-modify-return: modifications apply to
// fresh copies only and become visible before the return clause runs.
func (ctx *Context) evalTransform(x ast.Transform) (xdm.Sequence, error) {
	c := ctx
	roots := make([]*dom.Node, 0, len(x.Bindings))
	for _, b := range x.Bindings {
		src, err := c.evalSingleNode(b.In, "copy source")
		if err != nil {
			return nil, err
		}
		cp := src.Clone()
		roots = append(roots, cp)
		c = c.withBinding(b.Var, xdm.Singleton(xdm.NewNode(cp)))
	}
	inner := *c
	inner.PUL = &update.PUL{}
	inner.SnapshotApply = nil
	if _, err := inner.Eval(x.Modify); err != nil {
		return nil, err
	}
	if err := inner.PUL.TargetsWithin(roots); err != nil {
		return nil, err
	}
	if err := inner.PUL.Apply(nil); err != nil {
		return nil, err
	}
	return c.Eval(x.Return)
}

// evalContentNodes evaluates an insert/replace source into a content
// node list: nodes are copied, atomics become a text node.
func (ctx *Context) evalContentNodes(e ast.Expr) ([]*dom.Node, error) {
	s, err := ctx.Eval(e)
	if err != nil {
		return nil, err
	}
	scratch := dom.NewElement(dom.Name("x"))
	if err := appendContent(scratch, s); err != nil {
		return nil, err
	}
	scratch.NormalizeText()
	var out []*dom.Node
	for _, a := range append([]*dom.Node(nil), scratch.Attrs()...) {
		a.Detach()
		out = append(out, a)
	}
	for _, c := range append([]*dom.Node(nil), scratch.Children()...) {
		c.Detach()
		out = append(out, c)
	}
	return out, nil
}

func (ctx *Context) evalSingleNode(e ast.Expr, what string) (*dom.Node, error) {
	s, err := ctx.Eval(e)
	if err != nil {
		return nil, err
	}
	it, err := s.One()
	if err != nil {
		return nil, fmt.Errorf("xquery: %s: %w", what, err)
	}
	n, ok := xdm.IsNode(it)
	if !ok {
		return nil, fmt.Errorf("xquery: %s must be a node", what)
	}
	return n, nil
}

// --- scripting --------------------------------------------------------------

// evalBlock runs statements sequentially: declarations extend the local
// scope, each statement's pending updates are applied before the next
// statement runs (when the host enabled snapshots), and the block's
// value is the value of its last statement.
func (ctx *Context) evalBlock(b ast.Block) (xdm.Sequence, error) {
	cur := ctx
	var last xdm.Sequence
	for _, stmt := range b.Stmts {
		if decl, ok := stmt.(ast.BlockDecl); ok {
			var val xdm.Sequence
			if decl.Init != nil {
				var err error
				val, err = cur.Eval(decl.Init)
				if err != nil {
					return nil, err
				}
			}
			if decl.Type != nil {
				cv, err := ConvertValue(val, *decl.Type)
				if err != nil {
					return nil, fmt.Errorf("xquery: variable $%s: %w", decl.Var.Local, err)
				}
				val = cv
			}
			cur = cur.withBinding(decl.Var, val)
			last = nil
		} else {
			res, err := cur.Eval(stmt)
			if err != nil {
				return nil, err
			}
			last = res
		}
		if err := cur.applySnapshot(); err != nil {
			return nil, err
		}
	}
	return last, nil
}

func (ctx *Context) applySnapshot() error {
	if ctx.SnapshotApply == nil || ctx.PUL == nil || ctx.PUL.Empty() {
		return nil
	}
	return ctx.SnapshotApply(ctx.PUL)
}

func (ctx *Context) evalAssign(x ast.Assign) (xdm.Sequence, error) {
	box := ctx.env.lookup(x.Var)
	if box == nil {
		return nil, fmt.Errorf("xquery: assignment to undeclared variable $%s", x.Var)
	}
	val, err := ctx.Eval(x.Val)
	if err != nil {
		return nil, err
	}
	box.Val = val
	return nil, nil
}

func (ctx *Context) evalWhile(x ast.While) (xdm.Sequence, error) {
	const maxIterations = 10_000_000
	for i := 0; ; i++ {
		if i >= maxIterations {
			return nil, fmt.Errorf("xquery: while loop exceeded %d iterations", maxIterations)
		}
		c, err := ctx.evalEBV(x.Cond)
		if err != nil {
			return nil, err
		}
		if !c {
			return nil, nil
		}
		_, err = ctx.Eval(x.Body)
		if snapErr := ctx.applySnapshot(); snapErr != nil {
			return nil, snapErr
		}
		switch err {
		case nil, errContinue:
			// next iteration
		case errBreak:
			return nil, nil
		default:
			return nil, err
		}
	}
}

// Loop-control sentinels for the scripting break/continue statements
// (§3.3). They unwind through enclosing blocks until a while loop (or a
// function/top-level boundary, where they become real errors).
var (
	errBreak    = fmt.Errorf("xquery: \"break\" outside of a while loop")
	errContinue = fmt.Errorf("xquery: \"continue\" outside of a while loop")
)

// --- browser extensions -------------------------------------------------------

func (ctx *Context) requireHooks(what string) (Hooks, error) {
	if ctx.Hooks == nil {
		return nil, fmt.Errorf("xquery: %s is only available in the browser", what)
	}
	return ctx.Hooks, nil
}

func (ctx *Context) evalEventAttach(x ast.EventAttach) (xdm.Sequence, error) {
	h, err := ctx.requireHooks("event handling")
	if err != nil {
		return nil, err
	}
	event, err := ctx.evalString(x.Event)
	if err != nil {
		return nil, err
	}
	if x.Behind {
		// The "behind" construct binds the listener to the asynchronous
		// evaluation of the target expression (paper §4.4): hand the
		// host a thunk, do not evaluate here.
		call := func() (xdm.Sequence, error) { return ctx.Eval(x.Target) }
		return nil, h.AttachBehind(ctx, event, call, x.Listener)
	}
	targets, err := ctx.Eval(x.Target)
	if err != nil {
		return nil, err
	}
	return nil, h.AttachListener(ctx, event, targets, x.Listener)
}

func (ctx *Context) evalEventDetach(x ast.EventDetach) (xdm.Sequence, error) {
	h, err := ctx.requireHooks("event handling")
	if err != nil {
		return nil, err
	}
	event, err := ctx.evalString(x.Event)
	if err != nil {
		return nil, err
	}
	targets, err := ctx.Eval(x.Target)
	if err != nil {
		return nil, err
	}
	return nil, h.DetachListener(ctx, event, targets, x.Listener)
}

func (ctx *Context) evalEventTrigger(x ast.EventTrigger) (xdm.Sequence, error) {
	h, err := ctx.requireHooks("event handling")
	if err != nil {
		return nil, err
	}
	event, err := ctx.evalString(x.Event)
	if err != nil {
		return nil, err
	}
	targets, err := ctx.Eval(x.Target)
	if err != nil {
		return nil, err
	}
	return nil, h.TriggerEvent(ctx, event, targets)
}

func (ctx *Context) evalSetStyle(x ast.SetStyle) (xdm.Sequence, error) {
	h, err := ctx.requireHooks("style handling")
	if err != nil {
		return nil, err
	}
	prop, err := ctx.evalString(x.Prop)
	if err != nil {
		return nil, err
	}
	targets, err := ctx.Eval(x.Target)
	if err != nil {
		return nil, err
	}
	value, err := ctx.evalString(x.Value)
	if err != nil {
		return nil, err
	}
	return nil, h.SetStyle(ctx, prop, targets, value)
}

func (ctx *Context) evalGetStyle(x ast.GetStyle) (xdm.Sequence, error) {
	h, err := ctx.requireHooks("style handling")
	if err != nil {
		return nil, err
	}
	prop, err := ctx.evalString(x.Prop)
	if err != nil {
		return nil, err
	}
	targets, err := ctx.Eval(x.Target)
	if err != nil {
		return nil, err
	}
	return h.GetStyle(ctx, prop, targets)
}
