package xquery

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/markup"
	"repro/internal/xdm"
	"repro/internal/xquery/runtime"
)

// evalLazy runs a query through the default (streaming) evaluator with
// pure XQuery Update semantics (no per-statement snapshots), which is
// the mode where laziness is observable.
func evalLazy(t *testing.T, src string, doc string) (string, error) {
	t.Helper()
	e := New()
	p, err := e.Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	cfg := RunConfig{}
	if doc != "" {
		d, err := markup.Parse(doc)
		if err != nil {
			t.Fatal(err)
		}
		cfg.ContextItem = xdm.NewNode(d)
	}
	res, err := p.Run(cfg)
	if err != nil {
		return "", err
	}
	return FormatSequence(res.Value, markup.Serialize), nil
}

func mustLazy(t *testing.T, src, doc string) string {
	t.Helper()
	out, err := evalLazy(t, src, doc)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return out
}

// TestLazyErrorBeyondEarlyExit: once the answer of an early-exiting
// consumer is decided, errors lurking in the unpulled remainder of the
// sequence must not surface.
func TestLazyErrorBeyondEarlyExit(t *testing.T) {
	cases := []struct{ query, want string }{
		{`(1, fn:error())[1]`, "1"},
		{`fn:exists((1, fn:error()))`, "true"},
		{`fn:empty(("x", fn:error()))`, "false"},
		{`fn:head((42, fn:error()))`, "42"},
		{`fn:zero-or-one((42))`, "42"},
		{`fn:subsequence((1, 2, fn:error()), 1, 2)`, "1 2"},
		{`some $x in (1, 2, fn:error()) satisfies $x = 2`, "true"},
		{`every $x in (1, fn:error()) satisfies $x > 10`, "false"},
		{`(1, fn:error()) = 1`, "true"},
		// EBV short-circuits only on a node-first sequence; with an
		// atomic first item, pulling a second is spec-required (to
		// raise the two-atomics type error), so no laziness there.
		{`if ((<x/>, fn:error())) then "t" else "f"`, "t"},
		{`(1 to 9000000)[3]`, "3"},
		{`fn:boolean((<x/>, fn:error()))`, "true"},
	}
	for _, c := range cases {
		if got := mustLazy(t, c.query, ""); got != c.want {
			t.Errorf("%s = %q, want %q", c.query, got, c.want)
		}
	}
}

// TestLazyErrorBeforeEarlyExit: errors inside the pulled prefix still
// surface.
func TestLazyErrorBeforeEarlyExit(t *testing.T) {
	for _, q := range []string{
		`fn:exists((fn:error(), 1))`,
		`(fn:error(), 1)[1]`,
		`some $x in (fn:error(), 1) satisfies $x = 1`,
	} {
		if _, err := evalLazy(t, q, ""); err == nil {
			t.Errorf("%s: expected an error", q)
		}
	}
}

// TestStreamingPositionLast: position() and last() semantics are
// unchanged under the streaming evaluator, including the cases that
// force materialization (last()) and the //x[1] per-parent rule.
func TestStreamingPositionLast(t *testing.T) {
	cases := []struct{ query, want string }{
		{`(//book)[1]/@id/string()`, "b1"},
		{`(//book)[last()]/@id/string()`, "b3"},
		{`(//book)[position() < 3]/@id/string()`, "b1 b2"},
		{`(//book)[position() = last()]/@id/string()`, "b3"},
		// //author[1] is "authors that are the first author child of
		// their parent", not the first author in the document.
		{`//author[1]/string()`, "Knuth Gamma O'Sullivan"},
		{`(//author)[1]/string()`, "Knuth"},
		{`//book[last()]/@id/string()`, "b3"},
		{`//book[2]/author[2]/string()`, "Helm"},
		// Predicate stages re-count positions stage by stage.
		{`string((10, 20, 30, 40, 50)[position() >= 2][2])`, "30"},
		// Reverse axes count positions in proximity order.
		{`(//author)[last()]/ancestor::*[1]/local-name()`, "book"},
		{`count(//book[position() > 1])`, "2"},
		// Streamed descendant rewrite keeps boolean predicates.
		{`//book[author = "Knuth"]/@id/string()`, "b1"},
		{`count(//*)`, "14"},
	}
	for _, c := range cases {
		if got := mustLazy(t, c.query, libraryXML); got != c.want {
			t.Errorf("%s = %q, want %q", c.query, got, c.want)
		}
	}
}

// TestStreamingMatchesEagerBaseline runs a mixed query battery in both
// modes and requires identical results — the streaming pipeline is an
// optimization, never a semantics change.
func TestStreamingMatchesEagerBaseline(t *testing.T) {
	queries := []string{
		`for $b in //book order by number($b/price) return $b/@id/string()`,
		`//book[price > 50]/title/string()`,
		`count(//book/author)`,
		`(//book/title)[2]/string()`,
		`string-join(for $a in //author return $a/string(), "|")`,
		`//book/@year/string()`,
		`(//book, //book)[3]/@id/string()`,
		`//book[not(author = "Knuth")][1]/@id/string()`,
		`sum(for $i in 1 to 100 return $i)`,
	}
	e := New()
	d, err := markup.Parse(libraryXML)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		p, err := e.Compile(q)
		if err != nil {
			t.Fatalf("compile %q: %v", q, err)
		}
		run := func(noStream bool) string {
			res, err := p.Run(RunConfig{
				ContextItem:      xdm.NewNode(d),
				DisableStreaming: noStream,
			})
			if err != nil {
				t.Fatalf("%q (noStream=%v): %v", q, noStream, err)
			}
			return FormatSequence(res.Value, markup.Serialize)
		}
		if lazy, eager := run(false), run(true); lazy != eager {
			t.Errorf("%s: streaming %q != eager %q", q, lazy, eager)
		}
	}
}

// TestUpdateSnapshotSemanticsUnderStreaming: the pending update list
// still applies only at the end of a (non-sequential) run — the query
// itself observes the pre-update snapshot.
func TestUpdateSnapshotSemanticsUnderStreaming(t *testing.T) {
	e := New()
	p, err := e.Compile(`(insert node <new/> into /library, count(//new))`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := markup.Parse(`<library><book/></library>`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(RunConfig{ContextItem: xdm.NewNode(d)})
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatSequence(res.Value, markup.Serialize); got != "0" {
		t.Errorf("count(//new) during the run = %q, want 0 (snapshot)", got)
	}
	if res.Updates != 1 {
		t.Errorf("applied updates = %d, want 1", res.Updates)
	}
	if !strings.Contains(markup.Serialize(d), "<new") {
		t.Errorf("insert was not applied at end of run: %s", markup.Serialize(d))
	}
}

// TestProfilerProvesEarlyExit: the items-pulled counter shows that
// fn:exists stopped after one item even though the path ranges over
// the whole document.
func TestProfilerProvesEarlyExit(t *testing.T) {
	e := New()
	p, err := e.Compile(`fn:exists(//book)`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := markup.Parse(libraryXML)
	if err != nil {
		t.Fatal(err)
	}
	prof := runtime.NewProfiler()
	if _, err := p.Run(RunConfig{ContextItem: xdm.NewNode(d), Profiler: prof}); err != nil {
		t.Fatal(err)
	}
	if n := prof.ItemsFor("Path"); n < 1 || n > 2 {
		t.Errorf("items pulled through Path = %d, want 1 (early exit); profile:\n%s", n, prof.Format())
	}
	if !strings.Contains(prof.Format(), "items") {
		t.Errorf("profile format lacks items column:\n%s", prof.Format())
	}
}

// TestQueryBudgetSteps: a run exceeding MaxSteps fails with
// ErrBudgetExceeded.
func TestQueryBudgetSteps(t *testing.T) {
	e := New()
	p, err := e.Compile(`count((1 to 1000000)[. mod 7 = 0])`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(RunConfig{MaxSteps: 1000}); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
	// The same query inside the budget succeeds.
	if _, err := p.Run(RunConfig{MaxSteps: 100_000_000}); err != nil {
		t.Errorf("within budget: %v", err)
	}
	// No budget configured: unlimited.
	if _, err := p.Run(RunConfig{}); err != nil {
		t.Errorf("no budget: %v", err)
	}
}

// TestQueryBudgetTimeout: a run exceeding its wall-clock budget fails
// with ErrBudgetExceeded.
func TestQueryBudgetTimeout(t *testing.T) {
	e := New()
	p, err := e.Compile(`count((1 to 9000000)[. mod 3 = 0])`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(RunConfig{Timeout: 2 * time.Millisecond}); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
}

// TestBudgetCoversPureTreeWalks: budget steps are consumed by the
// streaming tree walk itself, not only by expression evaluations, so a
// query that walks a large document inside a single path expression
// still trips.
func TestBudgetCoversPureTreeWalks(t *testing.T) {
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < 5000; i++ {
		b.WriteString("<item/>")
	}
	b.WriteString("</root>")
	d, err := markup.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	p, err := e.Compile(`count(//item)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(RunConfig{ContextItem: xdm.NewNode(d), MaxSteps: 100}); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
}
