package xquery

import (
	"errors"
	"testing"

	"repro/internal/xquery/analysis"
)

// TestAnalyzeFacade covers Engine.Analyze end to end: a browser-profile
// engine statically rejects fn:put and reports warnings on clean-ish
// programs.
func TestAnalyzeFacade(t *testing.T) {
	e := New(WithBrowserProfile())
	res, err := e.Analyze(`fn:put(<a/>, "out.xml")`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasErrors() {
		t.Fatalf("fn:put not rejected: %+v", res.Diagnostics)
	}
	if res.Diagnostics[0].Code != analysis.CodePutBlocked {
		t.Errorf("code = %s, want %s", res.Diagnostics[0].Code, analysis.CodePutBlocked)
	}

	res, err = e.Analyze(`let $unused := 1 return 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.HasErrors() || len(res.Diagnostics) != 1 || res.Diagnostics[0].Code != analysis.CodeUnusedVar {
		t.Errorf("diagnostics = %+v, want one %s warning", res.Diagnostics, analysis.CodeUnusedVar)
	}

	if _, err := e.Analyze(`let $x :=`); err == nil {
		t.Error("syntax error did not fail Analyze")
	}
}

// TestRunStrict checks RunConfig.Strict on a compiled program: errors
// block the run with an AnalysisError, warnings ride along on the
// Result.
func TestRunStrict(t *testing.T) {
	e := New()
	prog := e.MustCompile(`1 + (delete node /a)`)
	if _, err := prog.Run(RunConfig{Sequential: true, Strict: true}); !errors.Is(err, ErrAnalysisFailed) {
		t.Fatalf("err = %v, want ErrAnalysisFailed", err)
	}
	var ae *AnalysisError
	_, err := prog.Run(RunConfig{Sequential: true, Strict: true})
	if !errors.As(err, &ae) || len(ae.Diagnostics) == 0 || ae.Diagnostics[0].Code != analysis.CodeMisplacedUpdate {
		t.Fatalf("err = %v, want AnalysisError with %s", err, analysis.CodeMisplacedUpdate)
	}

	warn := e.MustCompile(`let $unused := 1 return 42`)
	res, err := warn.Run(RunConfig{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) != 1 || res.Diagnostics[0].Code != analysis.CodeUnusedVar {
		t.Errorf("Diagnostics = %+v, want one %s warning", res.Diagnostics, analysis.CodeUnusedVar)
	}
	if len(res.Value) != 1 {
		t.Errorf("result length = %d", len(res.Value))
	}

	// Without Strict the same program runs silently.
	res, err = warn.Run(RunConfig{})
	if err != nil || len(res.Diagnostics) != 0 {
		t.Errorf("non-strict run: err = %v, diagnostics = %+v", err, res.Diagnostics)
	}
}

// TestCacheStrictRejection is the acceptance check that Strict keeps
// bad programs out of the shared cache: after a strict rejection the
// cache holds no program for that source.
func TestCacheStrictRejection(t *testing.T) {
	e := New(WithBrowserProfile())
	c := NewCache(8)
	bad := `fn:put(<a/>, "out.xml")`

	for i := 0; i < 2; i++ {
		_, err := c.EvalQuery(e, bad, RunConfig{Strict: true, Sequential: true})
		if !errors.Is(err, ErrAnalysisFailed) {
			t.Fatalf("attempt %d: err = %v, want ErrAnalysisFailed", i, err)
		}
	}
	if got := c.Stats().Compiles; got != 0 {
		t.Errorf("%d compilations after strict rejections, want 0 (program kept out of the cache)", got)
	}

	// The same source is admitted when Strict is off...
	if _, err := c.Compile(e, bad); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Compiles; got != 1 {
		t.Fatalf("%d compilations, want 1", got)
	}
	// ...but strict callers still refuse to run the now-cached program.
	if _, _, err := c.CompileStrict(e, bad); !errors.Is(err, ErrAnalysisFailed) {
		t.Errorf("cached program not rejected: %v", err)
	}
}

// TestCacheStrictMemoisation checks that warnings survive caching and
// analysis happens once per entry, not once per run.
func TestCacheStrictMemoisation(t *testing.T) {
	e := New()
	c := NewCache(8)
	src := `let $unused := 1 return 7`

	for i := 0; i < 3; i++ {
		res, err := c.EvalQuery(e, src, RunConfig{Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Diagnostics) != 1 || res.Diagnostics[0].Code != analysis.CodeUnusedVar {
			t.Fatalf("run %d: Diagnostics = %+v", i, res.Diagnostics)
		}
	}
	st := c.Stats()
	if st.Compiles != 1 || st.ProgramHits < 2 {
		t.Errorf("stats = %+v, want one compile then hits", st)
	}
}

// TestCacheStrictBudgetDiagnostic: a tiny MaxSteps budget surfaces the
// XQ0301 estimate warning without failing the run (the run itself stays
// under the real step budget).
func TestCacheStrictBudgetDiagnostic(t *testing.T) {
	e := New()
	c := NewCache(8)
	res, err := c.EvalQuery(e, `for $i in 1 to 50 return $i`, RunConfig{Strict: true, MaxSteps: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("unexpected diagnostic under a generous budget: %v", d)
	}

	res2, err := c.EvalQuery(e, `for $i in 1 to 40 return $i`, RunConfig{Strict: true, MaxSteps: 30})
	if err == nil {
		// The estimate warning must be present whether or not the run
		// itself survived the budget.
		found := false
		for _, d := range res2.Diagnostics {
			if d.Code == analysis.CodeCostBudget {
				found = true
			}
		}
		if !found {
			t.Errorf("no %s diagnostic: %+v", analysis.CodeCostBudget, res2.Diagnostics)
		}
	} else if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v", err)
	}
}
