package update

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/dom/index"
	"repro/internal/markup"
)

// FuzzPULPartition drives the partitioner against the serial oracle:
// an arbitrary byte string is decoded into a pending update list, the
// same list is built against two parses of one document, and the
// serial Apply and ApplyParallel results must agree — same error
// presence, byte-identical live documents (after rollback too).
// Elimination is exercised from the input's first byte; eliminable()
// guarantees it never changes failure behaviour, so comparing error
// presence stays valid with it on.
func FuzzPULPartition(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4})
	f.Add([]byte{1, 7, 0, 7, 2, 7, 9, 3})
	f.Add([]byte{0, 8, 1, 8, 10, 4, 10, 4})
	f.Add([]byte{1, 0, 5, 1, 6, 2, 7, 3, 8, 4, 9, 5, 10, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		const src = `<r><a>one</a><b k="v"><b1/><b2>two</b2></b><c/><d><d1/></d></r>`
		docS, err := markup.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		docP, _ := markup.Parse(src)
		nodesS, nodesP := collectNodes(docS), collectNodes(docP)
		if len(nodesS) != len(nodesP) {
			t.Fatal("clone node counts differ")
		}

		eliminate := len(data) > 0 && data[0]&1 == 1
		if len(data) > 1 {
			data = data[1:]
		}
		ps, pp := &PUL{}, &PUL{}
		for i := 0; i+1 < len(data) && i < 24; i += 2 {
			kind := Kind(data[i]%10) + 1
			ni := int(data[i+1]) % len(nodesS)
			prS := fuzzPrim(kind, nodesS[ni], i)
			prP := fuzzPrim(kind, nodesP[ni], i)
			errS, errP := ps.Add(prS), pp.Add(prP)
			if (errS == nil) != (errP == nil) {
				t.Fatalf("Add diverged: %v vs %v", errS, errP)
			}
		}

		index.For(docS)
		index.For(docP)
		errS := ps.Apply(nil)
		errP := pp.ApplyParallel(nil, ParallelConfig{MinPrims: 1, Eliminate: eliminate})
		if (errS == nil) != (errP == nil) {
			t.Fatalf("apply error mismatch: serial %v, parallel %v", errS, errP)
		}
		s, p := markup.Serialize(docS), markup.Serialize(docP)
		if s != p {
			t.Fatalf("documents diverged (err=%v):\n serial   %s\n parallel %s", errS, s, p)
		}
	})
}

// fuzzPrim builds one primitive of the given kind against n, with
// deterministic content derived from the list position.
func fuzzPrim(kind Kind, n *dom.Node, pos int) Primitive {
	pr := Primitive{Kind: kind, Target: n}
	switch kind {
	case InsertInto, InsertIntoFirst, InsertIntoLast, InsertBefore, InsertAfter:
		pr.Content = []*dom.Node{dom.NewElement(dom.Name(fuzzName(pos)))}
	case InsertAttributes:
		pr.Content = []*dom.Node{dom.NewAttr(dom.Name(fuzzName(pos)), "v")}
	case ReplaceNode:
		if n.Type == dom.AttributeNode {
			pr.Content = []*dom.Node{dom.NewAttr(dom.Name(fuzzName(pos)), "w")}
		} else {
			pr.Content = []*dom.Node{dom.NewElement(dom.Name(fuzzName(pos)))}
		}
	case ReplaceValue:
		pr.Value = fuzzName(pos)
	case Rename:
		pr.Name = dom.Name(fuzzName(pos))
	}
	return pr
}

func fuzzName(pos int) string {
	return string(rune('p' + pos%8))
}

// collectNodes returns the document's nodes in document order —
// elements, attributes and texts — so a byte index picks the same node
// in two parses of one source.
func collectNodes(doc *dom.Node) []*dom.Node {
	var out []*dom.Node
	var walk func(n *dom.Node)
	walk = func(n *dom.Node) {
		out = append(out, n)
		for _, a := range n.Attrs() {
			out = append(out, a)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	for _, c := range doc.Children() {
		walk(c)
	}
	return out
}
