// partition.go is the dynamic half of the FLUX-style update-independence
// analysis (Cheney; see PAPERS.md): before a pending update list
// applies, the partitioner proves — with the pre/end document-order
// numbering from internal/dom/index — that sets of primitives touch
// disjoint subtrees, drops primitives whose whole effect lands in a
// subtree a later primitive detaches anyway (dead updates), and applies
// the independent groups concurrently on a bounded worker pool. The
// atomicity contract of Apply is preserved exactly: every group keeps
// its own undo log, and a failure anywhere unwinds all groups in
// reverse group order to the byte-identical pre-apply state.
//
// Independence argument, in brief. Each primitive is assigned a region
// node r: the target itself for the self-contained kinds (insertInto*,
// insertAttributes, replaceValue, rename), the target's parent for the
// kinds that edit a sibling list (insertBefore/After, delete,
// replaceNode). Every write a primitive performs — child-slice edits,
// attribute-list edits, parent-pointer writes — lands on nodes inside
// r's pre-apply subtree span, plus freshly constructed content nodes
// owned by this list. Spans form a laminar family (two subtrees either
// nest or are disjoint), so sorting regions by pre number and merging
// while a region starts inside the running group's span yields maximal
// groups whose spans are pairwise disjoint. An ancestor of one group's
// region can never lie inside another group's region (containment would
// have merged them), so reads up the tree (Root, cycle checks) never
// observe another group's writes. The only cross-group shared word is
// the root's version counter, which is atomic.
package update

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dom"
	"repro/internal/dom/index"
	"repro/internal/faultpoint"
)

// Defaults for ParallelConfig.
const (
	// DefaultMaxWorkers bounds the group-apply pool. It is a fixed
	// small constant, not NumCPU: the win parallel apply chases is
	// overlapping per-primitive stalls (listener side effects, host
	// hooks, modelled layout latency), which pays off even on one core.
	DefaultMaxWorkers = 4
	// DefaultMinPrims is the smallest pending list worth an index
	// build: when no fresh document-order index is cached, lists below
	// this size apply serially instead of paying an O(document) walk
	// to prove independence of a handful of primitives.
	DefaultMinPrims = 4
)

// ParallelConfig parameterises ApplyParallel. The zero value is valid:
// defaults fill in, elimination stays off.
type ParallelConfig struct {
	// MaxWorkers bounds the goroutines applying groups concurrently;
	// <= 0 uses DefaultMaxWorkers, 1 forces sequential group apply.
	MaxWorkers int
	// MinPrims is the minimum list size that justifies building a
	// document-order index when none is cached; <= 0 uses
	// DefaultMinPrims.
	MinPrims int
	// Eliminate enables the observability-gated dead-update rules:
	// primitives whose entire effect lands inside a subtree that a
	// surviving delete/replace detaches are dropped before apply. The
	// live documents end up byte-identical either way; what changes is
	// the state of the detached subtrees, so callers must only set
	// this when nothing can observe them (no node items in the result,
	// no node-bearing external variables, no reused context). The
	// unconditional rules — a delete of an already-replaced target, a
	// duplicate delete — are always applied: those primitives were
	// exact no-ops.
	Eliminate bool
	// Stats, when non-nil, receives this call's partition outcome.
	Stats *ApplyStats
}

// ApplyStats reports one ApplyParallel call's partition outcome.
type ApplyStats struct {
	// Groups is how many independent groups the list split into (1
	// when no independence was provable; 0 for an empty list).
	Groups int
	// Eliminated is how many dead primitives were dropped.
	Eliminated int
	// Parallel reports whether groups actually applied concurrently.
	Parallel bool
}

// Process-wide partition counters, surfaced in serve.Metrics.Updates.
var (
	statEliminated      atomic.Int64
	statGroups          atomic.Int64
	statParallelApplies atomic.Int64
)

// Stats is a snapshot of the partitioner's process-wide counters.
type Stats struct {
	// Eliminated counts dead primitives dropped before apply.
	Eliminated int64
	// Groups counts independent groups applied (every ApplyParallel
	// contributes its group count, so Groups/applies is the mean
	// partition width).
	Groups int64
	// ParallelApplies counts ApplyParallel calls that ran at least two
	// groups concurrently.
	ParallelApplies int64
}

// Snapshot returns the current partition counters.
func Snapshot() Stats {
	return Stats{
		Eliminated:      statEliminated.Load(),
		Groups:          statGroups.Load(),
		ParallelApplies: statParallelApplies.Load(),
	}
}

// ApplyParallel performs all pending updates with the same
// all-or-nothing contract as Apply, after running the independence
// analysis: dead primitives are dropped, provably disjoint groups
// apply concurrently (bounded by cfg.MaxWorkers), and a failure in any
// group rolls every group back — reverse group order, each undo log in
// strict reverse — leaving the documents serialisation-identical to
// their pre-apply state with the pending list intact. onChange fires
// once per applied primitive after the whole list has committed, in
// the same order serial Apply reports. RunConfig.SerialUpdates is the
// escape hatch back to Apply, kept as the differential oracle.
func (p *PUL) ApplyParallel(onChange func(Primitive), cfg ParallelConfig) error {
	maxWorkers := cfg.MaxWorkers
	if maxWorkers <= 0 {
		maxWorkers = DefaultMaxWorkers
	}
	minPrims := cfg.MinPrims
	if minPrims <= 0 {
		minPrims = DefaultMinPrims
	}
	plan := partition(p.prims, cfg.Eliminate, minPrims)
	versions := snapshotVersions(p.prims)

	var logs []*undoLog
	fail := func(err error) error {
		rollbacks.Add(1)
		return rollback(err, logs, versions)
	}

	stats := ApplyStats{Groups: len(plan.groups), Eliminated: plan.eliminated}
	if len(plan.groups) > 1 && maxWorkers > 1 {
		stats.Parallel = true
		logs = make([]*undoLog, len(plan.groups))
		errs := make([]error, len(plan.groups))
		sem := make(chan struct{}, maxWorkers)
		var wg sync.WaitGroup
		for i := range plan.groups {
			logs[i] = &undoLog{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				errs[i] = applyGroup(plan.groups[i], logs[i])
			}(i)
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return fail(err)
		}
	} else {
		u := &undoLog{}
		logs = []*undoLog{u}
		for _, g := range plan.groups {
			if err := applyGroup(g, u); err != nil {
				return fail(err)
			}
		}
	}

	statEliminated.Add(int64(plan.eliminated))
	statGroups.Add(int64(len(plan.groups)))
	if stats.Parallel {
		statParallelApplies.Add(1)
	}
	if cfg.Stats != nil {
		*cfg.Stats = stats
	}
	if onChange != nil {
		for _, pr := range orderedPrims(plan.survivors) {
			onChange(pr)
		}
	}
	p.Reset()
	return nil
}

// applyGroup applies one group's primitives in the Update Facility's
// phase order, recording inverses into u. Within a group the relative
// order equals the full serial order, and across disjoint groups the
// operations commute, so any interleaving produces the serial result.
func applyGroup(prims []Primitive, u *undoLog) error {
	for _, pr := range orderedPrims(prims) {
		if err := faultpoint.Hit(faultpoint.PointUpdateApply); err != nil {
			return err
		}
		if err := applyOne(pr, u); err != nil {
			return err
		}
	}
	return nil
}

// primPlan is a partition outcome: the independent groups (each in
// original list order) and the survivors of dead-update elimination.
type primPlan struct {
	groups     [][]Primitive
	survivors  []Primitive
	eliminated int
}

// regionNode maps a primitive to the node whose pre-apply subtree
// bounds all of its writes: the target for self-contained kinds, the
// target's parent for sibling-list edits. A parentless target of a
// sibling-list kind (which applies as an error or a no-op) conservatively
// regions at the target itself.
func regionNode(pr Primitive) *dom.Node {
	switch pr.Kind {
	case InsertBefore, InsertAfter, Delete, ReplaceNode:
		if p := pr.Target.Parent(); p != nil {
			return p
		}
	}
	return pr.Target
}

// eliminable reports whether pr provably cannot fail at apply time,
// whatever else the list does — the precondition for dropping it.
// Eliminating a primitive that would have failed would convert a
// failing (and fully rolled back) apply into a succeeding one, which
// the serial oracle could observe. Sibling-relative inserts and
// element replaceNode stay ineligible: an earlier-phase primitive in
// the same subtree can detach their reference node and fail them.
func eliminable(pr Primitive) bool {
	switch pr.Kind {
	case Delete:
		return true
	case ReplaceValue:
		return pr.Target.Type != dom.DocumentNode
	case Rename:
		// Attribute renames stay ineligible even though they cannot
		// fail: setAttr resolves attributes by name on the owner
		// element, so renaming a doomed attribute is observable to a
		// surviving insertAttributes on its (live) owner. Element and
		// PI names feed no lookup in applyOne.
		t := pr.Target.Type
		return t == dom.ElementNode || t == dom.ProcessingInstructionNode
	case InsertInto, InsertIntoFirst, InsertIntoLast:
		if pr.Target.Type != dom.ElementNode {
			return false
		}
		for _, c := range pr.Content {
			if c == nil || c.Type == dom.DocumentNode {
				return false
			}
		}
		return true
	case InsertAttributes:
		if pr.Target.Type != dom.ElementNode {
			return false
		}
		for _, c := range pr.Content {
			if c == nil || c.Type != dom.AttributeNode {
				return false
			}
		}
		return true
	}
	return false
}

// partition runs dead-update elimination and independence grouping
// over a pending list. It never errs: when independence cannot be
// proven (no index, unknown nodes, content aliasing) it degrades to a
// single group, which applies exactly like the serial path.
func partition(prims []Primitive, eliminate bool, minPrims int) primPlan {
	drop := make([]bool, len(prims))
	eliminated := 0

	// Unconditionally dead primitives — exact no-ops in the serial
	// order. A delete of a target some replaceNode detaches in phase 3
	// finds it already parentless in phase 4; a second delete of the
	// same target finds it detached by the first.
	replaced := map[*dom.Node]bool{}
	for _, pr := range prims {
		if pr.Kind == ReplaceNode {
			replaced[pr.Target] = true
		}
	}
	deleted := map[*dom.Node]bool{}
	for i, pr := range prims {
		if pr.Kind != Delete {
			continue
		}
		if replaced[pr.Target] || deleted[pr.Target] {
			drop[i] = true
			eliminated++
			continue
		}
		deleted[pr.Target] = true
	}

	// Content aliasing guard: parallel safety assumes content nodes
	// are fresh detached copies (the runtime's evalContentNodes
	// guarantees it). A hand-built list may attach a tree that other
	// primitives target, or re-insert an attached node; both force the
	// fully serial single group.
	targetRoots := map[*dom.Node]bool{}
	for _, pr := range prims {
		targetRoots[pr.Target.Root()] = true
	}
	for _, pr := range prims {
		for _, c := range pr.Content {
			if c.Parent() != nil || targetRoots[c] {
				return singleGroup(prims, drop, eliminated)
			}
		}
	}

	// Bucket survivors by target tree (first-occurrence order): whole
	// trees are trivially independent of each other.
	var rootOrder []*dom.Node
	buckets := map[*dom.Node][]int{}
	for i, pr := range prims {
		if drop[i] {
			continue
		}
		r := pr.Target.Root()
		if _, ok := buckets[r]; !ok {
			rootOrder = append(rootOrder, r)
		}
		buckets[r] = append(buckets[r], i)
	}

	var groupIdx [][]int
	for _, root := range rootOrder {
		idxs := buckets[root]
		if len(idxs) == 1 {
			groupIdx = append(groupIdx, idxs)
			continue
		}
		d := index.Fresh(root)
		if d == nil && len(idxs) >= minPrims {
			d = index.For(root)
		}
		if d == nil {
			groupIdx = append(groupIdx, idxs)
			continue
		}

		type region struct {
			i        int
			pre, end uint64
		}
		spans := make([]region, 0, len(idxs))
		known := true
		for _, i := range idxs {
			pre, end, ok := d.Span(regionNode(prims[i]))
			if !ok {
				known = false
				break
			}
			spans = append(spans, region{i: i, pre: pre, end: end})
		}
		if !known {
			groupIdx = append(groupIdx, idxs)
			continue
		}

		if eliminate {
			// Observability-gated rule: a primitive whose region lies
			// inside the subtree a surviving delete/replaceNode
			// detaches only ever changes that detached subtree — the
			// live document comes out identical without it. The killer
			// itself survives by construction: its region is the
			// target's parent, strictly above the detached span.
			//
			// A killer span may only eliminate when every primitive
			// regioned inside it is infallible (eliminable). Dropping
			// an infallible primitive from a span that also holds a
			// fallible one could remove the very mutation that made
			// the fallible survivor fail (a replaceValue detaching the
			// reference node of a later replaceNode), turning a failing
			// serial apply into a succeeding parallel one. Such spans
			// are tainted and eliminate nothing.
			type killSpan struct {
				pre, end uint64
				tainted  bool
			}
			var killers []killSpan
			for _, i := range idxs {
				pr := prims[i]
				if (pr.Kind == Delete || pr.Kind == ReplaceNode) && pr.Target.Parent() != nil {
					if pre, end, ok := d.Span(pr.Target); ok {
						killers = append(killers, killSpan{pre: pre, end: end})
					}
				}
			}
			for ki := range killers {
				for _, rs := range spans {
					if killers[ki].pre <= rs.pre && rs.pre <= killers[ki].end && !eliminable(prims[rs.i]) {
						killers[ki].tainted = true
						break
					}
				}
			}
			kept := spans[:0]
			for _, rs := range spans {
				dead := false
				if eliminable(prims[rs.i]) {
					for _, k := range killers {
						if !k.tainted && k.pre <= rs.pre && rs.pre <= k.end {
							dead = true
							break
						}
					}
				}
				if dead {
					drop[rs.i] = true
					eliminated++
					continue
				}
				kept = append(kept, rs)
			}
			spans = kept
		}

		// Laminar merge: sorted by pre number, a region starting
		// inside the running group's span nests there; otherwise it
		// starts a new, provably disjoint group.
		sort.Slice(spans, func(a, b int) bool { return spans[a].pre < spans[b].pre })
		var cur []int
		var curEnd uint64
		flush := func() {
			if len(cur) > 0 {
				sort.Ints(cur)
				groupIdx = append(groupIdx, cur)
			}
		}
		for _, rs := range spans {
			if len(cur) > 0 && rs.pre <= curEnd {
				cur = append(cur, rs.i)
				if rs.end > curEnd {
					curEnd = rs.end
				}
				continue
			}
			flush()
			cur = []int{rs.i}
			curEnd = rs.end
		}
		flush()
	}

	plan := primPlan{eliminated: eliminated}
	for _, idxs := range groupIdx {
		g := make([]Primitive, 0, len(idxs))
		for _, i := range idxs {
			g = append(g, prims[i])
		}
		plan.groups = append(plan.groups, g)
	}
	for i, pr := range prims {
		if !drop[i] {
			plan.survivors = append(plan.survivors, pr)
		}
	}
	return plan
}

// singleGroup is the degraded plan: every surviving primitive in one
// group, applied serially.
func singleGroup(prims []Primitive, drop []bool, eliminated int) primPlan {
	plan := primPlan{eliminated: eliminated}
	for i, pr := range prims {
		if !drop[i] {
			plan.survivors = append(plan.survivors, pr)
		}
	}
	if len(plan.survivors) > 0 {
		plan.groups = [][]Primitive{plan.survivors}
	}
	return plan
}
