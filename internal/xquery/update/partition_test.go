package update

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/dom"
	"repro/internal/dom/index"
	"repro/internal/faultpoint"
	"repro/internal/markup"
)

func TestAddRejectsNilTarget(t *testing.T) {
	p := &PUL{}
	err := p.Add(Primitive{Kind: Delete})
	if !errors.Is(err, ErrNilTarget) {
		t.Fatalf("Add(nil target) = %v, want ErrNilTarget", err)
	}
	if !p.Empty() {
		t.Fatal("rejected primitive entered the list")
	}
	// Merge validates through Add, so a hand-built list with a nil
	// target cannot cross into a healthy one.
	q := &PUL{prims: []Primitive{{Kind: Rename, Name: dom.Name("x")}}}
	if err := p.Merge(q); !errors.Is(err, ErrNilTarget) {
		t.Fatalf("Merge(nil target) = %v, want ErrNilTarget", err)
	}
}

// prims builds the same primitive list against a document, so serial
// and parallel applies can run over two parses of one source.
type primSpec func(t *testing.T, doc *dom.Node, p *PUL)

// runBothApplies parses src twice, applies build's list serially on
// one tree and in parallel on the other, and asserts identical
// serialisations, identical error presence and identical onChange
// sequences (when elimination is off).
func runBothApplies(t *testing.T, src string, cfg ParallelConfig, build primSpec) (serial, parallel string, stats ApplyStats) {
	t.Helper()
	docS, docP := tree(t, src), tree(t, src)
	ps, pp := &PUL{}, &PUL{}
	build(t, docS, ps)
	build(t, docP, pp)

	var seqS, seqP []string
	errS := ps.Apply(func(pr Primitive) { seqS = append(seqS, pr.Kind.String()) })
	cfg.Stats = &stats
	errP := pp.ApplyParallel(func(pr Primitive) { seqP = append(seqP, pr.Kind.String()) }, cfg)
	if (errS == nil) != (errP == nil) {
		t.Fatalf("error mismatch: serial %v, parallel %v", errS, errP)
	}
	serial, parallel = markup.Serialize(docS), markup.Serialize(docP)
	if serial != parallel {
		t.Fatalf("trees diverged:\n serial   %s\n parallel %s", serial, parallel)
	}
	if stats.Eliminated == 0 && errS == nil {
		if fmt.Sprint(seqS) != fmt.Sprint(seqP) {
			t.Fatalf("onChange order diverged:\n serial   %v\n parallel %v", seqS, seqP)
		}
	}
	return serial, parallel, stats
}

// TestParallelMatchesSerialDisjoint partitions self-contained updates
// on disjoint subtrees into independent groups and still produces the
// serial result.
func TestParallelMatchesSerialDisjoint(t *testing.T) {
	const src = `<r><a>one</a><b k="v"><b1/></b><c/><d/></r>`
	_, _, stats := runBothApplies(t, src, ParallelConfig{MinPrims: 1}, func(t *testing.T, doc *dom.Node, p *PUL) {
		add := func(pr Primitive) {
			t.Helper()
			if err := p.Add(pr); err != nil {
				t.Fatal(err)
			}
		}
		add(Primitive{Kind: ReplaceValue, Target: el(t, doc, "a"), Value: "two"})
		add(Primitive{Kind: Rename, Target: el(t, doc, "b1"), Name: dom.Name("bb")})
		add(Primitive{Kind: InsertInto, Target: el(t, doc, "c"),
			Content: []*dom.Node{dom.NewElement(dom.Name("x"))}})
		add(Primitive{Kind: InsertAttributes, Target: el(t, doc, "d"),
			Content: []*dom.Node{dom.NewAttr(dom.Name("k"), "w")}})
	})
	if stats.Groups != 4 {
		t.Errorf("groups = %d, want 4", stats.Groups)
	}
	if !stats.Parallel {
		t.Error("parallel path did not engage")
	}
}

// TestPartitionMergesOverlappingRegions keeps sibling-list edits under
// one parent in one group: delete and insertBefore around the same
// parent region on one side, an independent rename on the other.
func TestPartitionMergesOverlappingRegions(t *testing.T) {
	const src = `<r><a><a1/><a2/></a><b/></r>`
	_, _, stats := runBothApplies(t, src, ParallelConfig{MinPrims: 1}, func(t *testing.T, doc *dom.Node, p *PUL) {
		_ = p.Add(Primitive{Kind: Delete, Target: el(t, doc, "a1")})
		_ = p.Add(Primitive{Kind: InsertBefore, Target: el(t, doc, "a2"),
			Content: []*dom.Node{dom.NewElement(dom.Name("m"))}})
		_ = p.Add(Primitive{Kind: Rename, Target: el(t, doc, "b"), Name: dom.Name("b2")})
	})
	if stats.Groups != 2 {
		t.Errorf("groups = %d, want 2 (a-subtree edits together, b alone)", stats.Groups)
	}
}

// TestPartitionAcrossDocuments proves updates on different trees are
// grouped per tree without any index build.
func TestPartitionAcrossDocuments(t *testing.T) {
	doc1 := tree(t, `<r><a>x</a></r>`)
	doc2 := tree(t, `<q><b>y</b></q>`)
	p := &PUL{}
	_ = p.Add(Primitive{Kind: ReplaceValue, Target: el(t, doc1, "a"), Value: "1"})
	_ = p.Add(Primitive{Kind: ReplaceValue, Target: el(t, doc2, "b"), Value: "2"})
	var stats ApplyStats
	if err := p.ApplyParallel(nil, ParallelConfig{Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.Groups != 2 || !stats.Parallel {
		t.Errorf("stats = %+v, want 2 parallel groups", stats)
	}
	if got := markup.Serialize(doc1); got != `<r><a>1</a></r>` {
		t.Errorf("doc1 = %s", got)
	}
	if got := markup.Serialize(doc2); got != `<q><b>2</b></q>` {
		t.Errorf("doc2 = %s", got)
	}
}

// TestUnconditionalElimination drops exact no-ops even with Eliminate
// off: a delete of a replaced target and a duplicate delete.
func TestUnconditionalElimination(t *testing.T) {
	const src = `<r><a/><b/></r>`
	_, _, stats := runBothApplies(t, src, ParallelConfig{MinPrims: 1}, func(t *testing.T, doc *dom.Node, p *PUL) {
		a, b := el(t, doc, "a"), el(t, doc, "b")
		_ = p.Add(Primitive{Kind: ReplaceNode, Target: a,
			Content: []*dom.Node{dom.NewElement(dom.Name("a2"))}})
		_ = p.Add(Primitive{Kind: Delete, Target: a}) // replace-then-delete: dead
		_ = p.Add(Primitive{Kind: Delete, Target: b})
		_ = p.Add(Primitive{Kind: Delete, Target: b}) // duplicate: dead
	})
	if stats.Eliminated != 2 {
		t.Errorf("eliminated = %d, want 2", stats.Eliminated)
	}
}

// TestGatedElimination drops an insert whose whole effect lands in a
// deleted subtree — live tree identical to serial — but only when the
// caller vouches nothing observes detached nodes.
func TestGatedElimination(t *testing.T) {
	const src = `<r><a><a1>t</a1></a><b/></r>`
	build := func(t *testing.T, doc *dom.Node, p *PUL) {
		_ = p.Add(Primitive{Kind: InsertInto, Target: el(t, doc, "a1"),
			Content: []*dom.Node{dom.NewElement(dom.Name("x"))}})
		_ = p.Add(Primitive{Kind: ReplaceValue, Target: el(t, doc, "a"), Value: "gone"})
		_ = p.Add(Primitive{Kind: Delete, Target: el(t, doc, "a")})
		_ = p.Add(Primitive{Kind: Rename, Target: el(t, doc, "b"), Name: dom.Name("b2")})
	}
	_, _, off := runBothApplies(t, src, ParallelConfig{MinPrims: 1}, build)
	if off.Eliminated != 0 {
		t.Errorf("eliminated without opt-in: %d", off.Eliminated)
	}
	_, _, on := runBothApplies(t, src, ParallelConfig{MinPrims: 1, Eliminate: true}, build)
	// insertInto a1 and replaceValue a both die inside a's deleted
	// span; the delete itself and the rename survive.
	if on.Eliminated != 2 {
		t.Errorf("eliminated = %d, want 2", on.Eliminated)
	}
}

// TestEliminationNeverDropsFailingPrimitive pins the guard: a rename
// of a text node inside a deleted subtree fails the serial apply, so
// the parallel path must not eliminate it into a success.
func TestEliminationNeverDropsFailingPrimitive(t *testing.T) {
	const src = `<r><a>text</a></r>`
	docS, docP := tree(t, src), tree(t, src)
	build := func(doc *dom.Node, p *PUL) {
		a := el(t, doc, "a")
		_ = p.Add(Primitive{Kind: Rename, Target: a.FirstChild(), Name: dom.Name("x")})
		_ = p.Add(Primitive{Kind: Delete, Target: a})
	}
	ps, pp := &PUL{}, &PUL{}
	build(docS, ps)
	build(docP, pp)
	errS := ps.Apply(nil)
	errP := pp.ApplyParallel(nil, ParallelConfig{MinPrims: 1, Eliminate: true})
	if errS == nil || errP == nil {
		t.Fatalf("renaming a text node must fail both paths: serial %v, parallel %v", errS, errP)
	}
	if s, p := markup.Serialize(docS), markup.Serialize(docP); s != p {
		t.Fatalf("rolled-back trees diverged:\n serial   %s\n parallel %s", s, p)
	}
}

// TestParallelRollback fails one group mid-apply and asserts the
// all-or-nothing contract across all groups: byte-identical documents,
// restored version counters, intact pending list, silent onChange —
// then a clean retry.
func TestParallelRollback(t *testing.T) {
	defer faultpoint.Reset()
	const src = `<r><a>one</a><b/><c/><d/></r>`
	doc := tree(t, src)
	before := markup.Serialize(doc)
	v0 := doc.Version()
	rb0 := Rollbacks()

	p := &PUL{}
	_ = p.Add(Primitive{Kind: ReplaceValue, Target: el(t, doc, "a"), Value: "two"})
	_ = p.Add(Primitive{Kind: Rename, Target: el(t, doc, "b"), Name: dom.Name("bb")})
	_ = p.Add(Primitive{Kind: InsertInto, Target: el(t, doc, "c"),
		Content: []*dom.Node{dom.NewElement(dom.Name("x"))}})
	_ = p.Add(Primitive{Kind: InsertInto, Target: el(t, doc, "d"),
		Content: []*dom.Node{dom.NewElement(dom.Name("y"))}})

	faultpoint.Enable(faultpoint.PointUpdateApply, faultpoint.Nth(3))
	calls := 0
	err := p.ApplyParallel(func(Primitive) { calls++ }, ParallelConfig{MinPrims: 1})
	if !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if calls != 0 {
		t.Errorf("onChange saw %d primitives of a rolled-back apply", calls)
	}
	if got := markup.Serialize(doc); got != before {
		t.Fatalf("document not restored:\n before %s\n  after %s", before, got)
	}
	if v := doc.Version(); v != v0 {
		t.Errorf("version = %d, want restored %d", v, v0)
	}
	if rb := Rollbacks(); rb != rb0+1 {
		t.Errorf("Rollbacks() = %d, want %d", rb, rb0+1)
	}
	if p.Empty() {
		t.Fatal("failed apply must keep the pending list")
	}

	faultpoint.Reset()
	if err := p.ApplyParallel(func(Primitive) { calls++ }, ParallelConfig{MinPrims: 1}); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls != 4 {
		t.Errorf("onChange calls = %d, want 4", calls)
	}
	if !p.Empty() {
		t.Error("successful apply must clear the list")
	}
}

// TestParallelRollbackSeededFault drives the seeded chaos trigger
// through parallel applies and asserts every failed apply restores the
// pre-apply serialisation exactly (the mid-parallel-apply entry of the
// chaos matrix, deterministic for a fixed seed).
func TestParallelRollbackSeededFault(t *testing.T) {
	defer faultpoint.Reset()
	const src = `<r><a>one</a><b k="v"/><c><c1/></c><d/></r>`
	for seed := uint64(1); seed <= 8; seed++ {
		faultpoint.Enable(faultpoint.PointUpdateApply, faultpoint.Seeded(seed, 0.3))
		doc := tree(t, src)
		before := markup.Serialize(doc)
		p := &PUL{}
		_ = p.Add(Primitive{Kind: ReplaceValue, Target: el(t, doc, "a"), Value: "two"})
		_ = p.Add(Primitive{Kind: InsertAttributes, Target: el(t, doc, "b"),
			Content: []*dom.Node{dom.NewAttr(dom.Name("k"), "w")}})
		_ = p.Add(Primitive{Kind: Delete, Target: el(t, doc, "c1")})
		_ = p.Add(Primitive{Kind: InsertInto, Target: el(t, doc, "d"),
			Content: []*dom.Node{dom.NewElement(dom.Name("x"))}})
		err := p.ApplyParallel(nil, ParallelConfig{MinPrims: 1})
		if err != nil {
			if got := markup.Serialize(doc); got != before {
				t.Fatalf("seed %d: not restored:\n before %s\n  after %s", seed, before, got)
			}
		} else if got := markup.Serialize(doc); got == before {
			t.Fatalf("seed %d: successful apply changed nothing", seed)
		}
		faultpoint.Disable(faultpoint.PointUpdateApply)
	}
}

// TestPartitionSkipsIndexForSmallLists pins the build heuristic: below
// MinPrims with no cached index the partitioner must not pay an index
// build; with a fresh index already cached it partitions for free.
func TestPartitionSkipsIndexForSmallLists(t *testing.T) {
	doc := tree(t, `<r><a>x</a><b>y</b></r>`)
	builds0 := index.Snapshot().Builds
	p := &PUL{}
	_ = p.Add(Primitive{Kind: ReplaceValue, Target: el(t, doc, "a"), Value: "1"})
	_ = p.Add(Primitive{Kind: ReplaceValue, Target: el(t, doc, "b"), Value: "2"})
	var stats ApplyStats
	if err := p.ApplyParallel(nil, ParallelConfig{Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if got := index.Snapshot().Builds; got != builds0 {
		t.Errorf("small list built an index (%d builds)", got-builds0)
	}
	if stats.Groups != 1 {
		t.Errorf("groups = %d, want 1 (no proof without an index)", stats.Groups)
	}

	// With a fresh index cached the same list partitions into 2.
	index.For(doc)
	p2 := &PUL{}
	_ = p2.Add(Primitive{Kind: ReplaceValue, Target: el(t, doc, "a"), Value: "3"})
	_ = p2.Add(Primitive{Kind: ReplaceValue, Target: el(t, doc, "b"), Value: "4"})
	if err := p2.ApplyParallel(nil, ParallelConfig{Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.Groups != 2 {
		t.Errorf("groups = %d, want 2 with a fresh index", stats.Groups)
	}
}

// TestPartitionContentAliasingForcesSerial pins the safety guard: a
// hand-built list inserting a tree that other primitives target must
// collapse to one serial group.
func TestPartitionContentAliasingForcesSerial(t *testing.T) {
	doc := tree(t, `<r><a/><b/></r>`)
	frag := dom.NewElement(dom.Name("frag"))
	x := dom.NewElement(dom.Name("x"))
	if err := frag.AppendChild(x); err != nil {
		t.Fatal(err)
	}
	p := &PUL{}
	_ = p.Add(Primitive{Kind: ReplaceValue, Target: x, Value: "w"})
	_ = p.Add(Primitive{Kind: InsertInto, Target: el(t, doc, "a"), Content: []*dom.Node{frag}})
	_ = p.Add(Primitive{Kind: Rename, Target: el(t, doc, "b"), Name: dom.Name("b2")})
	var stats ApplyStats
	if err := p.ApplyParallel(nil, ParallelConfig{MinPrims: 1, Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.Groups != 1 || stats.Parallel {
		t.Errorf("stats = %+v, want one serial group under content aliasing", stats)
	}
}

// TestRenameDuplicateAttributeRollback pins the XUDY0021-style check:
// a rename that would duplicate an attribute name fails the apply
// (serial and parallel alike) instead of poisoning the tree with a
// state the rollback machinery cannot restore.
func TestRenameDuplicateAttributeRollback(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		doc := tree(t, `<r><b k="v" p="w"/></r>`)
		before := markup.Serialize(doc)
		p := &PUL{}
		_ = p.Add(Primitive{Kind: InsertAttributes, Target: el(t, doc, "b"),
			Content: []*dom.Node{dom.NewAttr(dom.Name("q"), "x")}})
		_ = p.Add(Primitive{Kind: Rename, Target: el(t, doc, "b").AttrNode(dom.Name("k")),
			Name: dom.Name("p")})
		var err error
		if parallel {
			err = p.ApplyParallel(nil, ParallelConfig{MinPrims: 1})
		} else {
			err = p.Apply(nil)
		}
		if err == nil {
			t.Fatalf("parallel=%v: duplicate-attribute rename must fail", parallel)
		}
		if got := markup.Serialize(doc); got != before {
			t.Fatalf("parallel=%v: not restored:\n before %s\n  after %s", parallel, before, got)
		}
	}
}

// TestSnapshotCounters asserts the process-wide counters advance.
func TestSnapshotCounters(t *testing.T) {
	before := Snapshot()
	doc := tree(t, `<r><a>x</a><b><b1/></b></r>`)
	p := &PUL{}
	_ = p.Add(Primitive{Kind: ReplaceValue, Target: el(t, doc, "a"), Value: "1"})
	_ = p.Add(Primitive{Kind: Rename, Target: el(t, doc, "b"), Name: dom.Name("bb")})
	b1 := el(t, doc, "b1")
	_ = p.Add(Primitive{Kind: Delete, Target: b1})
	_ = p.Add(Primitive{Kind: Delete, Target: b1})
	if err := p.ApplyParallel(nil, ParallelConfig{MinPrims: 1}); err != nil {
		t.Fatal(err)
	}
	after := Snapshot()
	if after.Eliminated != before.Eliminated+1 {
		t.Errorf("Eliminated delta = %d, want 1", after.Eliminated-before.Eliminated)
	}
	if after.Groups <= before.Groups {
		t.Error("Groups did not advance")
	}
	if after.ParallelApplies != before.ParallelApplies+1 {
		t.Errorf("ParallelApplies delta = %d, want 1", after.ParallelApplies-before.ParallelApplies)
	}
}
