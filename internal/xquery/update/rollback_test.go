package update

import (
	"errors"
	"testing"

	"repro/internal/dom"
	"repro/internal/faultpoint"
	"repro/internal/markup"
)

// textChild returns the first text child of r (the "hello" node in the
// rollback fixture).
func textChild(t *testing.T, n *dom.Node) *dom.Node {
	t.Helper()
	for _, c := range n.Children() {
		if c.Type == dom.TextNode {
			return c
		}
	}
	t.Fatal("no text child")
	return nil
}

// TestAtomicRollbackPerKind drives one failing primitive of every Kind
// through Apply, preceded by a successful insert, and asserts the
// all-or-nothing contract: the document serialises byte-identical to
// its pre-apply state, the version counter is restored, the rollback
// counter advances and no primitive is ever reported to onChange.
func TestAtomicRollbackPerKind(t *testing.T) {
	const src = `<r a1="1" a2="2">hello<a k="v"><b/></a><c/></r>`
	cases := []struct {
		kind Kind
		// fail builds the failing primitive against the parsed fixture.
		fail func(t *testing.T, doc, r *dom.Node) Primitive
		// armFault injects the failure instead (Delete never fails on
		// its own).
		armFault bool
	}{
		{kind: InsertInto, fail: func(t *testing.T, doc, r *dom.Node) Primitive {
			return Primitive{Kind: InsertInto, Target: textChild(t, r),
				Content: []*dom.Node{dom.NewElement(dom.Name("x"))}}
		}},
		{kind: InsertIntoFirst, fail: func(t *testing.T, doc, r *dom.Node) Primitive {
			return Primitive{Kind: InsertIntoFirst, Target: textChild(t, r),
				Content: []*dom.Node{dom.NewElement(dom.Name("x"))}}
		}},
		{kind: InsertIntoLast, fail: func(t *testing.T, doc, r *dom.Node) Primitive {
			return Primitive{Kind: InsertIntoLast, Target: textChild(t, r),
				Content: []*dom.Node{dom.NewElement(dom.Name("x"))}}
		}},
		{kind: InsertBefore, fail: func(t *testing.T, doc, r *dom.Node) Primitive {
			return Primitive{Kind: InsertBefore, Target: dom.NewElement(dom.Name("orphan")),
				Content: []*dom.Node{dom.NewElement(dom.Name("x"))}}
		}},
		{kind: InsertAfter, fail: func(t *testing.T, doc, r *dom.Node) Primitive {
			return Primitive{Kind: InsertAfter, Target: dom.NewElement(dom.Name("orphan")),
				Content: []*dom.Node{dom.NewElement(dom.Name("x"))}}
		}},
		{kind: InsertAttributes, fail: func(t *testing.T, doc, r *dom.Node) Primitive {
			return Primitive{Kind: InsertAttributes, Target: r,
				Content: []*dom.Node{dom.NewText("not an attribute")}}
		}},
		{kind: Delete, armFault: true, fail: func(t *testing.T, doc, r *dom.Node) Primitive {
			return Primitive{Kind: Delete, Target: el(t, doc, "c")}
		}},
		{kind: ReplaceNode, fail: func(t *testing.T, doc, r *dom.Node) Primitive {
			return Primitive{Kind: ReplaceNode, Target: dom.NewElement(dom.Name("orphan")),
				Content: []*dom.Node{dom.NewElement(dom.Name("x"))}}
		}},
		{kind: ReplaceValue, fail: func(t *testing.T, doc, r *dom.Node) Primitive {
			return Primitive{Kind: ReplaceValue, Target: doc, Value: "nope"}
		}},
		{kind: Rename, fail: func(t *testing.T, doc, r *dom.Node) Primitive {
			return Primitive{Kind: Rename, Target: textChild(t, r), Name: dom.Name("x")}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			defer faultpoint.Reset()
			doc := tree(t, src)
			r := el(t, doc, "r")
			before := markup.Serialize(doc)
			v0 := doc.Version()
			rb0 := Rollbacks()

			p := &PUL{}
			// A successful primitive first, so the rollback has real
			// work to undo (InsertInto is in the first apply phase,
			// before or alongside every failing kind).
			if err := p.Add(Primitive{Kind: InsertInto, Target: r,
				Content: []*dom.Node{dom.NewElement(dom.Name("ok"))}}); err != nil {
				t.Fatal(err)
			}
			if err := p.Add(tc.fail(t, doc, r)); err != nil {
				t.Fatal(err)
			}
			if tc.armFault {
				// Two primitives → the fault point's second hit guards
				// the failing one.
				faultpoint.Enable(faultpoint.PointUpdateApply, faultpoint.Nth(2))
			}

			calls := 0
			err := p.Apply(func(Primitive) { calls++ })
			if err == nil {
				t.Fatalf("%s: apply unexpectedly succeeded", tc.kind)
			}
			if calls != 0 {
				t.Errorf("onChange saw %d primitives of a rolled-back apply", calls)
			}
			if got := markup.Serialize(doc); got != before {
				t.Errorf("document not restored:\n before %s\n  after %s", before, got)
			}
			if v := doc.Version(); v != v0 {
				t.Errorf("version = %d, want restored %d", v, v0)
			}
			if rb := Rollbacks(); rb != rb0+1 {
				t.Errorf("Rollbacks() = %d, want %d", rb, rb0+1)
			}
			if p.Empty() {
				t.Error("failed apply must keep the pending list")
			}
		})
	}
}

// TestAtomicRollbackMixed applies one primitive of almost every kind
// successfully, fails the last via the fault point, and asserts the
// document comes back serialisation-identical — then retries without
// the fault and asserts the same list applies cleanly (a failed apply
// keeps the PUL intact).
func TestAtomicRollbackMixed(t *testing.T) {
	defer faultpoint.Reset()
	doc := tree(t, `<r a1="1" a2="2">hello<a k="v"><b/></a><c/><d/>tail</r>`)
	r := el(t, doc, "r")
	before := markup.Serialize(doc)
	v0 := doc.Version()

	p := &PUL{}
	add := func(pr Primitive) {
		t.Helper()
		if err := p.Add(pr); err != nil {
			t.Fatal(err)
		}
	}
	add(Primitive{Kind: InsertInto, Target: r, Content: []*dom.Node{dom.NewElement(dom.Name("ok1"))}})
	add(Primitive{Kind: InsertAttributes, Target: r, Content: []*dom.Node{
		dom.NewAttr(dom.Name("a2"), "changed"), dom.NewAttr(dom.Name("new"), "n")}})
	add(Primitive{Kind: ReplaceValue, Target: el(t, doc, "a"), Value: "newtext"})
	add(Primitive{Kind: Rename, Target: el(t, doc, "b"), Name: dom.Name("bb")})
	add(Primitive{Kind: InsertBefore, Target: el(t, doc, "c"), Content: []*dom.Node{dom.NewElement(dom.Name("m"))}})
	add(Primitive{Kind: InsertAfter, Target: el(t, doc, "c"), Content: []*dom.Node{
		dom.NewElement(dom.Name("n1")), dom.NewElement(dom.Name("n2"))}})
	add(Primitive{Kind: InsertIntoFirst, Target: r, Content: []*dom.Node{dom.NewElement(dom.Name("first"))}})
	add(Primitive{Kind: ReplaceNode, Target: el(t, doc, "d"), Content: []*dom.Node{
		dom.NewElement(dom.Name("d2")), dom.NewText("dtail")}})
	add(Primitive{Kind: Delete, Target: el(t, doc, "c")})

	// Fail on the last primitive: eight succeed, the ninth rolls all
	// of them back.
	faultpoint.Enable(faultpoint.PointUpdateApply, faultpoint.Nth(int64(p.Len())))
	if err := p.Apply(nil); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if got := markup.Serialize(doc); got != before {
		t.Fatalf("document not restored:\n before %s\n  after %s", before, got)
	}
	if v := doc.Version(); v != v0 {
		t.Fatalf("version = %d, want restored %d", v, v0)
	}

	// The list survived the failure; with the fault disarmed the same
	// apply succeeds end to end.
	faultpoint.Reset()
	calls := 0
	if err := p.Apply(func(Primitive) { calls++ }); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls != 9 {
		t.Fatalf("onChange calls = %d, want 9", calls)
	}
	if got := markup.Serialize(doc); got == before {
		t.Fatal("retry applied nothing")
	}
	if !p.Empty() {
		t.Fatal("successful apply must clear the list")
	}
}

// TestRollbackRestoresAttributeOrder deletes a middle attribute, fails
// the next primitive, and asserts the attribute list (and so the
// serialised form) comes back in the original order.
func TestRollbackRestoresAttributeOrder(t *testing.T) {
	defer faultpoint.Reset()
	doc := tree(t, `<r a="1" b="2" c="3"><x/></r>`)
	r := el(t, doc, "r")
	before := markup.Serialize(doc)

	p := &PUL{}
	_ = p.Add(Primitive{Kind: Delete, Target: r.AttrNode(dom.Name("b"))})
	_ = p.Add(Primitive{Kind: Delete, Target: el(t, doc, "x")})
	faultpoint.Enable(faultpoint.PointUpdateApply, faultpoint.Nth(2))
	if err := p.Apply(nil); err == nil {
		t.Fatal("apply unexpectedly succeeded")
	}
	if got := markup.Serialize(doc); got != before {
		t.Fatalf("attribute order not restored:\n before %s\n  after %s", before, got)
	}
}

// TestRollbackKeepsDocumentOrderFresh asserts the rolled-back tree
// answers document-order comparisons correctly even though the version
// counter was rewound (the stamps are recomputed on restore).
func TestRollbackKeepsDocumentOrderFresh(t *testing.T) {
	defer faultpoint.Reset()
	doc := tree(t, `<r><a/><b/></r>`)
	a, b := el(t, doc, "a"), el(t, doc, "b")
	if dom.CompareOrder(a, b) != -1 {
		t.Fatal("fixture order broken")
	}
	p := &PUL{}
	_ = p.Add(Primitive{Kind: InsertBefore, Target: a, Content: []*dom.Node{dom.NewElement(dom.Name("z"))}})
	_ = p.Add(Primitive{Kind: Delete, Target: b})
	faultpoint.Enable(faultpoint.PointUpdateApply, faultpoint.Nth(2))
	if err := p.Apply(nil); err == nil {
		t.Fatal("apply unexpectedly succeeded")
	}
	faultpoint.Reset()
	// Mutate again so the version climbs back over the rolled-back
	// window; stale stamps from mid-apply must not win.
	if err := el(t, doc, "r").AppendChild(dom.NewElement(dom.Name("tail"))); err != nil {
		t.Fatal(err)
	}
	if dom.CompareOrder(a, b) != -1 {
		t.Error("a should still precede b after rollback")
	}
	if dom.CompareOrder(b, a) != 1 {
		t.Error("b should follow a after rollback")
	}
}

// TestApplyNonAtomicLeavesPartialState pins the escape hatch: without
// the undo log, primitives applied before the failure stay applied and
// are reported to onChange as they land.
func TestApplyNonAtomicLeavesPartialState(t *testing.T) {
	doc := tree(t, `<r>hello</r>`)
	r := el(t, doc, "r")
	p := &PUL{}
	_ = p.Add(Primitive{Kind: InsertInto, Target: r, Content: []*dom.Node{dom.NewElement(dom.Name("ok"))}})
	_ = p.Add(Primitive{Kind: Rename, Target: textChild(t, r), Name: dom.Name("x")})
	rb0 := Rollbacks()
	calls := 0
	if err := p.ApplyNonAtomic(func(Primitive) { calls++ }); err == nil {
		t.Fatal("apply unexpectedly succeeded")
	}
	if calls != 1 {
		t.Fatalf("onChange calls = %d, want 1 (the applied insert)", calls)
	}
	if got := markup.Serialize(doc); got != `<r>hello<ok/></r>` {
		t.Fatalf("partial state not preserved: %s", got)
	}
	if Rollbacks() != rb0 {
		t.Fatal("non-atomic apply must not count a rollback")
	}
}
