// Package update implements the XQuery Update Facility's pending update
// lists. Updating expressions do not mutate nodes when they evaluate;
// they accumulate update primitives which are checked for compatibility,
// merged, and applied in the order the candidate recommendation
// prescribes — "all modifications are performed once the expression is
// entirely evaluated: there are no side effects until the end" (paper
// §3.2). The Scripting Extension then makes snapshots smaller: the host
// applies the list after every statement instead of once per query.
package update

import (
	"fmt"

	"repro/internal/dom"
)

// Kind identifies an update primitive.
type Kind int

// Update primitives, in declaration order (not application order).
const (
	InsertInto Kind = iota + 1
	InsertIntoFirst
	InsertIntoLast
	InsertBefore
	InsertAfter
	InsertAttributes
	Delete
	ReplaceNode
	ReplaceValue
	Rename
)

// String names the primitive kind.
func (k Kind) String() string {
	return [...]string{"", "insertInto", "insertIntoFirst", "insertIntoLast",
		"insertBefore", "insertAfter", "insertAttributes", "delete",
		"replaceNode", "replaceValue", "rename"}[k]
}

// Primitive is one pending update.
type Primitive struct {
	Kind    Kind
	Target  *dom.Node
	Content []*dom.Node // inserted/replacement nodes (already copies)
	Value   string      // ReplaceValue
	Name    dom.QName   // Rename
}

// PUL is a pending update list.
type PUL struct {
	prims []Primitive
}

// Empty reports whether no updates are pending.
func (p *PUL) Empty() bool { return len(p.prims) == 0 }

// Len returns the number of pending primitives.
func (p *PUL) Len() int { return len(p.prims) }

// Primitives returns the pending primitives (callers must not mutate).
func (p *PUL) Primitives() []Primitive { return p.prims }

// Add appends a primitive, enforcing the Update Facility's
// compatibility rules: at most one rename, one replaceNode and one
// replaceValue per target node.
func (p *PUL) Add(pr Primitive) error {
	for _, q := range p.prims {
		if q.Target != pr.Target {
			continue
		}
		if pr.Kind == q.Kind &&
			(pr.Kind == Rename || pr.Kind == ReplaceNode || pr.Kind == ReplaceValue) {
			return fmt.Errorf("update: incompatible updates: two %s operations target the same node", pr.Kind)
		}
	}
	p.prims = append(p.prims, pr)
	return nil
}

// Merge appends all primitives of q, enforcing compatibility.
func (p *PUL) Merge(q *PUL) error {
	for _, pr := range q.prims {
		if err := p.Add(pr); err != nil {
			return err
		}
	}
	return nil
}

// Reset drops all pending updates.
func (p *PUL) Reset() { p.prims = p.prims[:0] }

// TargetsWithin verifies every primitive targets a node whose root is
// one of the given roots — the "transform" expression's requirement that
// modify clauses only touch copied trees.
func (p *PUL) TargetsWithin(roots []*dom.Node) error {
	in := func(n *dom.Node) bool {
		r := n.Root()
		for _, x := range roots {
			if r == x {
				return true
			}
		}
		return false
	}
	for _, pr := range p.prims {
		if !in(pr.Target) {
			return fmt.Errorf("update: %s targets a node outside the copied trees", pr.Kind)
		}
	}
	return nil
}

// applyOrder is the Update Facility's application order.
var applyOrder = [][]Kind{
	{InsertInto, InsertAttributes, ReplaceValue, Rename},
	{InsertBefore, InsertAfter, InsertIntoFirst, InsertIntoLast},
	{ReplaceNode},
	{Delete},
}

// Apply performs all pending updates against the live trees in the
// prescribed order and clears the list. If onChange is non-nil it is
// called once per applied primitive (the plug-in host uses this to count
// DOM mutations and schedule re-rendering).
func (p *PUL) Apply(onChange func(Primitive)) error {
	for _, phase := range applyOrder {
		for _, pr := range p.prims {
			if !kindIn(pr.Kind, phase) {
				continue
			}
			if err := applyOne(pr); err != nil {
				return err
			}
			if onChange != nil {
				onChange(pr)
			}
		}
	}
	p.Reset()
	return nil
}

func kindIn(k Kind, ks []Kind) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}

func applyOne(pr Primitive) error {
	t := pr.Target
	switch pr.Kind {
	case InsertInto, InsertIntoLast:
		for _, c := range pr.Content {
			if err := insertChildOrAttr(t, c, func(n *dom.Node) error { return t.AppendChild(n) }); err != nil {
				return err
			}
		}
	case InsertIntoFirst:
		// Preserve content order while prepending.
		for i := len(pr.Content) - 1; i >= 0; i-- {
			c := pr.Content[i]
			if err := insertChildOrAttr(t, c, func(n *dom.Node) error { return t.PrependChild(n) }); err != nil {
				return err
			}
		}
	case InsertBefore:
		parent := t.Parent()
		if parent == nil {
			return fmt.Errorf("update: insert before a parentless node")
		}
		for _, c := range pr.Content {
			if err := parent.InsertBefore(c, t); err != nil {
				return err
			}
		}
	case InsertAfter:
		parent := t.Parent()
		if parent == nil {
			return fmt.Errorf("update: insert after a parentless node")
		}
		ref := t
		for _, c := range pr.Content {
			if err := parent.InsertAfter(c, ref); err != nil {
				return err
			}
			ref = c
		}
	case InsertAttributes:
		for _, a := range pr.Content {
			if a.Type != dom.AttributeNode {
				return fmt.Errorf("update: insertAttributes content must be attributes")
			}
			t.SetAttr(a.Name, a.Data)
		}
	case Delete:
		t.Detach()
	case ReplaceNode:
		if t.Type == dom.AttributeNode {
			owner := t.Parent()
			if owner == nil {
				return fmt.Errorf("update: replace a detached attribute")
			}
			t.Detach()
			for _, c := range pr.Content {
				if c.Type != dom.AttributeNode {
					return fmt.Errorf("update: attribute can only be replaced by attributes")
				}
				owner.SetAttr(c.Name, c.Data)
			}
			return nil
		}
		parent := t.Parent()
		if parent == nil {
			return fmt.Errorf("update: replace a parentless node")
		}
		ref := t
		for _, c := range pr.Content {
			if err := parent.InsertAfter(c, ref); err != nil {
				return err
			}
			ref = c
		}
		t.Detach()
	case ReplaceValue:
		switch t.Type {
		case dom.ElementNode:
			t.ReplaceElementContent(pr.Value)
		case dom.DocumentNode:
			return fmt.Errorf("update: cannot replace value of a document node")
		default:
			t.SetData(pr.Value)
		}
	case Rename:
		switch t.Type {
		case dom.ElementNode, dom.AttributeNode, dom.ProcessingInstructionNode:
			t.Rename(pr.Name)
		default:
			return fmt.Errorf("update: cannot rename a %s node", t.Type)
		}
	default:
		return fmt.Errorf("update: unknown primitive %d", pr.Kind)
	}
	return nil
}

// insertChildOrAttr routes attribute nodes in an insert-into content
// list to the attribute list and everything else through insert.
func insertChildOrAttr(target, c *dom.Node, insert func(*dom.Node) error) error {
	if c.Type == dom.AttributeNode {
		if target.Type != dom.ElementNode {
			return fmt.Errorf("update: attributes can only be inserted into elements")
		}
		target.SetAttr(c.Name, c.Data)
		return nil
	}
	return insert(c)
}
