// Package update implements the XQuery Update Facility's pending update
// lists. Updating expressions do not mutate nodes when they evaluate;
// they accumulate update primitives which are checked for compatibility,
// merged, and applied in the order the candidate recommendation
// prescribes — "all modifications are performed once the expression is
// entirely evaluated: there are no side effects until the end" (paper
// §3.2). The Scripting Extension then makes snapshots smaller: the host
// applies the list after every statement instead of once per query.
package update

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/dom"
	"repro/internal/faultpoint"
)

// Kind identifies an update primitive.
type Kind int

// Update primitives, in declaration order (not application order).
const (
	InsertInto Kind = iota + 1
	InsertIntoFirst
	InsertIntoLast
	InsertBefore
	InsertAfter
	InsertAttributes
	Delete
	ReplaceNode
	ReplaceValue
	Rename
)

// String names the primitive kind.
func (k Kind) String() string {
	return [...]string{"", "insertInto", "insertIntoFirst", "insertIntoLast",
		"insertBefore", "insertAfter", "insertAttributes", "delete",
		"replaceNode", "replaceValue", "rename"}[k]
}

// Primitive is one pending update.
type Primitive struct {
	Kind    Kind
	Target  *dom.Node
	Content []*dom.Node // inserted/replacement nodes (already copies)
	Value   string      // ReplaceValue
	Name    dom.QName   // Rename
}

// PUL is a pending update list.
type PUL struct {
	prims []Primitive
}

// Empty reports whether no updates are pending.
func (p *PUL) Empty() bool { return len(p.prims) == 0 }

// Len returns the number of pending primitives.
func (p *PUL) Len() int { return len(p.prims) }

// Primitives returns the pending primitives (callers must not mutate).
func (p *PUL) Primitives() []Primitive { return p.prims }

// ErrNilTarget reports a primitive that names no target node. Add is
// the single validation point: Merge routes through Add, so a nil
// target can never enter a list from either path (it used to slip
// through and only fail — with a panic — deep inside apply).
var ErrNilTarget = errors.New("update: primitive has no target node")

// Add appends a primitive, enforcing the Update Facility's
// compatibility rules: at most one rename, one replaceNode and one
// replaceValue per target node. Primitives without a target are
// rejected with an error matching ErrNilTarget.
func (p *PUL) Add(pr Primitive) error {
	if pr.Target == nil {
		return fmt.Errorf("%w (%s)", ErrNilTarget, pr.Kind)
	}
	for _, q := range p.prims {
		if q.Target != pr.Target {
			continue
		}
		if pr.Kind == q.Kind &&
			(pr.Kind == Rename || pr.Kind == ReplaceNode || pr.Kind == ReplaceValue) {
			return fmt.Errorf("update: incompatible updates: two %s operations target the same node", pr.Kind)
		}
	}
	p.prims = append(p.prims, pr)
	return nil
}

// Merge appends all primitives of q, enforcing compatibility.
func (p *PUL) Merge(q *PUL) error {
	for _, pr := range q.prims {
		if err := p.Add(pr); err != nil {
			return err
		}
	}
	return nil
}

// Reset drops all pending updates.
func (p *PUL) Reset() { p.prims = p.prims[:0] }

// TargetsWithin verifies every primitive targets a node whose root is
// one of the given roots — the "transform" expression's requirement that
// modify clauses only touch copied trees.
func (p *PUL) TargetsWithin(roots []*dom.Node) error {
	in := func(n *dom.Node) bool {
		r := n.Root()
		for _, x := range roots {
			if r == x {
				return true
			}
		}
		return false
	}
	for _, pr := range p.prims {
		if !in(pr.Target) {
			return fmt.Errorf("update: %s targets a node outside the copied trees", pr.Kind)
		}
	}
	return nil
}

// applyOrder is the Update Facility's application order.
var applyOrder = [][]Kind{
	{InsertInto, InsertAttributes, ReplaceValue, Rename},
	{InsertBefore, InsertAfter, InsertIntoFirst, InsertIntoLast},
	{ReplaceNode},
	{Delete},
}

// rollbacks counts PUL applications that failed mid-way and were
// rolled back, process-wide (surfaced in serve.Metrics.Failures).
var rollbacks atomic.Int64

// Rollbacks returns the process-wide rollback count.
func Rollbacks() int64 { return rollbacks.Load() }

// Apply performs all pending updates against the live trees in the
// prescribed order and clears the list — atomically: every primitive
// records its exact inverse in an undo log, and if any primitive fails
// mid-apply the log unwinds in reverse, each touched tree's version
// counter is rewound to its pre-apply value (re-stamping document
// order and dropping any index built in the rolled-back window, once
// per tree), and the original error returns with the documents
// serialisation-identical to their pre-apply state. That makes the
// Update Facility's all-or-nothing contract hold against the live DOM,
// not just the evaluation snapshot.
//
// If onChange is non-nil it is called once per applied primitive (the
// plug-in host uses this to count DOM mutations and schedule
// re-rendering) — but only after the whole list has applied, so
// observers never see a primitive that is later rolled back.
func (p *PUL) Apply(onChange func(Primitive)) error {
	return p.apply(onChange, true)
}

// ApplyNonAtomic performs the pending updates without undo logging:
// primitives apply (and report to onChange) one by one, and a mid-list
// failure leaves the earlier mutations in place. This is the
// RunConfig.NonAtomicUpdates escape hatch for hosts that relied on the
// pre-rollback behaviour or cannot afford the undo log.
func (p *PUL) ApplyNonAtomic(onChange func(Primitive)) error {
	return p.apply(onChange, false)
}

func (p *PUL) apply(onChange func(Primitive), atomically bool) error {
	var u *undoLog
	var versions map[*dom.Node]uint64
	if atomically {
		u = &undoLog{}
		versions = snapshotVersions(p.prims)
	}
	fail := func(err error) error {
		if !atomically {
			return err
		}
		rollbacks.Add(1)
		return rollback(err, []*undoLog{u}, versions)
	}
	var applied []Primitive
	for _, pr := range orderedPrims(p.prims) {
		if err := faultpoint.Hit(faultpoint.PointUpdateApply); err != nil {
			return fail(err)
		}
		if err := applyOne(pr, u); err != nil {
			return fail(err)
		}
		if atomically {
			applied = append(applied, pr)
		} else if onChange != nil {
			onChange(pr)
		}
	}
	if onChange != nil {
		for _, pr := range applied {
			onChange(pr)
		}
	}
	p.Reset()
	return nil
}

// orderedPrims returns the primitives in the Update Facility's
// application order: phase by phase, original list order within a
// phase.
func orderedPrims(prims []Primitive) []Primitive {
	out := make([]Primitive, 0, len(prims))
	for _, phase := range applyOrder {
		for _, pr := range prims {
			if kindIn(pr.Kind, phase) {
				out = append(out, pr)
			}
		}
	}
	return out
}

// snapshotVersions records each target tree's version counter before
// the first mutation. Content trees need no entry: nothing caches on a
// freshly constructed copy, and inserts bump the target tree.
func snapshotVersions(prims []Primitive) map[*dom.Node]uint64 {
	versions := map[*dom.Node]uint64{}
	for _, pr := range prims {
		if r := pr.Target.Root(); r != nil {
			if _, ok := versions[r]; !ok {
				versions[r] = r.Version()
			}
		}
	}
	return versions
}

// rollback unwinds a failed apply: the undo logs run back to front
// (last log first, each log in strict reverse), every touched tree's
// version counter is rewound, and the original error returns — joined
// with an undo failure if the rollback itself broke. With one log this
// is exactly the serial rollback; with per-group logs the groups touch
// disjoint subtrees, so their inverses commute and the reverse
// group-index order yields the identical (pre-apply) document state.
func rollback(err error, logs []*undoLog, versions map[*dom.Node]uint64) error {
	var undoErrs []error
	for i := len(logs) - 1; i >= 0; i-- {
		if undoErr := logs[i].undo(); undoErr != nil {
			undoErrs = append(undoErrs, undoErr)
		}
	}
	for root, v := range versions {
		if root.Version() != v {
			root.RestoreVersion(v)
		}
	}
	if len(undoErrs) > 0 {
		return errors.Join(err, fmt.Errorf("update: rollback failed: %w", errors.Join(undoErrs...)))
	}
	return err
}

// undoLog records, during an atomic apply, the exact inverse of every
// mutation in application order. A nil *undoLog discards records, so
// the same apply code serves both modes. Inverses are positional
// (RestoreChildAt/RestoreAttrAt) rather than sibling-relative: by the
// time the log unwinds, the sibling that anchored an operation may
// itself be detached, but unwinding in strict reverse order means each
// inverse runs against exactly the state its operation produced, so a
// captured list index is always valid.
type undoLog struct {
	steps []func() error
}

func (u *undoLog) add(f func() error) {
	if u == nil {
		return
	}
	u.steps = append(u.steps, f)
}

func (u *undoLog) undo() error {
	if u == nil {
		return nil
	}
	var errs []error
	for i := len(u.steps) - 1; i >= 0; i-- {
		if err := u.steps[i](); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func kindIn(k Kind, ks []Kind) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}

func applyOne(pr Primitive, u *undoLog) error {
	t := pr.Target
	switch pr.Kind {
	case InsertInto, InsertIntoLast:
		for _, c := range pr.Content {
			if err := insertChildOrAttr(t, c, u, func(n *dom.Node) error { return t.AppendChild(n) }); err != nil {
				return err
			}
		}
	case InsertIntoFirst:
		// Preserve content order while prepending.
		for i := len(pr.Content) - 1; i >= 0; i-- {
			c := pr.Content[i]
			if err := insertChildOrAttr(t, c, u, func(n *dom.Node) error { return t.PrependChild(n) }); err != nil {
				return err
			}
		}
	case InsertBefore:
		parent := t.Parent()
		if parent == nil {
			return fmt.Errorf("update: insert before a parentless node")
		}
		for _, c := range pr.Content {
			if err := insertChild(c, u, func() error { return parent.InsertBefore(c, t) }); err != nil {
				return err
			}
		}
	case InsertAfter:
		parent := t.Parent()
		if parent == nil {
			return fmt.Errorf("update: insert after a parentless node")
		}
		ref := t
		for _, c := range pr.Content {
			if err := insertChild(c, u, func() error { return parent.InsertAfter(c, ref) }); err != nil {
				return err
			}
			ref = c
		}
	case InsertAttributes:
		for _, a := range pr.Content {
			if a.Type != dom.AttributeNode {
				return fmt.Errorf("update: insertAttributes content must be attributes")
			}
			setAttr(t, a.Name, a.Data, u)
		}
	case Delete:
		detach(t, u)
	case ReplaceNode:
		if t.Type == dom.AttributeNode {
			owner := t.Parent()
			if owner == nil {
				return fmt.Errorf("update: replace a detached attribute")
			}
			detach(t, u)
			for _, c := range pr.Content {
				if c.Type != dom.AttributeNode {
					return fmt.Errorf("update: attribute can only be replaced by attributes")
				}
				setAttr(owner, c.Name, c.Data, u)
			}
			return nil
		}
		parent := t.Parent()
		if parent == nil {
			return fmt.Errorf("update: replace a parentless node")
		}
		ref := t
		for _, c := range pr.Content {
			if err := insertChild(c, u, func() error { return parent.InsertAfter(c, ref) }); err != nil {
				return err
			}
			ref = c
		}
		detach(t, u)
	case ReplaceValue:
		switch t.Type {
		case dom.ElementNode:
			old := append([]*dom.Node(nil), t.Children()...)
			t.ReplaceElementContent(pr.Value)
			u.add(func() error {
				t.RemoveChildren()
				var errs []error
				for _, c := range old {
					if err := t.AppendChild(c); err != nil {
						errs = append(errs, err)
					}
				}
				return errors.Join(errs...)
			})
		case dom.DocumentNode:
			return fmt.Errorf("update: cannot replace value of a document node")
		default:
			old := t.Data
			t.SetData(pr.Value)
			u.add(func() error { t.SetData(old); return nil })
		}
	case Rename:
		switch t.Type {
		case dom.ElementNode, dom.AttributeNode, dom.ProcessingInstructionNode:
			// A duplicate attribute name (XUDY0021) must fail here, not
			// slip into the tree: the transient duplicate state would
			// poison a later rollback (RestoreAttrAt rightly refuses to
			// recreate it).
			if t.Type == dom.AttributeNode {
				if owner := t.Parent(); owner != nil {
					if ex := owner.AttrNode(pr.Name); ex != nil && ex != t {
						return fmt.Errorf("update: rename would create a duplicate attribute %s", pr.Name.Local)
					}
				}
			}
			old := t.Name
			t.Rename(pr.Name)
			u.add(func() error { t.Rename(old); return nil })
		default:
			return fmt.Errorf("update: cannot rename a %s node", t.Type)
		}
	default:
		return fmt.Errorf("update: unknown primitive %d", pr.Kind)
	}
	return nil
}

// insertChild runs one child insertion and records its inverse (the
// content node was detached before insertion, so detaching again is
// exact).
func insertChild(c *dom.Node, u *undoLog, insert func() error) error {
	if err := insert(); err != nil {
		return err
	}
	u.add(func() error { c.Detach(); return nil })
	return nil
}

// setAttr sets (or adds) an attribute and records its inverse: restore
// the previous value on the same attribute node, or detach the node
// SetAttr created.
func setAttr(t *dom.Node, name dom.QName, value string, u *undoLog) {
	if a := t.AttrNode(name); a != nil {
		old := a.Data
		a.SetData(value)
		u.add(func() error { a.SetData(old); return nil })
		return
	}
	a := t.SetAttr(name, value)
	u.add(func() error { a.Detach(); return nil })
}

// detach removes t from its parent and records a positional inverse so
// the undo restores the exact child/attribute list order. Detaching a
// parentless node records nothing (Detach itself is a no-op there).
func detach(t *dom.Node, u *undoLog) {
	p := t.Parent()
	if p == nil {
		return
	}
	if t.Type == dom.AttributeNode {
		i := nodeIndex(p.Attrs(), t)
		t.Detach()
		u.add(func() error { return p.RestoreAttrAt(t, i) })
		return
	}
	i := nodeIndex(p.Children(), t)
	t.Detach()
	u.add(func() error { return p.RestoreChildAt(t, i) })
}

func nodeIndex(list []*dom.Node, t *dom.Node) int {
	for i, x := range list {
		if x == t {
			return i
		}
	}
	return -1
}

// insertChildOrAttr routes attribute nodes in an insert-into content
// list to the attribute list and everything else through insert.
func insertChildOrAttr(target, c *dom.Node, u *undoLog, insert func(*dom.Node) error) error {
	if c.Type == dom.AttributeNode {
		if target.Type != dom.ElementNode {
			return fmt.Errorf("update: attributes can only be inserted into elements")
		}
		setAttr(target, c.Name, c.Data, u)
		return nil
	}
	if err := insert(c); err != nil {
		return err
	}
	u.add(func() error { c.Detach(); return nil })
	return nil
}
