package update

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/markup"
)

func tree(t *testing.T, src string) *dom.Node {
	t.Helper()
	doc, err := markup.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func el(t *testing.T, doc *dom.Node, local string) *dom.Node {
	t.Helper()
	els := doc.Elements(local)
	if len(els) == 0 {
		t.Fatalf("no element %q", local)
	}
	return els[0]
}

func apply(t *testing.T, p *PUL) {
	t.Helper()
	if err := p.Apply(nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertInto(t *testing.T) {
	doc := tree(t, `<r><a/></r>`)
	p := &PUL{}
	if err := p.Add(Primitive{Kind: InsertInto, Target: el(t, doc, "r"),
		Content: []*dom.Node{dom.NewElement(dom.Name("b")), dom.NewText("t")}}); err != nil {
		t.Fatal(err)
	}
	apply(t, p)
	if got := markup.Serialize(doc); got != `<r><a/><b/>t</r>` {
		t.Errorf("got %s", got)
	}
	if !p.Empty() {
		t.Error("apply must clear the list")
	}
}

func TestInsertIntoFirstPreservesOrder(t *testing.T) {
	doc := tree(t, `<r><a/></r>`)
	p := &PUL{}
	_ = p.Add(Primitive{Kind: InsertIntoFirst, Target: el(t, doc, "r"),
		Content: []*dom.Node{dom.NewElement(dom.Name("x")), dom.NewElement(dom.Name("y"))}})
	apply(t, p)
	if got := markup.Serialize(doc); got != `<r><x/><y/><a/></r>` {
		t.Errorf("got %s", got)
	}
}

func TestInsertBeforeAfter(t *testing.T) {
	doc := tree(t, `<r><a/><b/></r>`)
	p := &PUL{}
	_ = p.Add(Primitive{Kind: InsertBefore, Target: el(t, doc, "b"),
		Content: []*dom.Node{dom.NewElement(dom.Name("m"))}})
	_ = p.Add(Primitive{Kind: InsertAfter, Target: el(t, doc, "b"),
		Content: []*dom.Node{dom.NewElement(dom.Name("n")), dom.NewElement(dom.Name("o"))}})
	apply(t, p)
	if got := markup.Serialize(doc); got != `<r><a/><m/><b/><n/><o/></r>` {
		t.Errorf("got %s", got)
	}
}

func TestInsertAttributes(t *testing.T) {
	doc := tree(t, `<r/>`)
	p := &PUL{}
	_ = p.Add(Primitive{Kind: InsertInto, Target: el(t, doc, "r"),
		Content: []*dom.Node{dom.NewAttr(dom.Name("k"), "v"), dom.NewText("body")}})
	apply(t, p)
	if got := markup.Serialize(doc); got != `<r k="v">body</r>` {
		t.Errorf("got %s", got)
	}
}

func TestDelete(t *testing.T) {
	doc := tree(t, `<r><a/><b/><c/></r>`)
	p := &PUL{}
	_ = p.Add(Primitive{Kind: Delete, Target: el(t, doc, "b")})
	apply(t, p)
	if got := markup.Serialize(doc); got != `<r><a/><c/></r>` {
		t.Errorf("got %s", got)
	}
}

func TestReplaceNode(t *testing.T) {
	doc := tree(t, `<r><old/></r>`)
	p := &PUL{}
	_ = p.Add(Primitive{Kind: ReplaceNode, Target: el(t, doc, "old"),
		Content: []*dom.Node{dom.NewElement(dom.Name("n1")), dom.NewElement(dom.Name("n2"))}})
	apply(t, p)
	if got := markup.Serialize(doc); got != `<r><n1/><n2/></r>` {
		t.Errorf("got %s", got)
	}
}

func TestReplaceAttributeNode(t *testing.T) {
	doc := tree(t, `<r k="old"/>`)
	r := el(t, doc, "r")
	p := &PUL{}
	_ = p.Add(Primitive{Kind: ReplaceNode, Target: r.AttrNode(dom.Name("k")),
		Content: []*dom.Node{dom.NewAttr(dom.Name("k2"), "new")}})
	apply(t, p)
	if got := markup.Serialize(doc); got != `<r k2="new"/>` {
		t.Errorf("got %s", got)
	}
}

func TestReplaceValue(t *testing.T) {
	doc := tree(t, `<r k="v"><a>old</a></r>`)
	r := el(t, doc, "r")
	p := &PUL{}
	_ = p.Add(Primitive{Kind: ReplaceValue, Target: el(t, doc, "a"), Value: "new"})
	_ = p.Add(Primitive{Kind: ReplaceValue, Target: r.AttrNode(dom.Name("k")), Value: "v2"})
	apply(t, p)
	if got := markup.Serialize(doc); got != `<r k="v2"><a>new</a></r>` {
		t.Errorf("got %s", got)
	}
}

func TestReplaceElementContentEmpty(t *testing.T) {
	doc := tree(t, `<r><a><b/>text</a></r>`)
	p := &PUL{}
	_ = p.Add(Primitive{Kind: ReplaceValue, Target: el(t, doc, "a"), Value: ""})
	apply(t, p)
	if got := markup.Serialize(doc); got != `<r><a/></r>` {
		t.Errorf("got %s", got)
	}
}

func TestRename(t *testing.T) {
	doc := tree(t, `<r k="v"><a/></r>`)
	r := el(t, doc, "r")
	p := &PUL{}
	_ = p.Add(Primitive{Kind: Rename, Target: el(t, doc, "a"), Name: dom.Name("z")})
	_ = p.Add(Primitive{Kind: Rename, Target: r.AttrNode(dom.Name("k")), Name: dom.Name("k2")})
	apply(t, p)
	if got := markup.Serialize(doc); got != `<r k2="v"><z/></r>` {
		t.Errorf("got %s", got)
	}
}

func TestRenameTextFails(t *testing.T) {
	doc := tree(t, `<r>text</r>`)
	p := &PUL{}
	_ = p.Add(Primitive{Kind: Rename, Target: el(t, doc, "r").FirstChild(), Name: dom.Name("x")})
	if err := p.Apply(nil); err == nil {
		t.Error("renaming a text node must fail")
	}
}

func TestCompatibilityConflicts(t *testing.T) {
	doc := tree(t, `<r><a/></r>`)
	a := el(t, doc, "a")
	for _, kind := range []Kind{Rename, ReplaceNode, ReplaceValue} {
		p := &PUL{}
		if err := p.Add(Primitive{Kind: kind, Target: a, Name: dom.Name("x")}); err != nil {
			t.Fatal(err)
		}
		if err := p.Add(Primitive{Kind: kind, Target: a, Name: dom.Name("y")}); err == nil {
			t.Errorf("duplicate %s on one target must conflict", kind)
		}
	}
	// Two deletes are compatible.
	p := &PUL{}
	_ = p.Add(Primitive{Kind: Delete, Target: a})
	if err := p.Add(Primitive{Kind: Delete, Target: a}); err != nil {
		t.Errorf("duplicate delete should be allowed: %v", err)
	}
}

func TestMerge(t *testing.T) {
	doc := tree(t, `<r><a/></r>`)
	a := el(t, doc, "a")
	p1, p2 := &PUL{}, &PUL{}
	_ = p1.Add(Primitive{Kind: Rename, Target: a, Name: dom.Name("x")})
	_ = p2.Add(Primitive{Kind: Rename, Target: a, Name: dom.Name("y")})
	if err := p1.Merge(p2); err == nil {
		t.Error("merge must enforce compatibility")
	}
	p3 := &PUL{}
	_ = p3.Add(Primitive{Kind: Delete, Target: a})
	if err := p1.Merge(p3); err != nil {
		t.Errorf("compatible merge failed: %v", err)
	}
	if p1.Len() != 2 {
		t.Errorf("merged len = %d", p1.Len())
	}
}

// TestApplyOrder verifies the spec's phase order: a replaceValue on a
// node and an insertBefore around the same node both take effect, and a
// delete of a node that also receives inserts removes it last.
func TestApplyOrder(t *testing.T) {
	doc := tree(t, `<r><a>v</a></r>`)
	a := el(t, doc, "a")
	p := &PUL{}
	_ = p.Add(Primitive{Kind: InsertBefore, Target: a, Content: []*dom.Node{dom.NewElement(dom.Name("x"))}})
	_ = p.Add(Primitive{Kind: ReplaceValue, Target: a, Value: "w"})
	_ = p.Add(Primitive{Kind: Delete, Target: a})
	apply(t, p)
	// Delete runs last: a is gone, x stays.
	if got := markup.Serialize(doc); got != `<r><x/></r>` {
		t.Errorf("got %s", got)
	}
}

func TestTargetsWithin(t *testing.T) {
	doc1 := tree(t, `<r><a/></r>`)
	doc2 := tree(t, `<q><b/></q>`)
	p := &PUL{}
	_ = p.Add(Primitive{Kind: Delete, Target: el(t, doc1, "a")})
	if err := p.TargetsWithin([]*dom.Node{doc1}); err != nil {
		t.Errorf("in-tree target rejected: %v", err)
	}
	if err := p.TargetsWithin([]*dom.Node{doc2}); err == nil {
		t.Error("out-of-tree target accepted")
	}
}

func TestOnChangeCallback(t *testing.T) {
	doc := tree(t, `<r><a/><b/></r>`)
	p := &PUL{}
	_ = p.Add(Primitive{Kind: Delete, Target: el(t, doc, "a")})
	_ = p.Add(Primitive{Kind: Delete, Target: el(t, doc, "b")})
	n := 0
	if err := p.Apply(func(pr Primitive) {
		if pr.Kind != Delete {
			t.Errorf("callback kind = %v", pr.Kind)
		}
		n++
	}); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("callbacks = %d", n)
	}
}

func TestInsertBeforeParentless(t *testing.T) {
	orphan := dom.NewElement(dom.Name("o"))
	p := &PUL{}
	_ = p.Add(Primitive{Kind: InsertBefore, Target: orphan,
		Content: []*dom.Node{dom.NewText("x")}})
	if err := p.Apply(nil); err == nil || !strings.Contains(err.Error(), "parentless") {
		t.Errorf("expected parentless error, got %v", err)
	}
}

func TestKindString(t *testing.T) {
	if InsertInto.String() != "insertInto" || Delete.String() != "delete" {
		t.Error("Kind.String wrong")
	}
}
