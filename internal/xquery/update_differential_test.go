package xquery

import (
	"testing"
	"time"

	"repro/internal/markup"
	"repro/internal/xdm"
)

// TestUpdateDifferentialSerialParallel is the serial-oracle check for
// the parallel PUL apply: every corpus query runs twice — once with
// RunConfig.SerialUpdates (the PR 5 single-goroutine path) and once
// through the default partitioned apply — and the rendered results,
// applied-update counts, error presence and the post-run document must
// all be byte-identical. Run under -race this also exercises the
// partitioner's concurrency on real query-produced PULs.
func TestUpdateDifferentialSerialParallel(t *testing.T) {
	e := New()
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, src := range compileDifferentialCorpus {
		p, err := e.Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		run := func(serial bool) (string, string, int, error) {
			doc, err := markup.Parse(libraryXML)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Run(RunConfig{
				ContextItem:   xdm.NewNode(doc),
				SerialUpdates: serial,
				MaxSteps:      500_000,
				Timeout:       5 * time.Second,
				Now:           now,
			})
			after := markup.Serialize(doc)
			if err != nil {
				return "", after, 0, err
			}
			return FormatSequence(res.Value, markup.Serialize), after, res.Updates, nil
		}
		sRes, sDoc, sUpd, sErr := run(true)
		pRes, pDoc, pUpd, pErr := run(false)
		if (sErr == nil) != (pErr == nil) {
			t.Errorf("%q: serial err=%v, parallel err=%v", src, sErr, pErr)
			continue
		}
		if sDoc != pDoc {
			t.Errorf("%q: post-run documents diverge:\nserial:   %s\nparallel: %s", src, sDoc, pDoc)
		}
		if sErr != nil {
			continue
		}
		if sRes != pRes {
			t.Errorf("%q: serial result %q != parallel %q", src, sRes, pRes)
		}
		if sUpd != pUpd {
			t.Errorf("%q: serial applied %d updates, parallel %d", src, sUpd, pUpd)
		}
	}
}
