// Command analyzers runs the repository's custom Go invariant passes.
// They encode the serving-layer contracts the concurrency PR
// established:
//
//	progmutate  compiled programs (xquery.Program / xquery.Engine /
//	            runtime.Program) are immutable after construction: once
//	            a program is in the shared cache it is read concurrently
//	            without locks, so field writes are only legal inside
//	            constructor-shaped functions (New*/Compile*/With*/init).
//
//	ctxstruct   context.Context is never stored in a struct field in the
//	            serve/rest layers; contexts flow through call parameters
//	            so cancellation scopes stay explicit per request.
//
//	idxversion  the version-stamp discipline of the per-document index
//	            layer (internal/dom/index): inside package index, any
//	            function reading the index maps (names/ids/order) must
//	            consult the version stamp (call fresh() or compare
//	            version) unless it is the builder itself; outside the
//	            package, nobody calls the raw cache accessors
//	            Node.LoadIndexCache/StoreIndexCache — all access goes
//	            through index.For/index.Fresh, which are the only
//	            places allowed to compare the stamp.
//
//	ftversion   the same stamp discipline for the full-text index layer
//	            (internal/fulltext/index): inside the package, functions
//	            reading the posting/trigram/range maps (post, stemPost,
//	            gram, rng) must consult fresh()/version unless they are
//	            the builder; outside, nobody calls the raw slot
//	            accessors Node.LoadFTIndexCache/StoreFTIndexCache —
//	            access goes through index.For/Probe/Fresh/Attach.
//
//	planpure    the optimizer and the closure compiler never mutate the
//	            shared AST: a parsed module is cached and compiled once
//	            but read by every run, so plan/compile rewrites must
//	            build fresh nodes (copy-then-modify by value) instead of
//	            writing through *ast.Node pointers. The one sanctioned
//	            in-place write is the planner's step annotation
//	            (Access/AccessID on *ast.Step in PlanStep), which is
//	            idempotent and published through Module.EnsurePlanned's
//	            sync.Once before any concurrent read.
//
//	storesync   the shard lock discipline of the document store
//	            (internal/xmldb): the raw shard state — the docs
//	            revision map — is only touched inside shard.go, whose
//	            methods uphold the mutex and MVCC publish rules. Every
//	            other file of package xmldb (scans, commits, HTTP
//	            handlers) must go through those methods; a stray
//	            sh.docs[...] elsewhere bypasses the lock.
//
//	pulapply    DOM structural mutation stays behind the pending-update
//	            list: outside internal/dom itself and the PUL applier
//	            (internal/xquery/update), no code may call the
//	            child/attribute-mutating dom.Node methods (AppendChild,
//	            Detach, SetAttr, Rename, ...). A direct call bypasses
//	            snapshot semantics, the undo log that makes applies
//	            atomic, and the version stamp the parallel partitioner's
//	            index spans rely on. DOM-owning hosts (core, browser,
//	            jsruntime, markup) build trees before queries see them
//	            and are not scanned.
//
//	recovercheck  panic recovery only happens at sanctioned boundaries:
//	            naked recover() calls are forbidden everywhere except
//	            package xqerr (which implements RecoverInto), package
//	            faultpoint, and the parser's recoverTo. A bare
//	            recover() swallows the panic signal that quarantine
//	            and the failure metrics depend on.
//
// The passes would normally be go/analysis analyzers run through
// `go vet -vettool`, but go/analysis lives in golang.org/x/tools, which
// this repository deliberately does not depend on (builds must work
// with no module downloads). The same checks are implemented here on
// the stdlib go/parser + go/ast surface and run via `go run`:
//
//	go run ./tools/analyzers -check progmutate internal/xquery internal/xquery/runtime
//	go run ./tools/analyzers -check ctxstruct  internal/serve internal/rest
//
// Exit status: 0 clean, 1 if any finding was reported, 2 on bad usage
// or unparsable input.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// finding is one invariant violation.
type finding struct {
	pos token.Position
	msg string
}

func main() {
	check := flag.String("check", "", "pass to run: progmutate, ctxstruct, idxversion, ftversion, planpure, storesync, recovercheck or pulapply")
	flag.Parse()
	if *check == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: analyzers -check {progmutate|ctxstruct|idxversion|ftversion|planpure|storesync|recovercheck|pulapply} dir...")
		os.Exit(2)
	}

	fset := token.NewFileSet()
	var findings []finding
	for _, dir := range flag.Args() {
		files, err := loadDir(fset, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyzers: %v\n", err)
			os.Exit(2)
		}
		for _, f := range files {
			switch *check {
			case "progmutate":
				findings = append(findings, progMutate(fset, f)...)
			case "ctxstruct":
				findings = append(findings, ctxStruct(fset, f)...)
			case "idxversion":
				findings = append(findings, idxVersion(fset, f)...)
			case "ftversion":
				findings = append(findings, ftVersion(fset, f)...)
			case "planpure":
				findings = append(findings, planPure(fset, f)...)
			case "storesync":
				findings = append(findings, storeSync(fset, f)...)
			case "recovercheck":
				findings = append(findings, recoverCheck(fset, f)...)
			case "pulapply":
				findings = append(findings, pulApply(fset, f)...)
			default:
				fmt.Fprintf(os.Stderr, "analyzers: unknown check %q\n", *check)
				os.Exit(2)
			}
		}
	}
	for _, f := range findings {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// loadDir parses every non-test Go file directly in dir.
func loadDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// --- progmutate -----------------------------------------------------------------

// guardedTypes are the compiled-program types whose fields are frozen
// after construction.
var guardedTypes = map[string]bool{
	"Program": true,
	"Engine":  true,
}

// constructorName matches functions allowed to write guarded fields:
// constructors, compilers, option builders (whose closures configure a
// not-yet-published Engine) and package init.
var constructorName = regexp.MustCompile(`^(New|Compile|With|init$|MustCompile)`)

// progMutate reports assignments to fields of guarded types outside
// constructor-shaped functions. Detection is syntactic: an identifier
// counts as guarded when it is declared in the enclosing top-level
// function as a receiver, parameter or local of type Program/Engine
// (optionally pointer), including inside function literals.
func progMutate(fset *token.FileSet, file *ast.File) []finding {
	var out []finding
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if constructorName.MatchString(fd.Name.Name) {
			continue
		}
		guarded := map[string]string{} // ident name -> type name
		bind := func(names []*ast.Ident, typ ast.Expr) {
			if tn, ok := guardedTypeName(typ); ok {
				for _, n := range names {
					guarded[n.Name] = tn
				}
			}
		}
		if fd.Recv != nil {
			for _, f := range fd.Recv.List {
				bind(f.Names, f.Type)
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				for _, f := range x.Type.Params.List {
					bind(f.Names, f.Type)
				}
			case *ast.DeclStmt:
				if gd, ok := x.Decl.(*ast.GenDecl); ok {
					for _, sp := range gd.Specs {
						if vs, ok := sp.(*ast.ValueSpec); ok && vs.Type != nil {
							bind(vs.Names, vs.Type)
						}
					}
				}
			case *ast.AssignStmt:
				if x.Tok == token.DEFINE {
					for i, lhs := range x.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok || i >= len(x.Rhs) {
							continue
						}
						if tn, ok := literalTypeName(x.Rhs[i]); ok {
							guarded[id.Name] = tn
						}
					}
				}
			}
			return true
		})
		for _, f := range fd.Type.Params.List {
			bind(f.Names, f.Type)
		}
		if len(guarded) == 0 {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if x.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range x.Lhs {
					out = append(out, flagWrite(fset, lhs, guarded, fd.Name.Name)...)
				}
			case *ast.IncDecStmt:
				out = append(out, flagWrite(fset, x.X, guarded, fd.Name.Name)...)
			}
			return true
		})
	}
	return out
}

// guardedTypeName unwraps *T / T and reports T when guarded.
func guardedTypeName(t ast.Expr) (string, bool) {
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	switch x := t.(type) {
	case *ast.Ident:
		return x.Name, guardedTypes[x.Name]
	case *ast.SelectorExpr:
		// e.g. runtime.Program from a sibling package.
		return x.Sel.Name, guardedTypes[x.Sel.Name]
	}
	return "", false
}

// literalTypeName recognises x := Program{...} / &Program{...} forms.
func literalTypeName(rhs ast.Expr) (string, bool) {
	if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
		rhs = u.X
	}
	if cl, ok := rhs.(*ast.CompositeLit); ok && cl.Type != nil {
		return guardedTypeName(cl.Type)
	}
	return "", false
}

// flagWrite reports lhs when it is a field selector on a guarded
// identifier.
func flagWrite(fset *token.FileSet, lhs ast.Expr, guarded map[string]string, fn string) []finding {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	tn, ok := guarded[id.Name]
	if !ok {
		return nil
	}
	return []finding{{
		pos: fset.Position(lhs.Pos()),
		msg: fmt.Sprintf("progmutate: %s.%s written in %s; %s fields are immutable after construction",
			id.Name, sel.Sel.Name, fn, tn),
	}}
}

// --- ctxstruct ------------------------------------------------------------------

// ctxStruct reports struct fields of type context.Context (including
// embedded ones). context.CancelFunc and parameters are fine — the
// invariant is about storing a request's context beyond its call.
func ctxStruct(fset *token.FileSet, file *ast.File) []finding {
	var out []finding
	ast.Inspect(file, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, f := range st.Fields.List {
			if isContextContext(f.Type) {
				out = append(out, finding{
					pos: fset.Position(f.Pos()),
					msg: fmt.Sprintf("ctxstruct: struct %s stores a context.Context; pass contexts as parameters instead",
						ts.Name.Name),
				})
			}
		}
		return true
	})
	return out
}

// --- idxversion -----------------------------------------------------------------

// indexMaps are the Doc fields whose contents are only meaningful for
// the document version the index was built at.
var indexMaps = map[string]bool{
	"names": true,
	"ids":   true,
	"order": true,
}

// idxBuilderName matches the functions allowed to touch the maps
// without a freshness check: the builder fills maps that are not yet
// published, and constructors shape empty ones.
var idxBuilderName = regexp.MustCompile(`^(build|new|New|init$)`)

// idxVersion enforces the index layer's version-stamp discipline. For
// files in package index, every non-builder function whose body reads a
// selector named names/ids/order must also mention the freshness guard
// (a fresh() call or a version comparison) somewhere in that body. For
// files in any other package, any call to LoadIndexCache or
// StoreIndexCache is flagged: those raw slots bypass the stamp check
// that index.For/index.Fresh perform, so only package index may touch
// them.
func idxVersion(fset *token.FileSet, file *ast.File) []finding {
	if file.Name.Name == "index" {
		return idxVersionInside(fset, file)
	}
	return idxVersionOutside(fset, file)
}

func idxVersionInside(fset *token.FileSet, file *ast.File) []finding {
	var out []finding
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || idxBuilderName.MatchString(fd.Name.Name) {
			continue
		}
		var readsMap, checksVersion bool
		var firstRead token.Pos
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if indexMaps[x.Sel.Name] && !readsMap {
					readsMap = true
					firstRead = x.Pos()
				}
				if x.Sel.Name == "fresh" || x.Sel.Name == "version" {
					checksVersion = true
				}
			case *ast.Ident:
				if x.Name == "fresh" || x.Name == "version" {
					checksVersion = true
				}
			}
			return true
		})
		if readsMap && !checksVersion {
			out = append(out, finding{
				pos: fset.Position(firstRead),
				msg: fmt.Sprintf("idxversion: %s reads an index map without checking the version stamp (call fresh() first)",
					fd.Name.Name),
			})
		}
	}
	return out
}

func idxVersionOutside(fset *token.FileSet, file *ast.File) []finding {
	var out []finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "LoadIndexCache" || sel.Sel.Name == "StoreIndexCache" {
			out = append(out, finding{
				pos: fset.Position(call.Pos()),
				msg: fmt.Sprintf("idxversion: %s called outside internal/dom/index; use index.For/index.Fresh, which check the version stamp",
					sel.Sel.Name),
			})
		}
		return true
	})
	return out
}

// --- ftversion ------------------------------------------------------------------

// ftIndexMaps are the full-text Doc fields whose contents are only
// meaningful for the document version the index was built at: the
// posting maps (exact and stemmed), the trigram map backing wildcard
// narrowing, and the per-node token-range map.
var ftIndexMaps = map[string]bool{
	"post":     true,
	"stemPost": true,
	"gram":     true,
	"rng":      true,
}

// ftVersion is idxversion's twin for the full-text index layer
// (internal/fulltext/index). Inside the package, every non-builder
// function reading a posting/range map must mention the freshness guard
// in its body; outside, calls to the raw dom cache slot accessors
// LoadFTIndexCache/StoreFTIndexCache are flagged — all access goes
// through index.For/index.Probe/index.Fresh/index.Attach, which own the
// version-stamp comparison.
func ftVersion(fset *token.FileSet, file *ast.File) []finding {
	if file.Name.Name == "index" {
		return ftVersionInside(fset, file)
	}
	return ftVersionOutside(fset, file)
}

func ftVersionInside(fset *token.FileSet, file *ast.File) []finding {
	var out []finding
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || idxBuilderName.MatchString(fd.Name.Name) {
			continue
		}
		var readsMap, checksVersion bool
		var firstRead token.Pos
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if ftIndexMaps[x.Sel.Name] && !readsMap {
					readsMap = true
					firstRead = x.Pos()
				}
				if x.Sel.Name == "fresh" || x.Sel.Name == "version" {
					checksVersion = true
				}
			case *ast.Ident:
				if x.Name == "fresh" || x.Name == "version" {
					checksVersion = true
				}
			}
			return true
		})
		if readsMap && !checksVersion {
			out = append(out, finding{
				pos: fset.Position(firstRead),
				msg: fmt.Sprintf("ftversion: %s reads a full-text index map without checking the version stamp (call fresh() first)",
					fd.Name.Name),
			})
		}
	}
	return out
}

func ftVersionOutside(fset *token.FileSet, file *ast.File) []finding {
	var out []finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "LoadFTIndexCache" || sel.Sel.Name == "StoreFTIndexCache" {
			out = append(out, finding{
				pos: fset.Position(call.Pos()),
				msg: fmt.Sprintf("ftversion: %s called outside internal/fulltext/index; use index.For/index.Probe/index.Fresh, which check the version stamp",
					sel.Sel.Name),
			})
		}
		return true
	})
	return out
}

func isContextContext(t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context" && sel.Sel.Name == "Context"
}

// --- planpure -------------------------------------------------------------------

// planAnnotationFields are the step fields PlanStep writes in place:
// the access-method annotation is idempotent and published through
// Module.EnsurePlanned's sync.Once, so it is the one legal pointer
// write into the shared tree.
var planAnnotationFields = map[string]bool{
	"Access":   true,
	"AccessID": true,
}

// planPure reports field assignments that reach the shared AST through
// a pointer. In plan/compile, an identifier typed *ast.X (receiver,
// parameter, declared local, or closure parameter) aliases a node of
// the cached parsed module, which concurrent runs read without locks —
// rewrites must copy the node by value and modify the copy. Writes to
// the planner's annotation fields on *ast.Step are exempt (see
// planAnnotationFields).
func planPure(fset *token.FileSet, file *ast.File) []finding {
	var out []finding
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		guarded := map[string]string{} // ident name -> ast node type name
		bind := func(names []*ast.Ident, typ ast.Expr) {
			if tn, ok := astPtrType(typ); ok {
				for _, n := range names {
					guarded[n.Name] = tn
				}
			}
		}
		if fd.Recv != nil {
			for _, f := range fd.Recv.List {
				bind(f.Names, f.Type)
			}
		}
		for _, f := range fd.Type.Params.List {
			bind(f.Names, f.Type)
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				for _, f := range x.Type.Params.List {
					bind(f.Names, f.Type)
				}
			case *ast.DeclStmt:
				if gd, ok := x.Decl.(*ast.GenDecl); ok {
					for _, sp := range gd.Specs {
						if vs, ok := sp.(*ast.ValueSpec); ok && vs.Type != nil {
							bind(vs.Names, vs.Type)
						}
					}
				}
			case *ast.AssignStmt:
				if x.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range x.Lhs {
					out = append(out, flagASTWrite(fset, lhs, guarded, fd.Name.Name)...)
				}
			case *ast.IncDecStmt:
				out = append(out, flagASTWrite(fset, x.X, guarded, fd.Name.Name)...)
			}
			return true
		})
	}
	return out
}

// astPtrType reports T for a *ast.T type expression, where ast is the
// xquery AST package's import name in the analyzed source.
func astPtrType(t ast.Expr) (string, bool) {
	st, ok := t.(*ast.StarExpr)
	if !ok {
		return "", false
	}
	sel, ok := st.X.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != "ast" {
		return "", false
	}
	return sel.Sel.Name, true
}

// flagASTWrite reports lhs when it writes a field reachable from a
// guarded *ast.X identifier: s.F, s.F.G, s.Slice[i].F and deeper
// chains all root at the same shared node.
func flagASTWrite(fset *token.FileSet, lhs ast.Expr, guarded map[string]string, fn string) []finding {
	field := ""
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		field = sel.Sel.Name
	}
	root := lhs
	depth := 0
	for {
		switch x := root.(type) {
		case *ast.SelectorExpr:
			root, depth = x.X, depth+1
		case *ast.IndexExpr:
			root, depth = x.X, depth+1
		case *ast.ParenExpr:
			root = x.X
		case *ast.StarExpr:
			root = x.X
		default:
			goto done
		}
	}
done:
	id, ok := root.(*ast.Ident)
	if !ok || depth == 0 {
		return nil
	}
	tn, ok := guarded[id.Name]
	if !ok {
		return nil
	}
	if tn == "Step" && depth == 1 && planAnnotationFields[field] {
		return nil // the planner's sanctioned step annotation
	}
	return []finding{{
		pos: fset.Position(lhs.Pos()),
		msg: fmt.Sprintf("planpure: write through *ast.%s (%s) in %s; the parsed AST is shared across runs — copy the node and modify the copy",
			tn, id.Name, fn),
	}}
}

// --- storesync ------------------------------------------------------------------

// storeSync enforces the store's shard lock discipline: in package
// xmldb, the shard's raw docs map (the URI → revision state behind the
// shard mutex) may only be touched by shard.go, whose methods take the
// lock and publish immutable revisions. Any selector named docs in
// another file of the package is flagged — scans, commits and handlers
// must use the shard methods (get/publish/remove/snapshotSorted), which
// cannot skip the mutex or mutate a published revision. Other packages
// cannot reach the unexported field, so the compiler already covers
// them.
func storeSync(fset *token.FileSet, file *ast.File) []finding {
	if file.Name.Name != "xmldb" {
		return nil
	}
	if filepath.Base(fset.Position(file.Package).Filename) == "shard.go" {
		return nil
	}
	var out []finding
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "docs" {
			out = append(out, finding{
				pos: fset.Position(sel.Pos()),
				msg: "storesync: raw shard docs-map access outside shard.go; use the shard methods, which uphold the lock and MVCC publish discipline",
			})
		}
		return true
	})
	return out
}

// --- recovercheck ---------------------------------------------------------------

// recoverCheck forbids naked recover() calls. Panic recovery is a
// serving-layer contract: a recovered panic must become a typed,
// counted error (xqerr.RecoverInto) so quarantine and the failure
// metrics see it — a bare recover() silently swallows the signal.
// Sanctioned sites: package xqerr (it implements the boundary helper),
// package faultpoint (test scaffolding for injected panics), and the
// parser's recoverTo, which converts its own positioned *Error panics
// and wraps everything else.
func recoverCheck(fset *token.FileSet, file *ast.File) []finding {
	pkg := file.Name.Name
	if pkg == "xqerr" || pkg == "faultpoint" {
		return nil
	}
	var out []finding
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if pkg == "parser" && fd.Name.Name == "recoverTo" {
			continue
		}
		fn := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" && len(call.Args) == 0 {
				out = append(out, finding{
					pos: fset.Position(call.Pos()),
					msg: fmt.Sprintf("recovercheck: naked recover() in %s.%s; use xqerr.RecoverInto so the panic becomes a typed, counted internal error",
						pkg, fn),
				})
			}
			return true
		})
	}
	return out
}

// --- pulapply -------------------------------------------------------------------

// domMutators are the dom.Node methods that change tree structure,
// attributes or character data — the operations the pending-update list
// mediates. The read-side surface (Parent, Children, Walk, ...) and the
// event-listener registry are deliberately absent.
var domMutators = map[string]bool{
	"AppendChild":           true,
	"PrependChild":          true,
	"InsertBefore":          true,
	"InsertAfter":           true,
	"Detach":                true,
	"ReplaceChild":          true,
	"SetAttr":               true,
	"AddAttrNode":           true,
	"RestoreChildAt":        true,
	"RestoreAttrAt":         true,
	"RemoveAttr":            true,
	"Rename":                true,
	"SetData":               true,
	"ReplaceElementContent": true,
	"RemoveChildren":        true,
}

// pulApply reports calls to child/attr-mutating dom methods outside the
// two packages allowed to make them: dom itself and the PUL applier
// (package update). Selectors on imported package names are skipped so
// os.Rename or a kind constant like update.Rename never trip the check;
// beyond that the match is name-based, like the other passes — the
// scanned packages hold no unrelated types sharing these method names.
func pulApply(fset *token.FileSet, file *ast.File) []finding {
	pkg := file.Name.Name
	if pkg == "dom" || pkg == "update" {
		return nil
	}
	imported := map[string]bool{}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndexByte(path, '/')+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		imported[name] = true
	}
	var out []finding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !domMutators[sel.Sel.Name] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && imported[id.Name] {
			return true // package-qualified function, not a node method
		}
		out = append(out, finding{
			pos: fset.Position(call.Pos()),
			msg: fmt.Sprintf("pulapply: direct DOM mutation %s in package %s; route the write through a pending-update list (internal/xquery/update) so it stays atomic, undoable and version-stamped",
				sel.Sel.Name, pkg),
		})
		return true
	})
	return out
}
