package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func analyze(t *testing.T, src string, pass func(*token.FileSet, *ast.File) []finding) []finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return pass(fset, f)
}

func TestProgMutateFlagsLateWrite(t *testing.T) {
	src := `package p
type Engine struct{ fp string }
func (e *Engine) Rename(s string) { e.fp = s }
`
	got := analyze(t, src, progMutate)
	if len(got) != 1 {
		t.Fatalf("findings = %v, want 1", got)
	}
}

func TestProgMutateAllowsConstructors(t *testing.T) {
	src := `package p
type Engine struct{ fp string }
type Program struct{ engine *Engine }
func New() *Engine { e := &Engine{}; e.fp = "x"; return e }
func WithThing() func(*Engine) { return func(e *Engine) { e.fp = "y" } }
func (e *Engine) CompileModule() *Program { p := &Program{}; p.engine = e; return p }
`
	if got := analyze(t, src, progMutate); len(got) != 0 {
		t.Fatalf("findings = %v, want none", got)
	}
}

func TestProgMutateLocalLiteral(t *testing.T) {
	src := `package p
type Program struct{ n int }
func use() { p := &Program{}; p.n = 2 }
`
	if got := analyze(t, src, progMutate); len(got) != 1 {
		t.Fatalf("findings = %v, want 1", got)
	}
}

func TestProgMutateIgnoresOtherTypes(t *testing.T) {
	src := `package p
type Session struct{ n int }
func (s *Session) Bump() { s.n++ }
`
	if got := analyze(t, src, progMutate); len(got) != 0 {
		t.Fatalf("findings = %v, want none", got)
	}
}

func TestIdxVersionFlagsUncheckedMapRead(t *testing.T) {
	src := `package index
type Doc struct{ names map[string][]int }
func (d *Doc) ByName(k string) []int { return d.names[k] }
`
	got := analyze(t, src, idxVersion)
	if len(got) != 1 {
		t.Fatalf("findings = %v, want 1", got)
	}
}

func TestIdxVersionAllowsGuardedReadAndBuilder(t *testing.T) {
	src := `package index
type Doc struct{ names map[string][]int; version uint64 }
func (d *Doc) fresh() bool { return d.version == 0 }
func (d *Doc) ByName(k string) []int {
	if !d.fresh() {
		return nil
	}
	return d.names[k]
}
func build() *Doc { d := &Doc{names: map[string][]int{}}; d.names["x"] = nil; return d }
`
	if got := analyze(t, src, idxVersion); len(got) != 0 {
		t.Fatalf("findings = %v, want none", got)
	}
}

func TestIdxVersionFlagsRawCacheAccessOutsidePackage(t *testing.T) {
	src := `package runtime
func peek(n *Node) any { return n.LoadIndexCache() }
func poke(n *Node)     { n.StoreIndexCache(nil) }
type Node struct{}
func (n *Node) LoadIndexCache() any { return nil }
func (n *Node) StoreIndexCache(v any) {}
`
	got := analyze(t, src, idxVersion)
	if len(got) != 2 {
		t.Fatalf("findings = %v, want 2", got)
	}
}

func TestFTVersionFlagsUncheckedPostingRead(t *testing.T) {
	src := `package index
type Doc struct{ post map[string][]int32; rng map[int]int }
func (d *Doc) posting(w string) []int32 { return d.post[w] }
func (d *Doc) rangeOf(n int) int        { return d.rng[n] }
`
	got := analyze(t, src, ftVersion)
	if len(got) != 2 {
		t.Fatalf("findings = %v, want 2", got)
	}
}

func TestFTVersionAllowsGuardedReadAndBuilder(t *testing.T) {
	src := `package index
type Doc struct{ post map[string][]int32; version uint64 }
func (d *Doc) fresh() bool { return d.version == 0 }
func (d *Doc) posting(w string) []int32 {
	if !d.fresh() {
		return nil
	}
	return d.post[w]
}
func buildTables(d *Doc) { d.post["x"] = nil }
`
	if got := analyze(t, src, ftVersion); len(got) != 0 {
		t.Fatalf("findings = %v, want none", got)
	}
}

func TestFTVersionFlagsRawCacheAccessOutsidePackage(t *testing.T) {
	src := `package runtime
func peek(n *Node) any { return n.LoadFTIndexCache() }
func poke(n *Node)     { n.StoreFTIndexCache(nil) }
type Node struct{}
func (n *Node) LoadFTIndexCache() any { return nil }
func (n *Node) StoreFTIndexCache(v any) {}
`
	got := analyze(t, src, ftVersion)
	if len(got) != 2 {
		t.Fatalf("findings = %v, want 2", got)
	}
}

func TestPlanPureFlagsPointerWrites(t *testing.T) {
	src := `package plan
import "repro/internal/xquery/ast"
func rewrite(f *ast.FLWOR, s *ast.Step) {
	f.Where = nil    // structural mutation through a pointer: flagged
	s.Preds[0] = nil // deep write rooted at the same pointer: flagged
}
`
	got := analyze(t, src, planPure)
	if len(got) != 2 {
		t.Fatalf("findings = %v, want 2", got)
	}
}

func TestPlanPureAllowsCopyAndAnnotation(t *testing.T) {
	src := `package plan
import "repro/internal/xquery/ast"
func PlanStep(s *ast.Step) { s.Access, s.AccessID = 0, "" }
func optimize(f ast.FLWOR) ast.FLWOR {
	g := f          // copy-then-modify by value is the sanctioned idiom
	g.Where = nil
	cl := append([]ast.ForLet(nil), f.Clauses...)
	cl[0].For = true
	g.Clauses = cl
	return g
}
`
	if got := analyze(t, src, planPure); len(got) != 0 {
		t.Fatalf("findings = %v, want none", got)
	}
}

func TestPlanPureFlagsNonAnnotationStepWrite(t *testing.T) {
	src := `package plan
import "repro/internal/xquery/ast"
func bad(s *ast.Step) { s.Axis = 0 }
`
	if got := analyze(t, src, planPure); len(got) != 1 {
		t.Fatalf("findings = %v, want 1", got)
	}
}

func TestCtxStructFlagsStoredContext(t *testing.T) {
	src := `package p
import "context"
type Session struct {
	ctx    context.Context
	cancel context.CancelFunc
}
func ok(ctx context.Context) {}
`
	got := analyze(t, src, ctxStruct)
	if len(got) != 1 {
		t.Fatalf("findings = %v, want exactly the ctx field", got)
	}
}

func analyzeNamed(t *testing.T, name, src string, pass func(*token.FileSet, *ast.File) []finding) []finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return pass(fset, f)
}

func TestStoreSyncFlagsRawMapAccessOutsideShardFile(t *testing.T) {
	src := `package xmldb
func (s *Store) sneak(uri string) bool {
	sh := s.shardFor(uri)
	_, ok := sh.docs[uri]
	return ok
}
`
	if got := analyzeNamed(t, "docs.go", src, storeSync); len(got) != 1 {
		t.Fatalf("findings = %v, want 1", got)
	}
}

func TestStoreSyncAllowsShardFileAndOtherPackages(t *testing.T) {
	shardSrc := `package xmldb
func (sh *shard) get(uri string) bool { _, ok := sh.docs[uri]; return ok }
`
	if got := analyzeNamed(t, "shard.go", shardSrc, storeSync); len(got) != 0 {
		t.Fatalf("shard.go findings = %v, want none", got)
	}
	otherPkg := `package serve
type q struct{ docs map[string]int }
func (x *q) n() int { return len(x.docs) }
`
	if got := analyzeNamed(t, "pool.go", otherPkg, storeSync); len(got) != 0 {
		t.Fatalf("other-package findings = %v, want none", got)
	}
	// A similarly named field (docsServed) is not the shard map.
	statsSrc := `package xmldb
func (s *Store) bump() { s.Stats.docsServed.Add(1) }
`
	if got := analyzeNamed(t, "http.go", statsSrc, storeSync); len(got) != 0 {
		t.Fatalf("docsServed findings = %v, want none", got)
	}
}

func TestRecoverCheckFlagsNakedRecover(t *testing.T) {
	src := `package serve
func (s *Session) runTurn() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = nil
		}
	}()
	return nil
}
`
	got := analyze(t, src, recoverCheck)
	if len(got) != 1 {
		t.Fatalf("findings = %v, want 1", got)
	}
}

func TestRecoverCheckAllowsSanctionedPackages(t *testing.T) {
	for _, src := range []string{
		`package xqerr
func RecoverInto(errp *error, b string) { if r := recover(); r != nil { _ = r } }`,
		`package faultpoint
func catch() { _ = recover() }`,
		`package parser
func (p *Parser) recoverTo(err *error) { if r := recover(); r != nil { _ = r } }`,
	} {
		if got := analyze(t, src, recoverCheck); len(got) != 0 {
			t.Fatalf("findings = %v, want none for %q", got, src)
		}
	}
}

func TestRecoverCheckFlagsElsewhereInParser(t *testing.T) {
	src := `package parser
func sneaky() { _ = recover() }
`
	if got := analyze(t, src, recoverCheck); len(got) != 1 {
		t.Fatalf("findings = %v, want 1", got)
	}
}

func TestPulApplyFlagsDirectMutation(t *testing.T) {
	src := `package serve
import "repro/internal/dom"
func hack(n *dom.Node, c *dom.Node) {
	n.AppendChild(c)
	n.SetAttr(dom.QName{Local: "x"}, "1")
	c.Detach()
}
`
	got := analyze(t, src, pulApply)
	if len(got) != 3 {
		t.Fatalf("findings = %v, want 3", got)
	}
}

func TestPulApplyAllowsSanctionedPackages(t *testing.T) {
	for _, src := range []string{
		`package dom
func (n *Node) helper(c *Node) { n.AppendChild(c) }
type Node struct{}
func (n *Node) AppendChild(c *Node) {}
`,
		`package update
func apply(n, c interface{ AppendChild(any) }) { n.AppendChild(c) }
`,
	} {
		if got := analyze(t, src, pulApply); len(got) != 0 {
			t.Fatalf("findings = %v, want none for %q", got, src[:20])
		}
	}
}

func TestPulApplySkipsPackageQualifiedCalls(t *testing.T) {
	src := `package serve
import (
	"os"
	"repro/internal/xquery/update"
)
func ok() {
	os.Rename("a", "b")
	_ = update.Rename
}
`
	if got := analyze(t, src, pulApply); len(got) != 0 {
		t.Fatalf("findings = %v, want none", got)
	}
}
