// Package xqib is the public API of this reproduction of "XQuery in the
// Browser" (WWW 2009): an XQuery 1.0 engine with the Update Facility,
// Scripting Extension, full-text search and the paper's browser
// extensions, plus a headless browser plug-in host (XQIB), a
// JavaScript-style baseline, and REST/web-service substrates.
//
// Quick start — run the paper's Hello World page:
//
//	h, err := xqib.LoadPage(`<html><head><script type="text/xquery">
//	    browser:alert("Hello, World!")
//	</script></head><body/></html>`, "http://example.com/")
//	fmt.Println(h.Alerts()) // [Hello, World!]
//
// Or evaluate XQuery directly:
//
//	e := xqib.NewEngine()
//	seq, err := e.EvalQuery(`for $i in 1 to 3 return $i * $i`, nil)
//
// The deeper layers are exposed as aliases so applications can use the
// engine (xqib.Engine), the DOM (xqib.Node), the browser object model
// (xqib.Browser), the web-service substrate (rest subpackage types) and
// the plug-in host (xqib.Host) without importing internal paths.
package xqib

import (
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/jsruntime"
	"repro/internal/markup"
	"repro/internal/rest"
	"repro/internal/xdm"
	"repro/internal/xmldb"
	"repro/internal/xquery"
)

// Engine compiles and runs XQuery programs (the role Zorba plays in the
// paper's plug-in).
type Engine = xquery.Engine

// Program is a compiled XQuery program.
type Program = xquery.Program

// RunConfig parameterises one evaluation.
type RunConfig = xquery.RunConfig

// NewEngine builds an engine with the full fn: library.
var NewEngine = xquery.New

// Engine options.
var (
	WithModuleResolver = xquery.WithModuleResolver
	WithBrowserProfile = xquery.WithBrowserProfile
	WithFunctions      = xquery.WithFunctions
)

// Module resolution: local in-memory library modules and resolver
// composition (mix local libraries with remote web services).
var (
	NewLocalResolver = xquery.NewLocalResolver
	CombineResolvers = xquery.CombineResolvers
)

// Node is a DOM node; Event is a DOM Level 3 event.
type (
	Node  = dom.Node
	Event = dom.Event
	QName = dom.QName
)

// Sequence and Item are the XDM value types.
type (
	Sequence = xdm.Sequence
	Item     = xdm.Item
)

// NewNode wraps a DOM node as an XDM item.
var NewNode = xdm.NewNode

// Markup parsing and serialization.
var (
	ParseXML      = markup.Parse
	ParseHTML     = markup.ParseHTML
	Serialize     = markup.Serialize
	SerializeHTML = markup.SerializeHTML
)

// Host is the XQIB plug-in host: a loaded page with executing XQuery
// (and optionally JavaScript-style) scripts — the paper's contribution.
type Host = core.Host

// LoadPage boots the plug-in pipeline of Figure 1 on a page.
var LoadPage = core.LoadPage

// Host options.
var (
	WithJSSetup        = core.WithJSSetup
	WithPageLoader     = core.WithPageLoader
	WithPolicy         = core.WithPolicy
	WithNavigator      = core.WithNavigator
	WithExtraFunctions = core.WithExtraFunctions
	WithBrowserSetup   = core.WithBrowserSetup
	WithHostResolver   = core.WithModuleResolver
	WithQueryBudget    = core.WithQueryBudget
)

// Browser is the headless browser object model (windows, locations,
// history, security policy).
type (
	Browser       = browser.Browser
	Window        = browser.Window
	Location      = browser.Location
	NavigatorInfo = browser.NavigatorInfo
)

// ParseLocation splits a URL into the JavaScript-style location fields.
var ParseLocation = browser.ParseLocation

// Security policies for cross-window access (paper §4.2.1).
type (
	SameOriginPolicy = browser.SameOriginPolicy
	AllowAllPolicy   = browser.AllowAllPolicy
)

// JSDocument is the JavaScript-style DOM scripting baseline.
type JSDocument = jsruntime.Document

// NewJSDocument wraps a page for imperative scripting.
var NewJSDocument = jsruntime.NewDocument

// RESTClient issues REST calls with optional whole-document caching;
// ModuleServer serves an XQuery module as a web service (paper §3.4).
type (
	RESTClient   = rest.Client
	ModuleServer = rest.ModuleServer
)

// NewRESTClient and NewModuleServer construct the REST substrate.
var (
	NewRESTClient   = rest.NewClient
	NewModuleServer = rest.NewModuleServer
)

// XMLStore is the REST-accessible XML database (the paper's XMLDB).
type XMLStore = xmldb.Store

// NewXMLStore creates an empty store.
var NewXMLStore = xmldb.NewStore

// FormatSequence renders a sequence for display: nodes as XML, atomics
// by their lexical form, separated by spaces.
func FormatSequence(s Sequence) string {
	return xquery.FormatSequence(s, markup.Serialize)
}
