// Package xqib is the public API of this reproduction of "XQuery in the
// Browser" (WWW 2009): an XQuery 1.0 engine with the Update Facility,
// Scripting Extension, full-text search and the paper's browser
// extensions, plus a headless browser plug-in host (XQIB), a
// JavaScript-style baseline, REST/web-service substrates and a
// concurrent serving layer.
//
// Quick start — run the paper's Hello World page:
//
//	h, err := xqib.LoadPage(`<html><head><script type="text/xquery">
//	    browser:alert("Hello, World!")
//	</script></head><body/></html>`, "http://example.com/")
//	fmt.Println(h.Alerts()) // [Hello, World!]
//
// Or evaluate XQuery directly:
//
//	e := xqib.NewEngine()
//	seq, err := e.EvalQuery(`for $i in 1 to 3 return $i * $i`, nil)
//
// For serving many sessions and queries concurrently, use a Pool: it
// shares one engine and one compiled-program cache across sessions,
// bounds concurrent pages, and exposes an observability snapshot:
//
//	pool := xqib.NewPool(xqib.PoolConfig{MaxSessions: 128})
//	s, err := pool.Load(ctx, pageSrc, href)
//	err = s.Click(ctx, "buy")
//	m := pool.Metrics() // compiles, cache hits, latency buckets, ...
//
// The deeper layers are exposed as aliases so applications can use the
// engine (xqib.Engine), the DOM (xqib.Node), the browser object model
// (xqib.Browser), the web-service substrate (rest subpackage types),
// the plug-in host (xqib.Host) and the serving layer (xqib.Pool)
// without importing internal paths.
package xqib

import (
	"context"
	"time"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/fed"
	"repro/internal/jsruntime"
	"repro/internal/markup"
	"repro/internal/rest"
	"repro/internal/serve"
	"repro/internal/xdm"
	"repro/internal/xmldb"
	"repro/internal/xqerr"
	"repro/internal/xquery"
)

// Engine compiles and runs XQuery programs (the role Zorba plays in the
// paper's plug-in). An Engine is immutable after construction and safe
// for concurrent Compile/EvalQuery from any number of goroutines.
type Engine = xquery.Engine

// Program is a compiled XQuery program; immutable, so one compiled
// program may Run concurrently (each run has its own dynamic state).
type Program = xquery.Program

// RunConfig parameterises one evaluation. RunConfig.Context gives a
// run cooperative cancellation alongside the MaxSteps/Timeout budget.
type RunConfig = xquery.RunConfig

// ModuleResolver materialises module imports (local libraries or
// remote web services).
type ModuleResolver = xquery.ModuleResolver

// --- unified options -----------------------------------------------------------

// Option configures the facade constructors. One option vocabulary
// serves both NewEngine and LoadPage: each option carries an engine
// part, a host part, or both, and each constructor applies the parts
// that concern it (the rest are inert). This replaces the former split
// between engine options and host options — and the WithHostResolver /
// WithModuleResolver naming collision that split caused.
type Option struct {
	engine []xquery.Option
	host   []core.Option
}

func engineOpts(opts []Option) []xquery.Option {
	var out []xquery.Option
	for _, o := range opts {
		out = append(out, o.engine...)
	}
	return out
}

func hostOpts(opts []Option) []core.Option {
	var out []core.Option
	for _, o := range opts {
		out = append(out, o.host...)
	}
	return out
}

// WithModuleResolver installs the module-import resolver: on an
// engine it resolves that engine's imports; on a loaded page it
// resolves imports of every page script (the REST substrate registers
// web-service proxies through it, §3.4).
func WithModuleResolver(r ModuleResolver) Option {
	return Option{
		engine: []xquery.Option{xquery.WithModuleResolver(r)},
		host:   []core.Option{core.WithModuleResolver(r)},
	}
}

// WithHostResolver is the pre-unification name for installing a
// resolver on LoadPage.
//
// Deprecated: use WithModuleResolver — the same option now applies to
// engines and hosts alike.
var WithHostResolver = WithModuleResolver

// WithResolverRetry retries failed module-resolver loads up to retries
// additional times per import, waiting backoff before the first retry
// and doubling it each further attempt — bounded degradation for
// transient resolver failures (the REST substrate fetches service
// descriptions over process boundaries).
func WithResolverRetry(retries int, backoff time.Duration) Option {
	return Option{engine: []xquery.Option{xquery.WithResolverRetry(retries, backoff)}}
}

// WithBrowserProfile blocks fn:doc/fn:put, per the paper's §4.2.1
// security rule for in-browser execution (LoadPage engines always run
// with this profile).
func WithBrowserProfile() Option {
	return Option{engine: []xquery.Option{xquery.WithBrowserProfile()}}
}

// WithFunctions registers extra built-in functions on the engine, or
// on every script engine of a loaded page (e.g. rest:get).
func WithFunctions(register func(*Registry)) Option {
	return Option{
		engine: []xquery.Option{xquery.WithFunctions(register)},
		host:   []core.Option{core.WithExtraFunctions(register)},
	}
}

// WithExtraFunctions is the pre-unification host-side name.
//
// Deprecated: use WithFunctions — the same option now applies to
// engines and hosts alike.
var WithExtraFunctions = WithFunctions

// WithQueryBudget bounds every query evaluation on a loaded page:
// maxSteps evaluation steps and timeout wall-clock time per script or
// listener invocation (<= 0: unlimited). Exceeding either fails the
// query with an error matching ErrBudgetExceeded. (For direct engine
// use, set RunConfig.MaxSteps/Timeout per run instead.)
func WithQueryBudget(maxSteps int64, timeout time.Duration) Option {
	return Option{host: []core.Option{core.WithQueryBudget(maxSteps, timeout)}}
}

// WithProgramCache compiles a page's scripts through a shared program
// cache so sessions loading the same page skip the parse (a Pool
// installs its cache automatically).
func WithProgramCache(c *Cache) Option {
	return Option{host: []core.Option{core.WithProgramCache(c)}}
}

// WithJSSetup registers a JavaScript-style setup function that runs
// against the page DOM before the XQuery scripts (§4.1).
func WithJSSetup(setup func(page *Node)) Option {
	return Option{host: []core.Option{core.WithJSSetup(setup)}}
}

// WithPageLoader sets the navigation loader (location changes and
// history moves fetch pages through it).
func WithPageLoader(l browser.PageLoader) Option {
	return Option{host: []core.Option{core.WithPageLoader(l)}}
}

// WithPolicy overrides the same-origin security policy.
func WithPolicy(p browser.SecurityPolicy) Option {
	return Option{host: []core.Option{core.WithPolicy(p)}}
}

// WithNavigator overrides the navigator identity (§4.2.4).
func WithNavigator(n NavigatorInfo) Option {
	return Option{host: []core.Option{core.WithNavigator(n)}}
}

// WithBrowserSetup runs a configuration callback against the browser
// state before any script executes.
func WithBrowserSetup(setup func(*Browser)) Option {
	return Option{host: []core.Option{core.WithBrowserSetup(setup)}}
}

// --- constructors ---------------------------------------------------------------

// NewEngine builds an engine with the full fn: library. Host-only
// options are inert here.
func NewEngine(opts ...Option) *Engine {
	return xquery.New(engineOpts(opts)...)
}

// LoadPage boots the plug-in pipeline of Figure 1 on a page.
// Engine-flavoured options (resolver, functions) apply to every script
// engine the page creates.
func LoadPage(pageSrc, href string, opts ...Option) (*Host, error) {
	return core.LoadPage(pageSrc, href, hostOpts(opts)...)
}

// LoadPageContext is LoadPage with cooperative cancellation: ctx
// covers the page-load scripts and every later listener invocation on
// the host.
func LoadPageContext(ctx context.Context, pageSrc, href string, opts ...Option) (*Host, error) {
	return core.LoadPageContext(ctx, pageSrc, href, hostOpts(opts)...)
}

// Registry is the engine's function registry (host extensions register
// into it).
type Registry = xquery.Registry

// --- static analysis ------------------------------------------------------------

// Diagnostic is one static-analyzer finding (code, severity, position,
// message); Severity is its error/warning classification. Programs run
// with RunConfig.Strict surface warnings through Result.Diagnostics,
// and error-level findings reject the program with an *AnalysisError.
type (
	Diagnostic = xquery.Diagnostic
	Severity   = xquery.Severity
)

// AnalysisError is the error returned when Strict analysis rejects a
// program; it carries the full diagnostic list and matches
// ErrAnalysisFailed under errors.Is.
type AnalysisError = xquery.AnalysisError

// The analyzer severities and the update-independence diagnostic codes,
// re-exported so callers can filter Result.Diagnostics (for example,
// surface only XQ0401 dead-update warnings) without importing internal
// packages.
const (
	SevWarning = xquery.SevWarning
	SevError   = xquery.SevError
	SevNote    = xquery.SevNote

	CodeDeadUpdate     = xquery.CodeDeadUpdate
	CodeDeadDelete     = xquery.CodeDeadDelete
	CodeUpdateConflict = xquery.CodeUpdateConflict
	CodeUpdateGroups   = xquery.CodeUpdateGroups
)

// Module resolution: local in-memory library modules and resolver
// composition (mix local libraries with remote web services).
var (
	NewLocalResolver = xquery.NewLocalResolver
	CombineResolvers = xquery.CombineResolvers
)

// --- sentinel errors ------------------------------------------------------------

// Sentinel errors, re-exported so applications can errors.Is against
// the facade without importing internal paths.
var (
	// ErrBudgetExceeded matches a run that exhausted its MaxSteps or
	// Timeout budget. (Runs cancelled through a context instead match
	// context.Canceled / context.DeadlineExceeded.)
	ErrBudgetExceeded = xquery.ErrBudgetExceeded
	// ErrNoResolver matches a module import attempted with no resolver
	// installed.
	ErrNoResolver = xquery.ErrNoResolver
	// ErrUnknownFunction matches a call to an undeclared function.
	ErrUnknownFunction = xquery.ErrUnknownFunction
	// ErrAnalysisFailed matches a program rejected by the static
	// analyzer under Strict mode (the concrete error is an
	// *AnalysisError carrying the diagnostics).
	ErrAnalysisFailed = xquery.ErrAnalysisFailed
	// ErrReadOnlyWindowProperty matches an update targeting a window
	// property scripts may not write (§4.2.1 policy).
	ErrReadOnlyWindowProperty = browser.ErrReadOnlyWindowProperty
	// ErrWindowUpdateUnsupported matches a window-state update other
	// than "replace value of node".
	ErrWindowUpdateUnsupported = browser.ErrWindowUpdateUnsupported
	// ErrPoolClosed matches operations on a Pool after Shutdown.
	ErrPoolClosed = serve.ErrPoolClosed
	// ErrSessionClosed matches events sent to a closed Session.
	ErrSessionClosed = serve.ErrSessionClosed
	// ErrOverloaded matches event-loop turns shed because a session's
	// queue was at Config.MaxQueue.
	ErrOverloaded = serve.ErrOverloaded
	// ErrInternal matches a panic recovered into an error at any
	// evaluation boundary (engine run, session dispatch, Pool.Eval,
	// rest call, page load). The concrete error is an *xqerr.Internal
	// carrying a stack fingerprint.
	ErrInternal = xqerr.ErrInternal
	// ErrQuarantined matches evaluations refused because the program
	// panicked QuarantineThreshold times in a row through one cache.
	ErrQuarantined = xquery.ErrQuarantined
	// ErrNoCollection matches store reads or writes addressing a
	// hierarchical collection that does not exist.
	ErrNoCollection = xmldb.ErrNoCollection
	// ErrDocNotFound matches store reads of an absent document URI.
	ErrDocNotFound = xmldb.ErrDocNotFound
	// ErrStoreClosed matches operations on a closed (or poisoned)
	// store.
	ErrStoreClosed = xmldb.ErrStoreClosed
	// ErrConflict matches an updating query that lost a first-
	// committer-wins race on its target document.
	ErrConflict = xmldb.ErrConflict
)

// --- serving layer --------------------------------------------------------------

// Cache is a shared compiled-program cache with LRU eviction and
// singleflight deduplication; CacheStats is its counter snapshot.
type (
	Cache      = xquery.Cache
	CacheStats = xquery.CacheStats
)

// NewCache creates a program cache holding up to capacity compiled
// programs (<= 0: a default capacity).
var NewCache = xquery.NewCache

// Pool is the concurrent serving layer: a bounded session pool over a
// shared engine and program cache. Session is one live page within it;
// PoolConfig parameterises the pool; Metrics is the observability
// snapshot Pool.Metrics returns.
type (
	Pool        = serve.Pool
	Session     = serve.Session
	PoolConfig  = serve.Config
	Metrics     = serve.Metrics
	LatencyHist = serve.LatencyHist
)

// NewPool builds a serving pool.
var NewPool = serve.NewPool

// Node is a DOM node; Event is a DOM Level 3 event.
type (
	Node  = dom.Node
	Event = dom.Event
	QName = dom.QName
)

// Sequence and Item are the XDM value types.
type (
	Sequence = xdm.Sequence
	Item     = xdm.Item
)

// NewNode wraps a DOM node as an XDM item.
var NewNode = xdm.NewNode

// Markup parsing and serialization.
var (
	ParseXML      = markup.Parse
	ParseHTML     = markup.ParseHTML
	Serialize     = markup.Serialize
	SerializeHTML = markup.SerializeHTML
)

// Host is the XQIB plug-in host: a loaded page with executing XQuery
// (and optionally JavaScript-style) scripts — the paper's contribution.
type Host = core.Host

// Browser is the headless browser object model (windows, locations,
// history, security policy).
type (
	Browser       = browser.Browser
	Window        = browser.Window
	Location      = browser.Location
	NavigatorInfo = browser.NavigatorInfo
)

// ParseLocation splits a URL into the JavaScript-style location fields.
var ParseLocation = browser.ParseLocation

// Security policies for cross-window access (paper §4.2.1).
type (
	SameOriginPolicy = browser.SameOriginPolicy
	AllowAllPolicy   = browser.AllowAllPolicy
)

// JSDocument is the JavaScript-style DOM scripting baseline.
type JSDocument = jsruntime.Document

// NewJSDocument wraps a page for imperative scripting.
var NewJSDocument = jsruntime.NewDocument

// RESTClient issues REST calls with optional whole-document caching;
// ModuleServer serves an XQuery module as a web service (paper §3.4).
type (
	RESTClient   = rest.Client
	ModuleServer = rest.ModuleServer
)

// NewRESTClient and NewModuleServer construct the REST substrate;
// NewModuleServerCached compiles the service module through a shared
// program cache on a shared engine (the serving-layer path).
var (
	NewRESTClient         = rest.NewClient
	NewModuleServer       = rest.NewModuleServer
	NewModuleServerCached = rest.NewModuleServerCached
)

// --- document store -------------------------------------------------------------

// Store is the persistent sharded collection store (the paper's XMLDB
// grown into a durable database): hierarchical collections, MVCC
// reads, snapshot + redo-log durability, and parallel sharded
// collection scans. StoreOption configures OpenStore; StoreStats is
// the store's counter snapshot.
type (
	Store       = xmldb.Store
	StoreOption = xmldb.Option
	StoreStats  = xmldb.StatsSnapshot
)

// XMLStore is the pre-redesign name for the document store.
//
// Deprecated: use Store — the same type, under the storage-API name.
type XMLStore = xmldb.Store

// OpenStore opens (or creates) a document store rooted at dir,
// recovering state from the snapshot and redo log if present. An empty
// dir opens an ephemeral in-memory store with no durability.
var OpenStore = xmldb.Open

// Store options: shard count for parallel collection scans, fsync
// policy for the redo log, and automatic checkpoint cadence.
var (
	WithShards          = xmldb.WithShards
	WithSyncWrites      = xmldb.WithSyncWrites
	WithCheckpointEvery = xmldb.WithCheckpointEvery
)

// WithStore binds a document store to the facade constructors: on an
// engine (or every script engine of a loaded page) it routes fn:doc
// and fn:collection through the store — replacing the browser
// profile's blocked-network fetch with trusted storage reads — and on
// a serving pool bind the store through PoolConfig.Store instead.
func WithStore(st *Store) Option {
	return Option{
		engine: []xquery.Option{
			xquery.WithDocResolver(st.Resolver()),
			xquery.WithCollectionResolver(st.CollectionResolver()),
			xquery.WithCollectionIterResolver(st.CollectionIterResolver()),
		},
		host: []core.Option{
			core.WithStoreResolvers(st.Resolver(), st.CollectionResolver(), st.CollectionIterResolver()),
		},
	}
}

// NewXMLStore creates an empty in-memory store.
//
// Deprecated: use OpenStore — OpenStore("") is the in-memory
// equivalent, and a directory argument adds durability.
var NewXMLStore = xmldb.NewStore

// --- federation -----------------------------------------------------------------

// Federation is the scatter-gather mediation executor: each backend in
// FederationConfig.Shards is a rest module server owning one shard of
// the document space, and fn:collection fans out to all of them
// concurrently, merging the shard streams in URI order. It degrades
// rather than amplifies failures: per-backend circuit breakers, hedged
// requests against replicas, bounded retries for idempotent reads, and
// (optionally) partial results with a fed:incomplete diagnostic.
type (
	Federation       = fed.Executor
	FederationConfig = fed.Config
)

// NewFederation validates a FederationConfig and builds the executor;
// ErrBackendDown is the typed error federated calls return when a
// shard has no reachable backend.
var (
	NewFederation  = fed.New
	ErrBackendDown = fed.ErrBackendDown
)

// FedShardModule is a ready-made shard-side service module: serve it
// with NewModuleServer on each backend (with ModuleServer.Collections
// bound to the shard's documents) and the federation's collection
// calls work out of the box.
const FedShardModule = fed.ShardModule

// WithFederation binds a federation to the facade constructors: on an
// engine (or every script engine of a loaded page) it routes
// fn:collection through the scatter-gather executor and resolves
// "fed:endpoints" module imports to federated remote proxies. The
// resolvers are bound to the background context — per-attempt
// timeouts, retry budgets and breakers still bound each call; for
// caller-scoped cancellation use the serving layer (PoolConfig.Fed),
// which threads each request's context through.
func WithFederation(x *Federation) Option {
	bg := context.Background()
	return Option{
		engine: []xquery.Option{
			xquery.WithCollectionResolver(x.CollectionResolver(bg)),
			xquery.WithCollectionIterResolver(x.CollectionIterResolver(bg)),
			xquery.WithModuleResolver(x.Resolver(bg)),
		},
		host: []core.Option{
			core.WithStoreResolvers(nil, x.CollectionResolver(bg), x.CollectionIterResolver(bg)),
		},
	}
}

// FormatSequence renders a sequence for display: nodes as XML, atomics
// by their lexical form, separated by spaces.
func FormatSequence(s Sequence) string {
	return xquery.FormatSequence(s, markup.Serialize)
}
