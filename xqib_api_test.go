package xqib_test

import (
	"context"
	"errors"
	"testing"
	"time"

	xqib "repro"
)

// One Option vocabulary serves both constructors: the same
// WithModuleResolver value resolves imports on a bare engine AND on
// every script engine of a loaded page.
func TestUnifiedOptionBothConstructors(t *testing.T) {
	resolver := xqib.NewLocalResolver(map[string]string{
		"urn:math": `module namespace m = "urn:math";
			declare function m:square($x) { $x * $x };`,
	})
	opt := xqib.WithModuleResolver(resolver)

	e := xqib.NewEngine(opt)
	seq, err := e.EvalQuery(`import module namespace m = "urn:math"; m:square(3)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if xqib.FormatSequence(seq) != "9" {
		t.Errorf("engine result = %s", xqib.FormatSequence(seq))
	}

	h, err := xqib.LoadPage(`<html><head><script type="text/xquery">
		import module namespace m = "urn:math";
		browser:alert(string(m:square(4)))
	</script></head><body/></html>`, "http://example.com/", opt)
	if err != nil {
		t.Fatal(err)
	}
	if a := h.Alerts(); len(a) != 1 || a[0] != "16" {
		t.Errorf("page alerts = %v", a)
	}
}

// The deprecated pre-unification names remain as aliases.
func TestDeprecatedOptionAliases(t *testing.T) {
	resolver := xqib.NewLocalResolver(map[string]string{
		"urn:one": `module namespace o = "urn:one";
			declare function o:one() { 1 };`,
	})
	h, err := xqib.LoadPage(`<html><head><script type="text/xquery">
		import module namespace o = "urn:one";
		browser:alert(string(o:one()))
	</script></head><body/></html>`, "http://example.com/",
		xqib.WithHostResolver(resolver))
	if err != nil {
		t.Fatal(err)
	}
	if a := h.Alerts(); len(a) != 1 || a[0] != "1" {
		t.Errorf("alerts = %v", a)
	}
}

// Every re-exported sentinel is reachable with errors.Is through the
// facade, without importing internal packages.
func TestSentinelErrorsThroughFacade(t *testing.T) {
	e := xqib.NewEngine()

	// ErrNoResolver: import with no resolver installed.
	if _, err := e.EvalQuery(`import module namespace x = "urn:x"; 1`, nil); !errors.Is(err, xqib.ErrNoResolver) {
		t.Errorf("import err = %v, want ErrNoResolver", err)
	}

	// ErrUnknownFunction: calling an undeclared function.
	if _, err := e.EvalQuery(`local:nope()`, nil); !errors.Is(err, xqib.ErrUnknownFunction) {
		t.Errorf("call err = %v, want ErrUnknownFunction", err)
	}

	// ErrBudgetExceeded: MaxSteps budget.
	p, err := e.Compile(`sum(for $i in 1 to 1000000 return $i)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(xqib.RunConfig{MaxSteps: 100}); !errors.Is(err, xqib.ErrBudgetExceeded) {
		t.Errorf("budget err = %v, want ErrBudgetExceeded", err)
	}

	// ErrPoolClosed / ErrSessionClosed: serving-layer lifecycle.
	pool := xqib.NewPool(xqib.PoolConfig{MaxSessions: 1})
	ctx := context.Background()
	s, err := pool.Load(ctx, `<html><body><input id="b"/></body></html>`, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Click(ctx, "b"); !errors.Is(err, xqib.ErrSessionClosed) {
		t.Errorf("closed session err = %v, want ErrSessionClosed", err)
	}
	if err := pool.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Load(ctx, `<html/>`, "http://example.com/"); !errors.Is(err, xqib.ErrPoolClosed) {
		t.Errorf("closed pool err = %v, want ErrPoolClosed", err)
	}
}

// WithStore routes fn:doc and fn:collection through the persistent
// store on both facade constructors — including page scripts, where
// the browser profile would otherwise block fn:doc entirely.
func TestWithStoreBothConstructors(t *testing.T) {
	st, err := xqib.OpenStore(t.TempDir(), xqib.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.CreateCollection("/db/inv"); err != nil {
		t.Fatal(err)
	}
	if err := st.PutXML("/db/inv/a.xml", `<item n="1"/>`); err != nil {
		t.Fatal(err)
	}
	if err := st.PutXML("/db/inv/b.xml", `<item n="2"/>`); err != nil {
		t.Fatal(err)
	}

	opt := xqib.WithStore(st)

	e := xqib.NewEngine(opt)
	seq, err := e.EvalQuery(`count(collection("/db/inv"))`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := xqib.FormatSequence(seq); got != "2" {
		t.Errorf("engine collection count = %s, want 2", got)
	}

	h, err := xqib.LoadPage(`<html><head><script type="text/xquery">
		browser:alert(string(doc("/db/inv/a.xml")/item/@n))
	</script></head><body/></html>`, "http://example.com/", opt)
	if err != nil {
		t.Fatal(err)
	}
	if a := h.Alerts(); len(a) != 1 || a[0] != "1" {
		t.Errorf("page alerts = %v", a)
	}
}

// OpenStore durability: documents written before Close are readable
// after reopening the same directory, and the store sentinels are
// reachable with errors.Is through the facade.
func TestOpenStoreRecoveryAndSentinels(t *testing.T) {
	dir := t.TempDir()
	st, err := xqib.OpenStore(dir, xqib.WithCheckpointEvery(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateCollection("/db"); err != nil {
		t.Fatal(err)
	}
	if err := st.PutXML("/db/x.xml", `<x/>`); err != nil {
		t.Fatal(err)
	}

	// ErrDocNotFound / ErrNoCollection on absent targets.
	if _, err := st.Doc("/db/nope.xml"); !errors.Is(err, xqib.ErrDocNotFound) {
		t.Errorf("doc err = %v, want ErrDocNotFound", err)
	}
	if _, err := st.Collection("/db/nope"); !errors.Is(err, xqib.ErrNoCollection) {
		t.Errorf("collection err = %v, want ErrNoCollection", err)
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// ErrStoreClosed after Close.
	if err := st.PutXML("/db/y.xml", `<y/>`); !errors.Is(err, xqib.ErrStoreClosed) {
		t.Errorf("closed err = %v, want ErrStoreClosed", err)
	}

	st2, err := xqib.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Doc("/db/x.xml"); err != nil {
		t.Errorf("after reopen: %v", err)
	}
}

// RunConfig.Context and EvalQueryContext thread cancellation through
// the facade types.
func TestFacadeContextCancellation(t *testing.T) {
	e := xqib.NewEngine()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := e.EvalQueryContext(ctx, `sum(for $i in 1 to 2000000 return $i mod 7)`, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// WithQueryBudget + WithFunctions compose on a pool-free LoadPage.
func TestFacadeQueryBudgetOnPage(t *testing.T) {
	_, err := xqib.LoadPage(`<html><head><script type="text/xquery">
		sum(for $i in 1 to 1000000 return $i)
	</script></head><body/></html>`, "http://example.com/",
		xqib.WithQueryBudget(1000, 0))
	if !errors.Is(err, xqib.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// Strict mode surfaces the update-independence analyzer's warnings on
// the Result: an insert into a subtree the same snapshot detaches must
// arrive as an XQ0401 dead-update diagnostic through the facade.
func TestStrictSurfacesDeadUpdateWarning(t *testing.T) {
	doc, err := xqib.ParseXML(`<app><cart><item/></cart></app>`)
	if err != nil {
		t.Fatal(err)
	}
	e := xqib.NewEngine()
	prog, err := e.Compile(`insert node <sku/> into /app/cart,
replace node /app/cart with <cart/>`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(xqib.RunConfig{Strict: true, ContextItem: xqib.NewNode(doc)})
	if err != nil {
		t.Fatalf("strict run failed: %v", err)
	}
	var found *xqib.Diagnostic
	for i := range res.Diagnostics {
		if res.Diagnostics[i].Code == xqib.CodeDeadUpdate {
			found = &res.Diagnostics[i]
		}
	}
	if found == nil {
		t.Fatalf("Diagnostics = %v, want an %s dead-update warning",
			res.Diagnostics, xqib.CodeDeadUpdate)
	}
	if found.Severity != xqib.SevWarning {
		t.Errorf("severity = %v, want warning", found.Severity)
	}
}
