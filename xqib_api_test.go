package xqib_test

import (
	"context"
	"errors"
	"testing"
	"time"

	xqib "repro"
)

// One Option vocabulary serves both constructors: the same
// WithModuleResolver value resolves imports on a bare engine AND on
// every script engine of a loaded page.
func TestUnifiedOptionBothConstructors(t *testing.T) {
	resolver := xqib.NewLocalResolver(map[string]string{
		"urn:math": `module namespace m = "urn:math";
			declare function m:square($x) { $x * $x };`,
	})
	opt := xqib.WithModuleResolver(resolver)

	e := xqib.NewEngine(opt)
	seq, err := e.EvalQuery(`import module namespace m = "urn:math"; m:square(3)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if xqib.FormatSequence(seq) != "9" {
		t.Errorf("engine result = %s", xqib.FormatSequence(seq))
	}

	h, err := xqib.LoadPage(`<html><head><script type="text/xquery">
		import module namespace m = "urn:math";
		browser:alert(string(m:square(4)))
	</script></head><body/></html>`, "http://example.com/", opt)
	if err != nil {
		t.Fatal(err)
	}
	if a := h.Alerts(); len(a) != 1 || a[0] != "16" {
		t.Errorf("page alerts = %v", a)
	}
}

// The deprecated pre-unification names remain as aliases.
func TestDeprecatedOptionAliases(t *testing.T) {
	resolver := xqib.NewLocalResolver(map[string]string{
		"urn:one": `module namespace o = "urn:one";
			declare function o:one() { 1 };`,
	})
	h, err := xqib.LoadPage(`<html><head><script type="text/xquery">
		import module namespace o = "urn:one";
		browser:alert(string(o:one()))
	</script></head><body/></html>`, "http://example.com/",
		xqib.WithHostResolver(resolver))
	if err != nil {
		t.Fatal(err)
	}
	if a := h.Alerts(); len(a) != 1 || a[0] != "1" {
		t.Errorf("alerts = %v", a)
	}
}

// Every re-exported sentinel is reachable with errors.Is through the
// facade, without importing internal packages.
func TestSentinelErrorsThroughFacade(t *testing.T) {
	e := xqib.NewEngine()

	// ErrNoResolver: import with no resolver installed.
	if _, err := e.EvalQuery(`import module namespace x = "urn:x"; 1`, nil); !errors.Is(err, xqib.ErrNoResolver) {
		t.Errorf("import err = %v, want ErrNoResolver", err)
	}

	// ErrUnknownFunction: calling an undeclared function.
	if _, err := e.EvalQuery(`local:nope()`, nil); !errors.Is(err, xqib.ErrUnknownFunction) {
		t.Errorf("call err = %v, want ErrUnknownFunction", err)
	}

	// ErrBudgetExceeded: MaxSteps budget.
	p, err := e.Compile(`sum(for $i in 1 to 1000000 return $i)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(xqib.RunConfig{MaxSteps: 100}); !errors.Is(err, xqib.ErrBudgetExceeded) {
		t.Errorf("budget err = %v, want ErrBudgetExceeded", err)
	}

	// ErrPoolClosed / ErrSessionClosed: serving-layer lifecycle.
	pool := xqib.NewPool(xqib.PoolConfig{MaxSessions: 1})
	ctx := context.Background()
	s, err := pool.Load(ctx, `<html><body><input id="b"/></body></html>`, "http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Click(ctx, "b"); !errors.Is(err, xqib.ErrSessionClosed) {
		t.Errorf("closed session err = %v, want ErrSessionClosed", err)
	}
	if err := pool.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Load(ctx, `<html/>`, "http://example.com/"); !errors.Is(err, xqib.ErrPoolClosed) {
		t.Errorf("closed pool err = %v, want ErrPoolClosed", err)
	}
}

// RunConfig.Context and EvalQueryContext thread cancellation through
// the facade types.
func TestFacadeContextCancellation(t *testing.T) {
	e := xqib.NewEngine()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := e.EvalQueryContext(ctx, `sum(for $i in 1 to 2000000 return $i mod 7)`, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// WithQueryBudget + WithFunctions compose on a pool-free LoadPage.
func TestFacadeQueryBudgetOnPage(t *testing.T) {
	_, err := xqib.LoadPage(`<html><head><script type="text/xquery">
		sum(for $i in 1 to 1000000 return $i)
	</script></head><body/></html>`, "http://example.com/",
		xqib.WithQueryBudget(1000, 0))
	if !errors.Is(err, xqib.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}
