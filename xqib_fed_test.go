package xqib_test

import (
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	xqib "repro"
)

func startShardBackend(t *testing.T, docs map[string]string) *httptest.Server {
	t.Helper()
	var nodes []*xqib.Node
	for uri, src := range docs {
		d, err := xqib.ParseXML(src)
		if err != nil {
			t.Fatal(err)
		}
		d.BaseURI = uri
		nodes = append(nodes, d)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].BaseURI < nodes[j].BaseURI })
	srv, err := xqib.NewModuleServer(xqib.FedShardModule, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.Collections = func(uri string) ([]*xqib.Node, error) { return nodes, nil }
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// The facade wires a federation into both constructors: fn:collection
// on a bare engine and on a loaded page scatter-gathers over the
// shard backends, merged in URI order.
func TestWithFederationBothConstructors(t *testing.T) {
	a := startShardBackend(t, map[string]string{"doc-1": `<d n="1"/>`, "doc-3": `<d n="3"/>`})
	b := startShardBackend(t, map[string]string{"doc-2": `<d n="2"/>`, "doc-4": `<d n="4"/>`})
	x, err := xqib.NewFederation(xqib.FederationConfig{Shards: [][]string{{a.URL}, {b.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	opt := xqib.WithFederation(x)

	e := xqib.NewEngine(opt)
	seq, err := e.EvalQuery(`for $d in fn:collection("/") return fn:base-uri($d)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := xqib.FormatSequence(seq); got != "doc-1 doc-2 doc-3 doc-4" {
		t.Errorf("engine collection order = %q", got)
	}

	h, err := xqib.LoadPage(`<html><head><script type="text/xquery">
		browser:alert(fn:string-join(for $d in fn:collection("/") return fn:base-uri($d), ","))
	</script></head><body/></html>`, "http://example.com/", opt)
	if err != nil {
		t.Fatal(err)
	}
	if alerts := h.Alerts(); len(alerts) != 1 || alerts[0] != "doc-1,doc-2,doc-3,doc-4" {
		t.Errorf("page alerts = %v", alerts)
	}
}

// The same option also resolves "fed:endpoints" module imports into
// federated remote proxies.
func TestWithFederationModuleImport(t *testing.T) {
	a := startShardBackend(t, map[string]string{"a": `<d/>`})
	b := startShardBackend(t, map[string]string{"b": `<d/>`})
	x, err := xqib.NewFederation(xqib.FederationConfig{Shards: [][]string{{a.URL}, {b.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	e := xqib.NewEngine(xqib.WithFederation(x))
	seq, err := e.EvalQuery(`import module namespace shard = "urn:xqib:fed:shard" at "fed:endpoints";
		for $d in shard:collection("/") return fn:base-uri($d)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := xqib.FormatSequence(seq); !strings.Contains(got, "a") || !strings.Contains(got, "b") {
		t.Errorf("federated module call result = %q", got)
	}
}
